"""Figure 6 — larger L2 (1 MB at full scale).

The paper: absolute improvements drop slightly with a bigger L2, but
"the relative performance remains the same" — the version ordering is
unchanged.
"""

from benchmarks.conftest import assert_selective_shape, get_sweep
from repro.evaluation.figures import figure_series
from repro.evaluation.report import render_figure

CONFIG = "Larger L2 Size"


def test_figure6_larger_l2(benchmark):
    sweep = benchmark.pedantic(
        get_sweep, args=(CONFIG,), rounds=1, iterations=1
    )
    series = figure_series(6, sweep)
    print()
    print(render_figure(series))

    assert_selective_shape(sweep)

    averages = {
        label: series.version_average(label)
        for label in ("Pure Hardware", "Pure Software", "Combined",
                      "Selective")
    }
    # Relative ordering preserved: selective still best-or-tied,
    # hardware-only still weakest.
    assert averages["Pure Hardware"] == min(averages.values())
    assert averages["Selective"] >= max(averages.values()) - 1.0

"""Table 2 — benchmark characteristics under the base configuration.

Regenerates the paper's Table 2 columns (instructions executed, L1/L2
miss rates) for all 13 scaled benchmarks, plus the conflict-miss
fraction backing the Section 4.2 claim that conflict misses dominate.
"""

from repro.evaluation.report import render_table2
from repro.evaluation.table2 import table2_rows
from repro.workloads.base import SMALL

_ROWS_CACHE = []


def compute_rows():
    if not _ROWS_CACHE:
        _ROWS_CACHE.extend(table2_rows(SMALL))
    return _ROWS_CACHE


def test_table2_characteristics(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print()
    print(render_table2(rows))

    by_name = {row.benchmark: row for row in rows}
    assert len(rows) == 13

    # Every benchmark exercises the data cache non-trivially.
    for row in rows:
        assert row.instructions > 10_000
        assert row.l1_miss_rate > 0.5, f"{row.benchmark} barely misses"

    # The paper's Table 2 pattern: vpenta has by far the worst L1 miss
    # rate of the regular codes (52% at full scale).
    regular = [by_name[n] for n in ("swim", "mgrid", "vpenta", "adi")]
    assert by_name["vpenta"].l1_miss_rate == max(
        row.l1_miss_rate for row in regular
    )

    # Section 4.2 reports 53-72% conflict misses across the paper's
    # full-size suite.  At our scaled working sets the dominant base
    # pathology for the column-sweep codes shifts to *capacity* misses
    # (each line is refetched once per pass because only one element of
    # it is used — the same wasted traffic, classified differently by
    # the three-C shadow test); mgrid and compress retain substantial
    # conflict fractions.  See EXPERIMENTS.md.
    assert by_name["mgrid"].conflict_fraction > 15.0
    assert by_name["compress"].conflict_fraction > 10.0

"""Figure 7 — larger L1 data cache (64 KB at full scale)."""

from benchmarks.conftest import assert_selective_shape, get_sweep
from repro.evaluation.figures import figure_series
from repro.evaluation.report import render_figure

CONFIG = "Larger L1 Size"


def test_figure7_larger_l1(benchmark):
    sweep = benchmark.pedantic(
        get_sweep, args=(CONFIG,), rounds=1, iterations=1
    )
    series = figure_series(7, sweep)
    print()
    print(render_figure(series))

    assert_selective_shape(sweep)

    # A bigger L1 absorbs some of the base configuration's misses, so
    # the room for improvement shrinks for the conflict-bound codes —
    # but the selective average stays clearly positive (paper: 24.17%).
    base = get_sweep("Base Confg.")
    assert sweep.average_improvement("selective/bypass") > 5.0
    assert (
        sweep.average_improvement("selective/bypass")
        <= base.average_improvement("selective/bypass") + 5.0
    )

"""Figure 8 — higher L2 associativity (8-way, size constant).

Paper: "although the overall impact of our approach decreases with the
increased associativity, it still performs the best."
"""

from benchmarks.conftest import assert_selective_shape, get_sweep
from repro.evaluation.figures import figure_series
from repro.evaluation.report import render_figure

CONFIG = "Higher L2 Asc."


def test_figure8_higher_l2_associativity(benchmark):
    sweep = benchmark.pedantic(
        get_sweep, args=(CONFIG,), rounds=1, iterations=1
    )
    series = figure_series(8, sweep)
    print()
    print(render_figure(series))

    assert_selective_shape(sweep)

    averages = {
        label: series.version_average(label)
        for label in ("Pure Hardware", "Pure Software", "Combined",
                      "Selective")
    }
    assert averages["Selective"] >= max(averages.values()) - 1.0
    assert averages["Selective"] > 5.0

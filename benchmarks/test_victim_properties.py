"""Section 5.2 claims about the two hardware mechanisms.

* "Victim caches ... performed always better than the base
  configuration" — no benchmark may lose cycles with a victim cache.
* "The cache bypassing decreased the performance up to a 12% for some
  ill cases" — bypassing may hurt, but never catastrophically.
* The phase scenario: for the interleaved-phase OLTP benchmark, the
  selective victim version must not lose to the always-on one by more
  than noise (turning the mechanism off in software phases preserves
  the hardware phase's victims).
"""

from benchmarks.conftest import get_sweep


def test_victim_and_bypass_properties(benchmark):
    sweep = benchmark.pedantic(
        get_sweep, args=("Base Confg.",), rounds=1, iterations=1
    )
    print()
    print(f"{'benchmark':<10}{'victim':>10}{'bypass':>10}")
    for name, run in sweep.runs.items():
        victim = run.improvement("pure_hw/victim")
        bypass = run.improvement("pure_hw/bypass")
        print(f"{name:<10}{victim:>10.2f}{bypass:>10.2f}")

    for name, run in sweep.runs.items():
        # Victim caches are passive: never worse than base (tolerance
        # for simulation noise only).
        assert run.improvement("pure_hw/victim") >= -0.5, name
        # Bypassing may hurt, bounded like the paper's worst case.
        assert run.improvement("pure_hw/bypass") >= -13.0, name

    # The bypass mechanism is riskier than the victim cache: its worst
    # case is worse.
    worst_bypass = min(
        run.improvement("pure_hw/bypass") for run in sweep.runs.values()
    )
    worst_victim = min(
        run.improvement("pure_hw/victim") for run in sweep.runs.values()
    )
    assert worst_bypass <= worst_victim

    # Interleaved phases: selective never loses meaningfully to
    # combined for either mechanism on the OLTP benchmark.
    tpcc = sweep.runs["tpcc"]
    assert (
        tpcc.improvement("selective/victim")
        >= tpcc.improvement("combined/victim") - 1.0
    )
    assert (
        tpcc.improvement("selective/bypass")
        >= tpcc.improvement("combined/bypass") - 1.0
    )

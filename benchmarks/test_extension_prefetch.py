"""Extension experiment: the selective framework with a prefetcher.

The paper's framework is mechanism-agnostic — the compiler marks the
regions, and *any* run-time assist can be gated by the ON/OFF
instructions.  This bench swaps in the stream-buffer prefetcher
(Jouppi [10], from the paper's Section 1.1 menu of hardware
techniques) and runs the same four-version comparison on one benchmark
per category.

The result is an instructive *negative* for the paper's heuristic: the
region policy assumes hardware helps the irregular regions, but a
prefetcher helps the **optimized, streaming** (software) regions most —
Combined beats Selective on the regular and scan-heavy codes because
Selective switches the prefetcher off exactly where its sequential
streams live.  The region-preference rule is mechanism-specific, not
universal; for prefetching the ON/OFF sense would have to be inverted.
See EXPERIMENTS.md.
"""

import pytest

from repro.core.experiment import run_benchmark
from repro.core.versions import PREFETCH, prepare_codes
from repro.params import base_config
from repro.workloads.base import SMALL
from repro.workloads.registry import get_spec

SUBSET = ["vpenta", "compress", "tpcd_q6"]


def run_prefetch_experiment():
    machine = base_config().scaled(SMALL.machine_divisor)
    runs = {}
    for name in SUBSET:
        codes = prepare_codes(get_spec(name), SMALL, machine)
        runs[name] = run_benchmark(codes, machine, mechanisms=(PREFETCH,))
    return runs


def test_selective_framework_with_prefetcher(benchmark):
    runs = benchmark.pedantic(run_prefetch_experiment, rounds=1,
                              iterations=1)
    print()
    keys = ["pure_sw", "pure_hw/prefetch", "combined/prefetch",
            "selective/prefetch"]
    print(f"{'benchmark':<10}" + "".join(f"{k:>20}" for k in keys))
    for name, run in runs.items():
        print(f"{name:<10}"
              + "".join(f"{run.improvement(k):>20.2f}" for k in keys))

    # The gating machinery transfers: selective == pure software on
    # codes whose hardware regions the prefetcher cannot help, since
    # the mechanism is off everywhere else.
    for name in ("vpenta", "tpcd_q6"):
        run = runs[name]
        assert run.improvement("selective/prefetch") == pytest.approx(
            run.improvement("pure_sw"), abs=1.0
        ), name

    # The policy inversion: a prefetcher thrives on the *optimized
    # streaming* regions that the paper's heuristic switches it off in,
    # so Combined must beat Selective on the streaming benchmarks.
    for name in ("vpenta", "tpcd_q6"):
        run = runs[name]
        assert (
            run.improvement("combined/prefetch")
            > run.improvement("selective/prefetch") + 2.0
        ), name

    # On the irregular code neither placement helps (pointer/hash
    # misses have no sequential structure to prefetch).
    compress = runs["compress"]
    assert abs(compress.improvement("pure_hw/prefetch")) < 2.0

"""Figure 9 — higher L1 associativity (8-way, size constant).

Paper: "Increasing L1 associativity has an effect similar to increasing
L2 associativity" — conflict misses fall at the base configuration, so
every version's improvement shrinks, with the ordering intact.
"""

from benchmarks.conftest import REGULAR, assert_selective_shape, get_sweep
from repro.evaluation.figures import figure_series
from repro.evaluation.report import render_figure

CONFIG = "Higher L1 Asc."


def test_figure9_higher_l1_associativity(benchmark):
    sweep = benchmark.pedantic(
        get_sweep, args=(CONFIG,), rounds=1, iterations=1
    )
    series = figure_series(9, sweep)
    print()
    print(render_figure(series))

    assert_selective_shape(sweep)

    # 8-way L1 removes many base-configuration conflict misses: the
    # regular codes' software win must not grow relative to the
    # 4-way base machine.
    base = get_sweep("Base Confg.")
    for name in REGULAR:
        assert (
            sweep.runs[name].improvement("pure_sw")
            <= base.runs[name].improvement("pure_sw") + 8.0
        )
    averages = [
        series.version_average(label)
        for label in ("Pure Hardware", "Pure Software", "Combined",
                      "Selective")
    ]
    assert series.version_average("Selective") >= max(averages) - 1.0

"""Figure 4 — the four versions on the base configuration.

Regenerates the per-benchmark improvement bars of the paper's Figure 4
(cache bypassing as the hardware mechanism) and asserts the qualitative
shape: software dominates the regular codes, the hardware-only version
is the weakest on average, and the selective version is never worse
than the naive combination.
"""

from statistics import mean

from benchmarks.conftest import (
    IRREGULAR,
    REGULAR,
    assert_selective_shape,
    get_sweep,
)
from repro.evaluation.claims import check_claims
from repro.evaluation.figures import figure_series
from repro.evaluation.report import render_figure

CONFIG = "Base Confg."


def test_figure4_base_configuration(benchmark):
    sweep = benchmark.pedantic(
        get_sweep, args=(CONFIG,), rounds=1, iterations=1
    )
    series = figure_series(4, sweep)
    print()
    print(render_figure(series))
    print()
    print("Paper-claim verdicts (base configuration):")
    for verdict in check_claims(sweep):
        status = "REPRODUCED" if verdict.holds else "DEVIATES"
        print(f"  [{status:<10}] {verdict.claim.text}")

    assert_selective_shape(sweep)

    # Pure software dominates regular codes and does ~nothing for the
    # irregular ones (Section 5.1: 26.63% vs 0.8%).
    sw_regular = mean(
        sweep.runs[n].improvement("pure_sw") for n in REGULAR
    )
    sw_irregular = mean(
        sweep.runs[n].improvement("pure_sw") for n in IRREGULAR
    )
    assert sw_regular > 15.0
    assert abs(sw_irregular) < 2.0
    assert sw_regular > sw_irregular + 10.0

    # Pure hardware is the weakest version on average.
    averages = {
        label: series.version_average(label)
        for label in ("Pure Hardware", "Pure Software", "Combined",
                      "Selective")
    }
    assert averages["Pure Hardware"] == min(averages.values())
    # Selective is the best or tied-best average of the four.
    assert averages["Selective"] >= max(averages.values()) - 1.0

"""Table 3 — average improvements across all six configurations.

Regenerates the paper's Table 3 (seven version columns x six machine
rows), printing the measured averages next to the paper's values, and
asserts the reproduced orderings:

* Selective (bypass) beats Combined (bypass), Pure Software, and the
  pure hardware mechanisms on every configuration row.
* The victim-cache mechanism is always at least base-neutral.

Known deviation (see EXPERIMENTS.md): in our scaled substrate the pure
cache-bypass average hovers around zero instead of the paper's +5%,
and Selective(victim) ties Combined(victim) rather than beating it —
the victim caches are too small after scaling for the preservation
effect to dominate.
"""

from benchmarks.conftest import get_sweep
from repro.evaluation.report import render_table3
from repro.evaluation.table3 import TABLE3_COLUMNS, sweep_to_row
from repro.params import SENSITIVITY_CONFIGS


def compute_rows():
    return [
        sweep_to_row(name, get_sweep(name)) for name in SENSITIVITY_CONFIGS
    ]


def test_table3_average_improvements(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print()
    print(render_table3(rows))

    assert len(rows) == 6
    for row in rows:
        averages = row.by_column()
        selective = averages["Selective (bypass+software)"]
        # Selective's ordering claims, per configuration row.
        assert selective >= averages["Combined (bypass+software)"] - 0.5
        assert selective >= averages["Pure Software"] - 1.0
        assert selective > averages["Cache Bypass"]
        assert selective > 5.0  # a solid overall win everywhere

        # Victim caches never hurt on average (Section 5.2).
        assert averages["Victim Caches"] >= -0.5

    # The base row's selective improvement is substantial, in the same
    # league as the paper's 24.98% (shape, not exact values).
    base_row = next(r for r in rows if r.experiment == "Base Confg.")
    assert base_row.by_column()["Selective (bypass+software)"] > 15.0

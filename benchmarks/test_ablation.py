"""Ablation bench: which compiler stage buys what.

DESIGN.md calls out the individual transformations as design choices;
this bench disables one optimizer stage at a time on the regular
benchmarks and reports the software-only improvement that remains.

Measured stage contributions (asserted below):

* **layout** is what converts the analytic row-store scan (tpcd_q1)
  into a column store — without it that benchmark's win collapses;
* **padding** is what removes vpenta's cross-array same-set collisions
  — without it the interchanged code barely beats base.

The stages interact *non-monotonically* (e.g. vpenta does better under
layout-alone than under interchange-then-layout, because interchange
satisfies the reuse test that would have triggered the layout change).
That mirrors real locality-optimizer behaviour, so the bench reports
the full table and asserts per-stage contributions rather than global
dominance of the full pipeline.
"""

from statistics import mean

import pytest

from repro.compiler.optimizer import LocalityOptimizer
from repro.core.experiment import simulate_trace
from repro.params import base_config
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import SMALL
from repro.workloads.registry import get_spec

BENCHMARKS = ["swim", "mgrid", "vpenta", "adi", "tpcd_q1"]

VARIANTS = {
    "full": {},
    "no-interchange": {"enable_interchange": False},
    "no-layout": {"enable_layout": False},
    "no-padding": {"enable_padding": False},
    "no-unroll": {"enable_unroll": False},
    "no-scalar-replacement": {"enable_scalar_replacement": False},
}


def run_ablation():
    machine = base_config().scaled(SMALL.machine_divisor)
    base_cycles = {}
    for name in BENCHMARKS:
        program = get_spec(name).instantiate(SMALL)
        trace = TraceGenerator(program).generate()
        base_cycles[name] = simulate_trace(trace, machine).cycles

    table = {}
    for variant, flags in VARIANTS.items():
        improvements = {}
        for name in BENCHMARKS:
            program = get_spec(name).instantiate(SMALL)
            LocalityOptimizer(machine, **flags).optimize(program)
            trace = TraceGenerator(program).generate()
            cycles = simulate_trace(trace, machine).cycles
            improvements[name] = (
                100.0 * (base_cycles[name] - cycles) / base_cycles[name]
            )
        table[variant] = improvements
    return table


def test_optimizer_ablation(benchmark):
    table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    print(f"{'variant':<24}" + "".join(f"{n:>10}" for n in BENCHMARKS)
          + f"{'avg':>10}")
    for variant, improvements in table.items():
        avg = mean(improvements.values())
        print(
            f"{variant:<24}"
            + "".join(f"{improvements[n]:>10.2f}" for n in BENCHMARKS)
            + f"{avg:>10.2f}"
        )

    full_avg = mean(table["full"].values())
    assert full_avg > 15.0

    # Crisp per-stage contributions on the kernels that need them.
    assert table["no-layout"]["tpcd_q1"] < table["full"]["tpcd_q1"] - 10.0, (
        "layout should be what wins the row->column store conversion"
    )
    assert table["no-padding"]["vpenta"] < table["full"]["vpenta"] - 10.0, (
        "padding should be what removes vpenta's cross-array conflicts"
    )

    # Every variant remains a large net win — no stage is load-bearing
    # for correctness, only for specific benchmarks' performance.
    for variant, improvements in table.items():
        assert mean(improvements.values()) > 15.0, variant
        # Interactions are bounded: disabling one stage never swings the
        # average by more than a third of the full pipeline's win.
        assert abs(mean(improvements.values()) - full_avg) < full_avg / 3

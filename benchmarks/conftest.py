"""Shared infrastructure for the table/figure reproduction benches.

Each figure needs one full-suite sweep on one machine configuration
(~1-2 minutes at the bench scale); Table 3 needs all six.  Sweeps are
cached per session so the figure benches and Table 3 share work.

The benches print the same rows/series the paper reports, so running
``pytest benchmarks/ --benchmark-only -s`` regenerates every table and
figure in one go.  Assertions check the *shape* of the results (who
wins, orderings, signs), not absolute numbers — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core.runner import run_suite
from repro.core.sweep import SweepResult
from repro.params import SENSITIVITY_CONFIGS
from repro.workloads.base import SMALL

#: Benchmark names by paper category (used in shape assertions).
REGULAR = ["swim", "mgrid", "vpenta", "adi"]
IRREGULAR = ["perl", "compress", "li", "applu"]
MIXED = ["chaos", "tpcc", "tpcd_q1", "tpcd_q3", "tpcd_q6"]

_SWEEP_CACHE: dict[str, SweepResult] = {}


def get_sweep(config_name: str, classify: bool = False) -> SweepResult:
    """Run (or fetch) the full 13-benchmark sweep for one configuration.

    ``jobs=None`` fans the sweep over $REPRO_JOBS (or CPU count) worker
    processes; results are bit-identical to a serial run, so the shape
    assertions below are unaffected by the parallelism.
    """
    key = f"{config_name}/{classify}"
    if key not in _SWEEP_CACHE:
        suite = run_suite(
            SMALL,
            configs={config_name: SENSITIVITY_CONFIGS[config_name]},
            classify_misses=classify,
            jobs=None,
        )
        _SWEEP_CACHE[key] = suite.sweep(config_name)
    return _SWEEP_CACHE[key]


@pytest.fixture
def sweep_factory():
    return get_sweep


def assert_selective_shape(sweep: SweepResult, tolerance: float = 1.5):
    """The paper's core invariants for one configuration's results.

    * Selective is at least as good as Combined on every benchmark
      (within a small simulation-noise tolerance), for the bypass
      mechanism — "our selective approach has better or (at least) the
      same performance for all the benchmarks" (Section 5.1).
    * Selective (bypass) average beats Pure Hardware and Pure Software
      averages.
    """
    for name, run in sweep.runs.items():
        assert run.improvement("selective/bypass") >= (
            run.improvement("combined/bypass") - tolerance
        ), f"{name}: selective worse than combined under {sweep.machine_name}"
    avg = sweep.average_improvement
    assert avg("selective/bypass") > avg("pure_hw/bypass")
    # Known deviation: our bypass mechanism subtracts slightly on two
    # irregular codes instead of adding (paper: +5% average), so
    # Selective can trail Pure Software by well under a point.
    assert avg("selective/bypass") >= avg("pure_sw") - 1.0

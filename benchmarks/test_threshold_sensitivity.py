"""Section 4.1's threshold claim.

"After extensive experimentation with different threshold values, a
threshold value of 0.5 was selected ... In the benchmarks we simulated,
however, this threshold was not so critical, because in all the
benchmarks, if a code region contains irregular (regular) access, it
consists mainly of irregular (regular) accesses (between 90% and
100%)."

This bench sweeps the hardware/compiler decision threshold over a wide
range and verifies that region detection produces the *same partition*
for every benchmark — i.e. the regions really are pure enough that the
threshold does not matter — and reports each region's purity.
"""

from repro.compiler.regions.detect import detect_regions
from repro.compiler.analysis.classify import analyzable_ratio
from repro.workloads.base import SMALL
from repro.workloads.registry import all_specs

# The neighbourhood of the paper's 0.5 operating point.  Our irregular
# loops run 60-100% non-analyzable by static reference count (the
# paper reports 90-100% dynamic purity), so partitions are stable for
# thresholds in this band while extreme values (0.2, 0.8) would
# legitimately reclassify the least-pure regions.
THRESHOLDS = (0.45, 0.5, 0.55, 0.6, 0.65)


def sweep_thresholds():
    partitions = {}
    purities = {}
    for spec in all_specs():
        per_threshold = []
        for threshold in THRESHOLDS:
            program = spec.instantiate(SMALL)
            report = detect_regions(program, threshold)
            per_threshold.append(tuple(report.preferences()))
            if threshold == 0.5:
                purities[spec.name] = [
                    (pref, analyzable_ratio(node))
                    for pref, node in report.regions
                ]
        partitions[spec.name] = per_threshold
    return partitions, purities


def test_threshold_not_critical(benchmark):
    partitions, purities = benchmark.pedantic(
        sweep_thresholds, rounds=1, iterations=1
    )

    print()
    print("Region purity at threshold 0.5 "
          "(analyzable-reference ratio per region):")
    for name, regions in purities.items():
        summary = ", ".join(
            f"{pref}:{ratio:.2f}" for pref, ratio in regions
        )
        print(f"  {name:<10} {summary}")

    # The paper's observation: the partition is threshold-insensitive.
    for name, per_threshold in partitions.items():
        assert len(set(per_threshold)) == 1, (
            f"{name}: partition changes across thresholds "
            f"{dict(zip(THRESHOLDS, per_threshold))}"
        )

    # And the purity claim behind it: software regions are >= 90%
    # analyzable, hardware regions <= 50% analyzable.
    for name, regions in purities.items():
        for pref, ratio in regions:
            if pref == "sw":
                assert ratio >= 0.9, (name, pref, ratio)
            else:
                assert ratio <= 0.5, (name, pref, ratio)

"""Figure 5 — higher memory latency (200 cycles).

Regenerates the Figure 5 series and checks the trend the paper reports:
with slower memory, the locality optimizations matter at least as much
for the cache-bound codes, and the version ordering is preserved.
"""

from benchmarks.conftest import assert_selective_shape, get_sweep
from repro.evaluation.figures import figure_series
from repro.evaluation.report import render_figure

CONFIG = "Higher Mem. Lat."


def test_figure5_higher_memory_latency(benchmark):
    sweep = benchmark.pedantic(
        get_sweep, args=(CONFIG,), rounds=1, iterations=1
    )
    series = figure_series(5, sweep)
    print()
    print(render_figure(series))

    assert_selective_shape(sweep)

    base = get_sweep("Base Confg.")
    # The conflict-miss-dominated regular codes keep (or grow) their
    # improvement when memory slows down: their miss *counts* differ
    # between versions, so each saved miss is worth more.
    for name in ("vpenta", "mgrid"):
        assert sweep.runs[name].improvement("selective/bypass") > 10.0
    # Version ordering is configuration-independent (Section 5.1).
    assert (
        sweep.average_improvement("selective/bypass")
        > sweep.average_improvement("pure_hw/bypass")
    )

"""Hook interface between the memory hierarchy and hardware assists.

The paper's hardware locality mechanisms (cache bypassing via MAT/SLDT,
victim caches — Section 3.1) observe L1 traffic and interpose on misses
and evictions.  :class:`repro.memory.hierarchy.MemoryHierarchy` calls the
methods below at the corresponding points; the concrete mechanisms live
in :mod:`repro.hwopt` and implement this interface.

The ``enabled`` flag is the paper's ON/OFF state: the compiler-inserted
activate/deactivate instructions toggle it at run time, and while it is
False the hierarchy "simply ignores the mechanism" (Section 4.1) — no
probes, no updates, no insertions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.memory.block import CacheBlock

__all__ = ["FillDecision", "AssistInterface", "ServeResult", "DEFAULT_FILL"]


@dataclass(frozen=True)
class FillDecision:
    """What to do with a line arriving from the next level.

    Attributes:
        cache_in_l1: Install in L1 normally (True) or divert to the
            assist's own buffer (False — a bypassed fill).
        extra_blocks: Number of sequentially-next lines to fetch in the
            same transaction (SLDT-driven variable-size fetch; 0 = just
            the demanded line).
    """

    cache_in_l1: bool = True
    extra_blocks: int = 0


#: Decision used when no assist is attached or the assist is disabled.
DEFAULT_FILL = FillDecision()

#: ``lookup_alternate`` outcome: (extra latency in cycles, block to
#: promote into L1 — None when the data is served in place, as from the
#: bypass buffer).
ServeResult = tuple[int, Optional[CacheBlock]]


class AssistInterface(abc.ABC):
    """Run-time hardware locality mechanism attached to the L1/L2 seam."""

    #: ON/OFF state toggled by the activate/deactivate instructions.
    enabled: bool = True

    @abc.abstractmethod
    def note_access(self, addr: int, is_write: bool, l1_hit: bool) -> None:
        """Observe every L1 data access (hit or miss)."""

    @abc.abstractmethod
    def lookup_alternate(
        self, addr: int, line: int, is_write: bool = False
    ) -> Optional[ServeResult]:
        """Probe the assist's own storage on an L1 miss.

        On a hit returns ``(extra_latency, promote_block)``: a victim
        cache returns the block for promotion into L1 (a swap), while the
        bypass buffer serves the data in place and returns ``None`` for
        the block.  Returns ``None`` on an assist miss.  Both the byte
        address and the L1 line number are supplied because the bypass
        buffer tracks double words, not lines.
        """

    @abc.abstractmethod
    def fill_decision(
        self, addr: int, victim_line: Optional[int]
    ) -> FillDecision:
        """Decide placement and fetch size for a line fetched after a miss.

        ``victim_line`` is the L1 line that a normal fill would displace
        (None if the set has a free way) — the Johnson & Hwu rule bypasses
        the incoming line when its macro-block is accessed less frequently
        than the victim's.
        """

    @abc.abstractmethod
    def accept_bypassed(
        self, addr: int, block: CacheBlock
    ) -> Optional[CacheBlock]:
        """Store a line the fill decision diverted away from L1.

        Returns any block displaced from assist storage (to be written
        back if dirty).
        """

    @abc.abstractmethod
    def on_l1_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        """Observe an L1 eviction; may capture the block (victim cache).

        Returns a displaced block, or the original block if the assist
        does not capture evictions (the hierarchy then writes it back as
        usual).
        """

    @abc.abstractmethod
    def lookup_l2_alternate(self, line: int) -> Optional[CacheBlock]:
        """Probe L2-side assist storage (L2 victim cache) on an L2 miss."""

    @abc.abstractmethod
    def on_l2_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        """Observe an L2 eviction (L2 victim cache capture)."""

    @abc.abstractmethod
    def count_prefetch(self) -> None:
        """Record one extra line fetched by a variable-size fetch."""

    # ------------------------------------------------------------------
    # aggregate counters surfaced into HierarchySnapshot

    @property
    @abc.abstractmethod
    def assist_hits(self) -> int:
        """Demand accesses satisfied from assist storage."""

    @property
    @abc.abstractmethod
    def bypassed_fills(self) -> int:
        """Fills diverted away from L1."""

    @property
    @abc.abstractmethod
    def prefetched_blocks(self) -> int:
        """Extra lines fetched by variable-size fetches."""

    @property
    def occupancy(self) -> int:
        """Entries currently held in assist storage (telemetry gauge).

        Concrete mechanisms override this with their buffer / victim
        cache fill level; the default suits assists with no storage.
        """
        return 0

"""Multi-level memory hierarchy with hardware-assist hook points.

Implements the Table 1 machine: split L1 (2-cycle), unified L2
(10-cycle), 100-cycle DRAM behind an 8-byte bus, and 4-way TLBs.  An
optional :class:`repro.memory.assist.AssistInterface` (cache bypassing
or victim caching, from :mod:`repro.hwopt`) is consulted on L1 misses,
fills and evictions — but only while its ``enabled`` flag is on, which
is how the compiler-inserted activate/deactivate instructions take
effect.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.memory.assist import DEFAULT_FILL, AssistInterface
from repro.memory.block import CacheBlock
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import MainMemory
from repro.memory.stats import HierarchySnapshot, clone_stats
from repro.memory.tlb import TLB
from repro.params import MachineParams

__all__ = ["AccessResult", "MemoryHierarchy"]


class AccessResult(NamedTuple):
    """Outcome of a single data access."""

    latency: int
    l1_hit: bool
    served_by: str  # "l1" | "assist" | "l2" | "l2assist" | "mem"


class MemoryHierarchy:
    """L1D/L1I + unified L2 + DRAM, with optional hardware assist."""

    def __init__(
        self,
        machine: MachineParams,
        assist: Optional[AssistInterface] = None,
        classify_misses: bool = False,
    ):
        self.machine = machine
        self.assist = assist
        self.l1d = SetAssociativeCache(machine.l1d, classify_misses)
        self.l1i = SetAssociativeCache(machine.l1i)
        self.l2 = SetAssociativeCache(machine.l2, classify_misses)
        self.dtlb = TLB(machine.dtlb)
        self.itlb = TLB(machine.itlb)
        self.memory = MainMemory(machine)
        # Provenance of the most recent L2-path access.  Must be an
        # instance attribute: hierarchies run side by side in one
        # process (parallel sweeps, tests), and a class attribute would
        # leak the last source across instances.
        self._last_source = "mem"
        # Latency constants hoisted out of the per-access hot path.
        self._dtlb_penalty = machine.dtlb.miss_penalty
        self._itlb_penalty = machine.itlb.miss_penalty
        self._l1d_latency = machine.l1d.latency
        self._l1i_latency = machine.l1i.latency
        # Cycles of L1-fill bus occupancy per extra prefetched line.
        self._l1_beats = max(
            machine.l1d.block_size // machine.mem_bus_width, 1
        )

    # ------------------------------------------------------------------
    # public access paths

    def data_access(self, addr: int, is_write: bool = False) -> AccessResult:
        """Perform one load/store; return its latency and provenance."""
        assist = self.assist if (self.assist and self.assist.enabled) else None
        latency = self._l1d_latency
        if not self.dtlb.lookup(addr):
            latency += self._dtlb_penalty
        if self.l1d.lookup(addr, is_write):
            if assist:
                assist.note_access(addr, is_write, l1_hit=True)
            return AccessResult(latency, True, "l1")
        if assist:
            assist.note_access(addr, is_write, l1_hit=False)
            line = self.l1d.line_of(addr)
            served = assist.lookup_alternate(addr, line, is_write)
            if served is not None:
                extra_latency, promoted = served
                latency += extra_latency
                if promoted is not None:
                    self._install_l1(addr, promoted.dirty or is_write, assist)
                return AccessResult(latency, False, "assist")
        latency += self._fetch_into_l1(addr, is_write, assist)
        return AccessResult(latency, False, self._last_source)

    def inst_fetch(self, addr: int) -> int:
        """Fetch an instruction; return the latency in cycles.

        The instruction path has no hardware assist in the paper (the
        mechanisms target the data cache).
        """
        latency = self._l1i_latency
        if not self.itlb.lookup(addr):
            latency += self._itlb_penalty
        if self.l1i.lookup(addr):
            return latency
        latency += self._access_l2(addr, assist=None)
        evicted = self.l1i.fill(addr)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l2(evicted, self.machine.l1i.block_size)
        return latency

    # ------------------------------------------------------------------
    # bulk classification (vectorized simulator path)

    def bulk_classify(
        self, addrs, writes, positions, fetch_pcs, fetch_positions
    ):
        """Resolve a no-assist span of accesses and fetches in bulk.

        Numpy-kernel equivalent of calling :meth:`data_access` for each
        ``(addrs[i], writes[i])`` and :meth:`inst_fetch` for each
        ``fetch_pcs[j]``, interleaved in trace order.  ``positions`` and
        ``fetch_positions`` carry each access's trace record index,
        which is what serialises the two streams' shared L2 traffic:
        within one record the scalar loop performs the instruction
        fetch, then the data demand access, then any L1D dirty
        writeback, so L2 events are replayed sorted by ``(record,
        phase)`` with exactly that phase order.

        Callers must ensure the hardware assist is disabled for the
        whole span (gated-on segments take the scalar path).  All live
        structures — caches, TLBs, shadow classifiers, DRAM counters,
        ``_last_source`` — end in the same state the scalar calls would
        leave, so scalar code can resume mid-trace afterwards.

        Returns ``(latency, refill, stall)``:

        * ``latency`` — per-data-access latency in cycles (int64);
        * ``refill`` — per-data-access refill class: 0 = L1 hit (no
          refill bus use), 1 = L2 refill, 2 = DRAM refill (occupies an
          MSHR);
        * ``stall`` — per-fetch front-end stall cycles beyond an L1I
          hit (int64).
        """
        import numpy as np

        machine = self.machine
        l1d, l1i, l2 = self.l1d, self.l1i, self.l2

        dtlb_miss = self.dtlb.bulk_lookup(addrs >> self.dtlb._page_shift)
        d_lines = addrs >> l1d._offset_bits
        d_hit, dm_pos, dm_lines, wb_pos, wb_lines = l1d.bulk_replay(
            d_lines, writes, need_hits=l1d._classify
        )
        itlb_miss = self.itlb.bulk_lookup(
            fetch_pcs >> self.itlb._page_shift
        )
        i_lines = fetch_pcs >> l1i._offset_bits
        _, im_pos, im_lines, _, _ = l1i.bulk_replay(
            i_lines, None, need_hits=False
        )

        # Merged L2 event stream in (record, phase) order; L1I evictions
        # are never dirty, so only the data side contributes writebacks.
        shift_d = l2._offset_bits - l1d._offset_bits
        shift_i = l2._offset_bits - l1i._offset_bits
        n_im, n_dm = im_pos.size, dm_pos.size
        ev_pos = np.concatenate(
            (fetch_positions[im_pos], positions[dm_pos], positions[wb_pos])
        )
        ev_seq = np.concatenate(
            (
                np.zeros(n_im, dtype=np.int8),
                np.ones(n_dm, dtype=np.int8),
                np.full(wb_pos.size, 2, dtype=np.int8),
            )
        )
        ev_lines = np.concatenate(
            (im_lines >> shift_i, dm_lines >> shift_d, wb_lines >> shift_d)
        )
        # Stable (record, phase) order via one radix argsort of a
        # combined integer key — phase occupies the low two bits.
        # Faster than np.lexsort's two keyed passes on these sizes.
        ev_key = (ev_pos << 2) | ev_seq
        if ev_key.size and int(ev_pos.max()) < 1 << 30:
            ev_key = ev_key.astype(np.int32)
        order = np.argsort(ev_key, kind="stable")
        ev_kind_sorted = ev_seq[order] == 2
        ev_hit_sorted = l2.bulk_replay_events(
            self.memory, ev_lines[order], ev_kind_sorted
        )
        ev_hit = np.empty(ev_pos.size, dtype=bool)
        ev_hit[order] = ev_hit_sorted

        if l1d._classify:
            l1d.bulk_classify_shadow(d_lines, d_hit)
        if l2._classify:
            demand_sorted = ~ev_kind_sorted
            l2.bulk_classify_shadow(
                ev_lines[order][demand_sorted], ev_hit_sorted[demand_sorted]
            )

        l2_lat = machine.l2.latency
        mem_lat = machine.mem_latency + machine.block_transfer_cycles(
            machine.l2.block_size
        )

        latency = np.full(addrs.size, self._l1d_latency, dtype=np.int64)
        latency += dtlb_miss * self._dtlb_penalty
        refill = np.zeros(addrs.size, dtype=np.int64)
        if n_dm:
            dm_l2_hit = ev_hit[n_im : n_im + n_dm]
            latency[dm_pos] += l2_lat + np.where(dm_l2_hit, 0, mem_lat)
            refill[dm_pos] = np.where(dm_l2_hit, 1, 2)

        stall = itlb_miss * self._itlb_penalty
        if n_im:
            im_l2_hit = ev_hit[:n_im]
            stall[im_pos] += l2_lat + np.where(im_l2_hit, 0, mem_lat)

        demand_idx = np.nonzero(~ev_kind_sorted)[0]
        if demand_idx.size:
            self._last_source = (
                "l2" if ev_hit_sorted[demand_idx[-1]] else "mem"
            )
        return latency, refill, stall

    # ------------------------------------------------------------------
    # internals

    def _fetch_into_l1(
        self, addr: int, is_write: bool, assist: Optional[AssistInterface]
    ) -> int:
        """Bring the line for ``addr`` from L2/memory; place per assist."""
        latency = self._access_l2(addr, assist)
        if assist:
            victim_line = self.l1d.victim_candidate(addr)
            decision = assist.fill_decision(addr, victim_line)
        else:
            decision = DEFAULT_FILL
        line = self.l1d.line_of(addr)
        if decision.cache_in_l1:
            self._install_l1(addr, is_write, assist)
        else:
            displaced = assist.accept_bypassed(addr, CacheBlock(line, is_write))
            if displaced is not None and displaced.dirty:
                self._writeback_to_l2(displaced, self.machine.l1d.block_size)
        if assist and decision.extra_blocks > 0:
            latency += self._prefetch_extra(
                line, decision.extra_blocks, decision.cache_in_l1, assist
            )
        return latency

    def _access_l2(self, addr: int, assist: Optional[AssistInterface]) -> int:
        """Look up L2 (then L2 assist, then DRAM); fill L2 on the way."""
        latency = self.machine.l2.latency
        if self.l2.lookup(addr):
            self._last_source = "l2"
            return latency
        if assist:
            l2_line = self.l2.line_of(addr)
            block = assist.lookup_l2_alternate(l2_line)
            if block is not None:
                latency += 1
                self._install_l2(addr, block.dirty, assist)
                self._last_source = "l2assist"
                return latency
        latency += self.memory.read_block(self.machine.l2.block_size)
        self._install_l2(addr, False, assist)
        self._last_source = "mem"
        return latency

    def _install_l1(
        self, addr: int, dirty: bool, assist: Optional[AssistInterface]
    ) -> None:
        evicted = self.l1d.fill(addr, dirty)
        if evicted is None:
            return
        if assist:
            evicted = assist.on_l1_evict(evicted)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l2(evicted, self.machine.l1d.block_size)

    def _install_l2(
        self, addr: int, dirty: bool, assist: Optional[AssistInterface]
    ) -> None:
        evicted = self.l2.fill(addr, dirty)
        if evicted is None:
            return
        if assist:
            evicted = assist.on_l2_evict(evicted)
        if evicted is not None and evicted.dirty:
            self.memory.write_block(self.machine.l2.block_size)

    def _writeback_to_l2(self, block: CacheBlock, block_size: int) -> None:
        """Write an evicted dirty L1-side line down the hierarchy."""
        byte_addr = block.byte_addr(block_size)
        if self.l2.probe(byte_addr):
            self.l2.fill(byte_addr, dirty=True)
        else:
            self.memory.write_block(block_size)

    def _prefetch_extra(
        self,
        line: int,
        count: int,
        cache_in_l1: bool,
        assist: AssistInterface,
    ) -> int:
        """Stream ``count`` sequentially-next lines (SLDT larger fetch).

        Each extra line costs its bus beats; lines already resident are
        skipped at no cost.  Prefetched lines do not recurse into L2
        statistics — they ride the same L2/memory transaction.
        """
        latency = 0
        block_size = self.machine.l1d.block_size
        for i in range(1, count + 1):
            next_addr = (line + i) * block_size
            if self.l1d.probe(next_addr):
                continue
            latency += self._l1_beats
            assist.count_prefetch()
            if cache_in_l1:
                self._install_l1(next_addr, False, assist)
            else:
                displaced = assist.accept_bypassed(
                    next_addr, CacheBlock(line + i, False)
                )
                if displaced is not None and displaced.dirty:
                    self._writeback_to_l2(displaced, block_size)
        return latency

    # ------------------------------------------------------------------
    # statistics

    def sample_counters(self) -> tuple[int, ...]:
        """Cheap cumulative-counter row for telemetry interval sampling.

        Field order matches :data:`repro.telemetry.series.SAMPLE_FIELDS`
        after its ``(cycle, instructions)`` prefix and before the
        trailing gate flag.  Reads counters only — calling this cannot
        perturb simulation state.
        """
        l1d = self.l1d.stats
        l2 = self.l2.stats
        assist = self.assist
        return (
            l1d.accesses,
            l1d.misses,
            l2.accesses,
            l2.misses,
            self.l1d.occupancy(),
            assist.occupancy if assist else 0,
            self.memory.reads + self.memory.writes,
            assist.assist_hits if assist else 0,
            assist.bypassed_fills if assist else 0,
        )

    def snapshot(self) -> HierarchySnapshot:
        """Copy all counters into an immutable record."""
        assist = self.assist
        return HierarchySnapshot(
            l1d=clone_stats(self.l1d.stats),
            l1i=clone_stats(self.l1i.stats),
            l2=clone_stats(self.l2.stats),
            dtlb_misses=self.dtlb.misses,
            itlb_misses=self.itlb.misses,
            mem_reads=self.memory.reads,
            mem_writes=self.memory.writes,
            assist_hits=assist.assist_hits if assist else 0,
            bypassed_fills=assist.bypassed_fills if assist else 0,
            prefetched_blocks=assist.prefetched_blocks if assist else 0,
        )

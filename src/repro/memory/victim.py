"""Fully-associative victim cache (Jouppi, ISCA 1990).

A small LRU buffer that receives lines evicted from a primary cache.  On
a primary-cache miss the victim cache is probed; a hit returns the line
to the primary cache (the hierarchy performs the swap), avoiding the
trip to the next level.  The paper uses 64-entry (L1) and 512-entry (L2)
victim caches as one of its two hardware locality mechanisms.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.memory.block import CacheBlock
from repro.memory.stats import CacheStats

__all__ = ["VictimCache"]


class VictimCache:
    """Fully-associative LRU buffer of evicted cache lines."""

    def __init__(self, entries: int, name: str = "victim"):
        if entries <= 0:
            raise ValueError("victim cache needs at least one entry")
        self.name = name
        self.entries = entries
        self.stats = CacheStats()
        self._blocks: OrderedDict[int, CacheBlock] = OrderedDict()

    def __len__(self) -> int:
        return len(self._blocks)

    def insert(self, block: CacheBlock) -> Optional[CacheBlock]:
        """Add an evicted ``block``; return any block displaced by LRU.

        A displaced dirty block must be written back by the caller (the
        hierarchy counts it against the victim cache's writeback stat
        here).
        """
        displaced: Optional[CacheBlock] = None
        if block.block_addr in self._blocks:
            # Re-inserting a line already present: merge dirty bits.
            existing = self._blocks[block.block_addr]
            existing.dirty = existing.dirty or block.dirty
            self._blocks.move_to_end(block.block_addr)
            return None
        if len(self._blocks) >= self.entries:
            _, displaced = self._blocks.popitem(last=False)
            self.stats.evictions += 1
            if displaced.dirty:
                self.stats.writebacks += 1
        self._blocks[block.block_addr] = block
        return displaced

    def extract(self, line: int) -> Optional[CacheBlock]:
        """Probe for ``line``; on hit remove and return it (swap out).

        Records an access plus hit/miss in the stats — this models the
        probe that happens on every primary-cache miss while the
        mechanism is active.
        """
        self.stats.accesses += 1
        block = self._blocks.pop(line, None)
        if block is not None:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return block

    def contains(self, line: int) -> bool:
        """Presence check without statistics (tests and assertions)."""
        return line in self._blocks

    def flush(self) -> None:
        self._blocks.clear()

"""Block-batched replay kernels for caches and TLBs.

These are the memory-side half of the vectorized simulator path
(:mod:`repro.cpu.vector`).  Each kernel replays a whole span's access
stream against the *live* structures the scalar loop uses — the same
``OrderedDict`` sets, statistics counters and shadow state — so scalar
fallback segments can resume mid-trace with nothing lost.

The key decompositions, each exact rather than approximate:

* **Per-set independence.**  A set-associative LRU cache's behaviour
  factorises over sets: the outcome of every access depends only on
  the sub-sequence of accesses to its own set.  Kernels stable-sort
  the access stream by set index (a 1-byte radix sort — set counts are
  tiny) and replay each set's sub-sequence in one tight loop over a
  plain dict keyed by line, whose insertion order is the LRU order:
  ``pop`` + reinsert is a move-to-MRU, ``pop(next(iter(d)))`` is an
  LRU eviction, so every replay step is one or two C-level dict
  operations.

* **Run collapsing.**  Within one set's sub-sequence, consecutive
  accesses to the same line after the first are guaranteed hits that
  leave the LRU order unchanged (the line is already most recent), so
  only the first access of each run is replayed; the rest are counted
  as hits in bulk.  Dirty bits fold the run's writes with a single OR.

* **Resident-working-set fast path.**  If the distinct lines of a
  set's sub-sequence plus the lines already resident all fit in the
  set (``<= assoc`` total), nothing is ever evicted, so the LRU order
  is irrelevant to the outcome: the misses are exactly the first
  occurrences of not-yet-resident lines, dirty bits fold per line,
  and the final LRU order is the lines sorted by last access — all
  computable with ``np.unique``/``np.bincount`` and no per-access
  loop.  This removes the replay loop entirely for instruction-side
  streams and quiet TLB sets, whose working sets are tiny.

* **Order-tagged L2 events.**  L1 misses and dirty writebacks from
  different L1 sets interleave at L2 in trace order, so each kernel
  emits its L2 traffic as ``(record position, sequence)``-tagged event
  columns; the caller sorts the merged stream once and
  :func:`replay_l2` applies the same per-set replay to it.

Latency never feeds back into any of these structures, which is what
makes the phase split legal — see the bit-identity note in
:mod:`repro.cpu.pipeline`.
"""

from __future__ import annotations

import numpy as np

from repro.memory.block import CacheBlock

__all__ = [
    "replay_tlb",
    "replay_cache",
    "replay_l2",
    "replay_shadow",
]

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)

#: Sentinel distinguishing "absent" from any stored dirty flag.
_MISS = object()

#: Segments shorter than this skip the fast-path probe: the fixed cost
#: of the ``np.unique`` calls exceeds a short dict loop.
_FAST_PATH_MIN = 64

#: Accesses of a segment's head scanned to cheaply rule the fast path
#: out: a working set larger than any real associativity shows up
#: within a few distinct lines.
_FAST_PROBE = 96


def _set_order(sets: np.ndarray, num_sets: int):
    """Stable sort permutation of a set-index column plus its segments.

    Returns ``(order, seg_starts, set_ids)`` — the stable argsort of
    ``sets``, the start offset of each non-empty set's segment in the
    sorted stream, and the corresponding set indices.  Set indices are
    tiny, so narrowing the dtype first turns numpy's stable radix sort
    into a one- or two-pass counting sort, and a ``bincount`` yields
    the segment layout without gathering or comparing the sorted
    column.
    """
    if num_sets <= 256:
        sets = sets.astype(np.uint8)
    elif num_sets <= 65536:
        sets = sets.astype(np.uint16)
    order = np.argsort(sets, kind="stable")
    counts = np.bincount(sets, minlength=num_sets)
    set_ids = np.nonzero(counts)[0]
    seg_starts = (np.cumsum(counts) - counts)[set_ids]
    return order, seg_starts, set_ids


def _fast_path_lines(seg: np.ndarray, resident, assoc: int):
    """Resolve a set segment whose working set fits without evictions.

    ``resident`` is the set's live mapping (line -> value).  Returns
    None when the union of resident and streamed lines exceeds
    ``assoc`` (the caller must run the sequential replay), else
    ``(new_lines, first_idx, u, last_order)``:

    * ``new_lines``/``first_idx`` — not-yet-resident lines and the
      segment offsets of their first occurrences (the misses);
    * ``u`` — the distinct streamed lines (sorted);
    * ``last_order`` — indices into ``u`` ordering the streamed lines
      by last access (the tail of the final LRU order).

    Probes a short head of the segment first so streams with large
    working sets (data caches) bail out after a few distinct lines
    instead of paying two full ``np.unique`` sorts.
    """
    head = set(seg[:_FAST_PROBE].tolist())
    head.update(resident)
    if len(head) > assoc:
        return None
    u, first_idx = np.unique(seg, return_index=True)
    if u.size > assoc or len(set(u.tolist()) | set(resident)) > assoc:
        return None
    rev_first = np.unique(seg[::-1], return_index=True)[1]
    last_order = np.argsort(seg.size - 1 - rev_first, kind="stable")
    new = np.array(
        [ln not in resident for ln in u.tolist()], dtype=bool
    )
    return u[new], first_idx[new], u, last_order


def replay_tlb(tlb, pages: np.ndarray) -> np.ndarray:
    """Replay a page-number stream against a live TLB.

    Exactly equivalent to calling ``tlb.lookup`` per access; returns
    the per-access miss flags (in input order) and leaves the TLB's
    sets, access and miss counters as the scalar loop would.
    """
    n = pages.size
    tlb.accesses += n
    if n == 0:
        return _EMPTY_BOOL

    # Pre-collapse consecutive same-page accesses before any sorting:
    # they are guaranteed hits that leave the (already-MRU) page in
    # place, and page streams are dominated by such runs, so this
    # shrinks the sort and replay to the page-change points.
    chg = np.empty(n, dtype=bool)
    chg[0] = True
    np.not_equal(pages[1:], pages[:-1], out=chg[1:])
    chg_idx = np.nonzero(chg)[0]
    pre = chg_idx.size < n
    if pre:
        pages = pages[chg_idx]

    num_sets = tlb._num_sets
    if num_sets & (num_sets - 1) == 0:
        sets = pages & (num_sets - 1)
    else:
        sets = pages % num_sets
    order, seg_starts, set_id_arr = _set_order(sets, num_sets)
    spages = pages[order]
    nc = spages.size
    new_rep = np.empty(nc, dtype=bool)
    new_rep[0] = True
    np.not_equal(spages[1:], spages[:-1], out=new_rep[1:])
    new_rep[seg_starts] = True
    rep_idx = np.nonzero(new_rep)[0]
    m = rep_idx.size
    collapsed = m < nc
    rep_pages_arr = spages[rep_idx] if collapsed else spages
    if collapsed:
        starts = np.searchsorted(rep_idx, seg_starts).tolist()
    else:
        starts = seg_starts.tolist()
    set_ids = set_id_arr.tolist()
    starts.append(m)

    assoc = tlb._assoc
    tlb_sets = tlb._sets
    miss_rep: list = []
    miss_append = miss_rep.append
    for k, set_id in enumerate(set_ids):
        a, b = starts[k], starts[k + 1]
        tlb_set = tlb_sets[set_id]
        if b - a >= _FAST_PATH_MIN:
            fast = _fast_path_lines(rep_pages_arr[a:b], tlb_set, assoc)
            if fast is not None:
                new_pages, first_idx, u, last_order = fast
                miss_rep.extend((a + first_idx).tolist())
                accessed = set(u.tolist())
                kept = [p for p in tlb_set if p not in accessed]
                tlb_set.clear()
                for p in kept:
                    tlb_set[p] = None
                for j in last_order.tolist():
                    tlb_set[int(u[j])] = None
                continue
        if assoc == 4:
            # Unrolled four-way LRU over bare page numbers (see
            # replay_cache); evicted pages need no bookkeeping.
            l0, l1, l2, l3 = [-1] * (4 - len(tlb_set)) + list(tlb_set)
            i = a
            for page in rep_pages_arr[a:b].tolist():
                if page == l3:
                    pass
                elif page == l2:
                    l2, l3 = l3, page
                elif page == l1:
                    l1, l2, l3 = l2, l3, page
                elif page == l0:
                    l0, l1, l2, l3 = l1, l2, l3, page
                else:
                    l0, l1, l2, l3 = l1, l2, l3, page
                    miss_append(i)
                i += 1
            tlb_set.clear()
            for page in (l0, l1, l2, l3):
                if page != -1:
                    tlb_set[page] = None
            continue
        lru = dict(tlb_set)
        pop = lru.pop
        size = len(lru)
        i = a
        for page in rep_pages_arr[a:b].tolist():
            if pop(page, _MISS) is _MISS:
                if size >= assoc:
                    pop(next(iter(lru)))
                else:
                    size += 1
                miss_append(i)
            lru[page] = None
            i += 1
        tlb_set.clear()
        tlb_set.update(lru)

    tlb.misses += len(miss_rep)
    miss_sorted = np.zeros(spages.size, dtype=bool)
    if miss_rep:
        miss_rep_arr = np.array(miss_rep, dtype=np.int64)
        miss_sorted[rep_idx[miss_rep_arr] if collapsed else miss_rep_arr] = (
            True
        )
    miss_chg = np.empty(spages.size, dtype=bool)
    miss_chg[order] = miss_sorted
    if not pre:
        return miss_chg
    miss = np.zeros(n, dtype=bool)
    miss[chg_idx] = miss_chg
    return miss


def replay_cache(cache, lines: np.ndarray, writes, need_hits: bool = True):
    """Replay a line-number stream against a live set-associative cache.

    Equivalent to ``lookup(addr, w)`` per access followed by
    ``fill(addr, dirty=w)`` after each miss (the no-assist demand
    path).  ``writes`` is a bool column, or None for a read-only
    stream (instruction fetch).

    Returns ``(hit, miss_pos, miss_lines, wb_pos, wb_lines)``:

    * ``hit`` — per-access hit flags, input order (``None`` unless
      ``need_hits``; only the shadow classifier consumes them);
    * ``miss_pos``/``miss_lines`` — stream positions and line numbers
      of the demand misses (each needs a next-level access and fill);
    * ``wb_pos``/``wb_lines`` — stream positions that evicted a dirty
      victim, and the victim line numbers (each needs a writeback).

    Event columns are NOT chronologically ordered across sets; callers
    order the merged next-level stream by the original record
    positions.  Shadow-based miss classification is not applied here —
    call :func:`replay_shadow` afterwards (it needs global order).
    """
    n = lines.size
    stats = cache.stats
    stats.accesses += n
    if n == 0:
        hit = _EMPTY_BOOL if need_hits else None
        return hit, _EMPTY_I64, _EMPTY_I64, _EMPTY_I64, _EMPTY_I64
    mask = cache._set_mask
    num_sets = cache._num_sets
    sets = lines & mask if mask >= 0 else lines % num_sets
    order, seg_starts, set_id_arr = _set_order(sets, num_sets)
    slines = lines[order]
    new_rep = np.empty(n, dtype=bool)
    new_rep[0] = True
    np.not_equal(slines[1:], slines[:-1], out=new_rep[1:])
    new_rep[seg_starts] = True
    rep_idx = np.nonzero(new_rep)[0]
    m = rep_idx.size
    collapsed = m < n

    if collapsed:
        rep_lines_arr = slines[rep_idx]
        if writes is None:
            rep_write_arr = None
        else:
            rep_write_arr = np.logical_or.reduceat(writes[order], rep_idx)
        starts = np.searchsorted(rep_idx, seg_starts).tolist()
    else:
        # No collapsed runs (common for strided data streams): the rep
        # stream IS the sorted stream, so skip every gather.
        rep_lines_arr = slines
        rep_write_arr = None if writes is None else writes[order]
        starts = seg_starts.tolist()
    set_ids = set_id_arr.tolist()
    starts.append(m)

    assoc = cache._assoc
    cache_sets = cache._sets
    miss_rep: list = []
    miss_append = miss_rep.append
    wb_rep: list = []
    wb_rep_append = wb_rep.append
    wb_lines_list: list = []
    wb_lines_append = wb_lines_list.append
    evictions = writebacks = 0
    for k, set_id in enumerate(set_ids):
        a, b = starts[k], starts[k + 1]
        od = cache_sets[set_id]
        if b - a >= _FAST_PATH_MIN:
            fast = _fast_path_lines(rep_lines_arr[a:b], od, assoc)
            if fast is not None:
                new_lines, first_idx, u, last_order = fast
                miss_rep.extend((a + first_idx).tolist())
                if rep_write_arr is None:
                    dirty_u = np.zeros(u.size, dtype=bool)
                else:
                    inv = np.searchsorted(u, rep_lines_arr[a:b])
                    dirty_u = (
                        np.bincount(
                            inv,
                            weights=rep_write_arr[a:b],
                            minlength=u.size,
                        )
                        > 0
                    )
                accessed = set(u.tolist())
                kept = [
                    (ln, blk.dirty)
                    for ln, blk in od.items()
                    if ln not in accessed
                ]
                prior = {
                    ln: blk.dirty
                    for ln, blk in od.items()
                    if ln in accessed
                }
                od.clear()
                for ln, dirty in kept:
                    od[ln] = CacheBlock(ln, dirty)
                for j in last_order.tolist():
                    ln = int(u[j])
                    dirty = bool(dirty_u[j]) or prior.get(ln, False)
                    od[ln] = CacheBlock(ln, dirty)
                continue
        if assoc == 4:
            # Four-way sets (every cache in Table 1) unroll the LRU
            # into four local (line, dirty) slot pairs, l0 = LRU …
            # l3 = MRU, with -1 marking an empty way (line numbers are
            # non-negative).  Hits are 1-4 int compares plus a tuple
            # rotation; a miss shifts the victim out of l0 — no
            # hashing, no iterator allocation.
            (l0, d0), (l1, d1), (l2, d2), (l3, d3) = [(-1, False)] * (
                4 - len(od)
            ) + [(ln, blk.dirty) for ln, blk in od.items()]
            i = a
            if rep_write_arr is None:
                for ln in rep_lines_arr[a:b].tolist():
                    if ln == l3:
                        pass
                    elif ln == l2:
                        l2, l3, d2, d3 = l3, ln, d3, d2
                    elif ln == l1:
                        l1, l2, l3 = l2, l3, ln
                        d1, d2, d3 = d2, d3, d1
                    elif ln == l0:
                        l0, l1, l2, l3 = l1, l2, l3, ln
                        d0, d1, d2, d3 = d1, d2, d3, d0
                    else:
                        if l0 != -1:
                            evictions += 1
                            if d0:
                                writebacks += 1
                                wb_rep_append(i)
                                wb_lines_append(l0)
                        l0, l1, l2, l3 = l1, l2, l3, ln
                        d0, d1, d2, d3 = d1, d2, d3, False
                        miss_append(i)
                    i += 1
            else:
                for ln, w in zip(
                    rep_lines_arr[a:b].tolist(),
                    rep_write_arr[a:b].tolist(),
                ):
                    if ln == l3:
                        d3 = d3 or w
                    elif ln == l2:
                        l2, l3, d2, d3 = l3, ln, d3, d2 or w
                    elif ln == l1:
                        l1, l2, l3 = l2, l3, ln
                        d1, d2, d3 = d2, d3, d1 or w
                    elif ln == l0:
                        l0, l1, l2, l3 = l1, l2, l3, ln
                        d0, d1, d2, d3 = d1, d2, d3, d0 or w
                    else:
                        if l0 != -1:
                            evictions += 1
                            if d0:
                                writebacks += 1
                                wb_rep_append(i)
                                wb_lines_append(l0)
                        l0, l1, l2, l3 = l1, l2, l3, ln
                        d0, d1, d2, d3 = d1, d2, d3, w
                        miss_append(i)
                    i += 1
            od.clear()
            for line, dirty in (
                (l0, d0), (l1, d1), (l2, d2), (l3, d3)
            ):
                if line != -1:
                    od[line] = CacheBlock(line, dirty)
            continue
        # Working LRU: line -> dirty flag, insertion order = LRU order.
        lru = {line: block.dirty for line, block in od.items()}
        pop = lru.pop
        size = len(lru)
        i = a
        if rep_write_arr is None:
            for ln in rep_lines_arr[a:b].tolist():
                prev = pop(ln, _MISS)
                if prev is _MISS:
                    if size >= assoc:
                        evictions += 1
                        victim = next(iter(lru))
                        if pop(victim):
                            writebacks += 1
                            wb_rep_append(i)
                            wb_lines_append(victim)
                    else:
                        size += 1
                    lru[ln] = False
                    miss_append(i)
                else:
                    lru[ln] = prev
                i += 1
        else:
            for ln, w in zip(
                rep_lines_arr[a:b].tolist(), rep_write_arr[a:b].tolist()
            ):
                prev = pop(ln, _MISS)
                if prev is _MISS:
                    if size >= assoc:
                        evictions += 1
                        victim = next(iter(lru))
                        if pop(victim):
                            writebacks += 1
                            wb_rep_append(i)
                            wb_lines_append(victim)
                    else:
                        size += 1
                    lru[ln] = w
                    miss_append(i)
                else:
                    lru[ln] = prev or w
                i += 1
        od.clear()
        for line, dirty in lru.items():
            od[line] = CacheBlock(line, dirty)

    misses = len(miss_rep)
    stats.hits += n - misses
    stats.misses += misses
    stats.evictions += evictions
    stats.writebacks += writebacks

    miss_rep_arr = np.array(miss_rep, dtype=np.int64)
    if misses:
        miss_sorted_pos = (
            rep_idx[miss_rep_arr] if collapsed else miss_rep_arr
        )
        miss_pos = order[miss_sorted_pos]
        miss_lines = rep_lines_arr[miss_rep_arr]
    else:
        miss_sorted_pos = miss_rep_arr
        miss_pos = _EMPTY_I64
        miss_lines = _EMPTY_I64
    if wb_rep:
        wb_rep_arr = np.array(wb_rep, dtype=np.int64)
        wb_pos = order[rep_idx[wb_rep_arr] if collapsed else wb_rep_arr]
        wb_lines = np.array(wb_lines_list, dtype=np.int64)
    else:
        wb_pos = _EMPTY_I64
        wb_lines = _EMPTY_I64

    if need_hits:
        hit_sorted = np.ones(n, dtype=bool)
        if misses:
            hit_sorted[miss_sorted_pos] = False
        hit = np.empty(n, dtype=bool)
        hit[order] = hit_sorted
    else:
        hit = None
    return hit, miss_pos, miss_lines, wb_pos, wb_lines


def replay_l2(cache, memory, lines: np.ndarray, kinds: np.ndarray):
    """Replay a chronological L2 event stream against the live L2.

    ``lines``/``kinds`` must already be in global ``(record position,
    sequence)`` order.  Kind 0 is a demand access (lookup; on a miss,
    a DRAM read plus a clean fill with LRU eviction); kind 1 is an L1
    dirty writeback (probe; present → dirty refresh + move to MRU,
    absent → DRAM write, no fill), exactly mirroring
    ``MemoryHierarchy._access_l2`` / ``_writeback_to_l2`` with no
    assist attached.

    Returns per-event hit flags in input order (meaningful for demand
    events; writeback entries are padding).  Updates L2 statistics and
    the DRAM read/write counters.  Shadow classification is left to
    :func:`replay_shadow` on the demand sub-stream.
    """
    n = lines.size
    if n == 0:
        return _EMPTY_BOOL
    mask = cache._set_mask
    num_sets = cache._num_sets
    sets = lines & mask if mask >= 0 else lines % num_sets
    order, seg_starts, set_id_arr = _set_order(sets, num_sets)
    slines = lines[order]
    skinds = kinds[order]
    starts = seg_starts.tolist()
    set_ids = set_id_arr.tolist()
    starts.append(n)

    assoc = cache._assoc
    cache_sets = cache._sets
    hits = evictions = writebacks = mem_reads = mem_writes = 0
    miss_rep: list = []
    miss_append = miss_rep.append
    for k, set_id in enumerate(set_ids):
        a, b = starts[k], starts[k + 1]
        od = cache_sets[set_id]
        if assoc == 4:
            # Unrolled four-way LRU (see replay_cache); the extra
            # branch per event distinguishes demand accesses from L1
            # dirty writebacks, which probe without filling.
            (l0, d0), (l1, d1), (l2, d2), (l3, d3) = [(-1, False)] * (
                4 - len(od)
            ) + [(ln, blk.dirty) for ln, blk in od.items()]
            i = a
            for ln, wb in zip(
                slines[a:b].tolist(), skinds[a:b].tolist()
            ):
                if ln == l3:
                    if wb:
                        d3 = True
                    else:
                        hits += 1
                elif ln == l2:
                    l2, l3, d2, d3 = l3, ln, d3, d2 or wb
                    if not wb:
                        hits += 1
                elif ln == l1:
                    l1, l2, l3 = l2, l3, ln
                    d1, d2, d3 = d2, d3, d1 or wb
                    if not wb:
                        hits += 1
                elif ln == l0:
                    l0, l1, l2, l3 = l1, l2, l3, ln
                    d0, d1, d2, d3 = d1, d2, d3, d0 or wb
                    if not wb:
                        hits += 1
                elif wb:
                    # Absent writeback bypasses the cache entirely.
                    mem_writes += 1
                else:
                    mem_reads += 1
                    if l0 != -1:
                        evictions += 1
                        if d0:
                            writebacks += 1
                            mem_writes += 1
                    l0, l1, l2, l3 = l1, l2, l3, ln
                    d0, d1, d2, d3 = d1, d2, d3, False
                    miss_append(i)
                i += 1
            od.clear()
            for line, dirty in (
                (l0, d0), (l1, d1), (l2, d2), (l3, d3)
            ):
                if line != -1:
                    od[line] = CacheBlock(line, dirty)
            continue
        lru = {line: block.dirty for line, block in od.items()}
        pop = lru.pop
        size = len(lru)
        i = a
        for ln, wb in zip(
            slines[a:b].tolist(), skinds[a:b].tolist()
        ):
            prev = pop(ln, _MISS)
            if prev is _MISS:
                if wb:
                    # Absent writeback bypasses the cache entirely.
                    mem_writes += 1
                else:
                    mem_reads += 1
                    if size >= assoc:
                        evictions += 1
                        victim = next(iter(lru))
                        if pop(victim):
                            writebacks += 1
                            mem_writes += 1
                    else:
                        size += 1
                    lru[ln] = False
                    miss_append(i)
            elif wb:
                lru[ln] = True
            else:
                lru[ln] = prev
                hits += 1
            i += 1
        od.clear()
        for line, dirty in lru.items():
            od[line] = CacheBlock(line, dirty)

    stats = cache.stats
    total_demand = n - int(np.count_nonzero(kinds))
    stats.accesses += total_demand
    stats.hits += hits
    stats.misses += total_demand - hits
    stats.evictions += evictions
    stats.writebacks += writebacks
    memory.reads += mem_reads
    memory.writes += mem_writes

    hit_sorted = np.ones(n, dtype=bool)
    if miss_rep:
        hit_sorted[np.array(miss_rep, dtype=np.int64)] = False
    hit = np.empty(n, dtype=bool)
    hit[order] = hit_sorted
    return hit


def replay_shadow(cache, lines: np.ndarray, hit: np.ndarray) -> None:
    """Three-C classification post-pass over one cache's access stream.

    The fully-associative shadow and the seen-lines set are global to
    the cache (not per-set), so classification replays in original
    access order, after the per-set kernels have resolved hits and
    misses.  Mutates the same shadow state the scalar path uses.
    """
    if not cache._classify:
        return
    seen = cache._seen_lines
    seen_add = seen.add
    shadow = cache._shadow
    move_to_end = shadow.move_to_end
    popitem = shadow.popitem
    capacity = cache._shadow_capacity
    compulsory = capacity_m = conflict = 0
    for ln, h in zip(lines.tolist(), hit.tolist()):
        if not h:
            if ln not in seen:
                seen_add(ln)
                compulsory += 1
            elif ln in shadow:
                conflict += 1
            else:
                capacity_m += 1
        if ln in shadow:
            move_to_end(ln)
        else:
            shadow[ln] = None
            if len(shadow) > capacity:
                popitem(last=False)
    stats = cache.stats
    stats.compulsory_misses += compulsory
    stats.capacity_misses += capacity_m
    stats.conflict_misses += conflict

"""Column-associative cache (Agarwal & Pudar, ISCA 1993).

Another extension from the paper's Section 1.1 menu of hardware
techniques: a direct-mapped cache that, on a primary miss, probes a
second location obtained by flipping the top index bit (the *rehash*
location).  A rehash hit swaps the two lines so the more recent one
sits in its primary slot.  Offers much of 2-way associativity's
conflict-miss reduction at direct-mapped access time.

Implements the same operational surface as
:class:`repro.memory.cache.SetAssociativeCache` (lookup/fill/probe and
a stats block), so it can be dropped into experiments comparing cache
organizations (see ``examples``/tests).
"""

from __future__ import annotations

from typing import Optional

from repro.memory.block import CacheBlock
from repro.memory.stats import CacheStats
from repro.params import CacheParams

__all__ = ["ColumnAssociativeCache"]


class ColumnAssociativeCache:
    """Direct-mapped cache with a rehash second probe."""

    def __init__(self, params: CacheParams):
        if params.assoc != 1:
            raise ValueError(
                "a column-associative cache is direct-mapped; build it "
                "with assoc=1"
            )
        if params.num_sets < 2:
            raise ValueError("need at least two sets to rehash")
        self.params = params
        self.stats = CacheStats()
        #: Rehash hits (second-probe hits) — the organization's win.
        self.rehash_hits = 0
        self._offset_bits = params.block_size.bit_length() - 1
        self._num_sets = params.num_sets
        self._flip = params.num_sets >> 1  # top index bit
        self._slots: list[Optional[CacheBlock]] = [None] * params.num_sets

    def line_of(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _index(self, line: int) -> int:
        return line % self._num_sets

    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Two-probe lookup; a rehash hit swaps the lines."""
        line = self.line_of(addr)
        index = line % self._num_sets
        self.stats.accesses += 1
        block = self._slots[index]
        if block is not None and block.block_addr == line:
            if is_write:
                block.dirty = True
            self.stats.hits += 1
            return True
        rehash_index = index ^ self._flip
        rehash_block = self._slots[rehash_index]
        if rehash_block is not None and rehash_block.block_addr == line:
            # Rehash hit: swap so the hot line claims its primary slot.
            self._slots[index], self._slots[rehash_index] = (
                rehash_block,
                block,
            )
            if is_write:
                rehash_block.dirty = True
            self.stats.hits += 1
            self.rehash_hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        line = self.line_of(addr)
        index = line % self._num_sets
        for slot in (index, index ^ self._flip):
            block = self._slots[slot]
            if block is not None and block.block_addr == line:
                return True
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[CacheBlock]:
        """Install in the primary slot, displacing its occupant to the
        rehash slot (whose occupant is evicted)."""
        line = self.line_of(addr)
        index = line % self._num_sets
        if self.probe(addr):
            # Refresh dirty state only; placement already correct enough.
            for slot in (index, index ^ self._flip):
                block = self._slots[slot]
                if block is not None and block.block_addr == line:
                    block.dirty = block.dirty or dirty
            return None
        rehash_index = index ^ self._flip
        evicted = self._slots[rehash_index]
        self._slots[rehash_index] = self._slots[index]
        self._slots[index] = CacheBlock(line, dirty)
        if evicted is not None:
            self.stats.evictions += 1
            if evicted.dirty:
                self.stats.writebacks += 1
        return evicted

    def occupancy(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

    def resident_lines(self) -> set[int]:
        return {
            slot.block_addr for slot in self._slots if slot is not None
        }

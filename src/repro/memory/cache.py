"""Set-associative cache with true-LRU replacement.

This is the core building block for L1D, L1I and L2 in the paper's
Table 1 machine.  The cache is write-back / write-allocate; data
contents are not modelled, only tags and dirty bits.

Optional *miss classification* implements the standard three-C
decomposition the paper relies on ("conflict misses constitute between
53% and 72% of total cache misses", Section 4.2): a miss on a
never-before-seen line is compulsory; otherwise it is replayed against a
same-capacity fully-associative LRU shadow — a shadow hit means the miss
was a conflict miss, a shadow miss a capacity miss.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.memory.block import CacheBlock
from repro.memory.stats import CacheStats
from repro.params import CacheParams

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """A single level of set-associative, true-LRU, write-back cache.

    The external address unit is the *byte address*; internally the cache
    works on line numbers (``addr // block_size``).  Lookups and fills are
    separate operations so that the hierarchy (and the hardware assists
    hooked into it) can interpose bypass / victim decisions between a
    miss and the corresponding fill.
    """

    def __init__(self, params: CacheParams, classify_misses: bool = False):
        self.params = params
        self.stats = CacheStats()
        self._offset_bits = params.block_size.bit_length() - 1
        self._num_sets = params.num_sets
        # All Table 1 configurations have power-of-two set counts, so
        # set selection is a mask; fall back to modulo otherwise.
        self._set_mask = (
            self._num_sets - 1
            if self._num_sets & (self._num_sets - 1) == 0
            else -1
        )
        self._assoc = params.assoc
        # One OrderedDict per set, keyed by line number; insertion order
        # is LRU order (least-recent first).
        self._sets: list[OrderedDict[int, CacheBlock]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self._classify = classify_misses
        if classify_misses:
            self._seen_lines: set[int] = set()
            # Fully-associative LRU shadow with the same total capacity.
            self._shadow: OrderedDict[int, None] = OrderedDict()
            self._shadow_capacity = params.num_blocks

    # ------------------------------------------------------------------
    # address helpers

    def line_of(self, addr: int) -> int:
        """Line number containing byte address ``addr``."""
        return addr >> self._offset_bits

    def _set_index(self, line: int) -> int:
        """Set number holding ``line`` (mask when sets are a power of two)."""
        mask = self._set_mask
        return line & mask if mask >= 0 else line % self._num_sets

    # ------------------------------------------------------------------
    # main operations

    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Access the cache; return True on hit.

        Updates LRU order and the dirty bit on a write hit.  On a miss
        the caller is expected to follow up with :meth:`fill` (unless the
        block is bypassed).  Statistics are updated here for both
        outcomes, including miss classification when enabled.
        """
        # line_of / _set_index inlined: this is the hottest call in the
        # simulator (every load, store and ifetch lands here).
        line = addr >> self._offset_bits
        mask = self._set_mask
        cache_set = self._sets[
            line & mask if mask >= 0 else line % self._num_sets
        ]
        stats = self.stats
        stats.accesses += 1
        block = cache_set.get(line)
        if block is not None:
            cache_set.move_to_end(line)
            if is_write:
                block.dirty = True
            stats.hits += 1
            if self._classify:
                self._touch_shadow(line)
            return True
        stats.misses += 1
        if self._classify:
            self._classify_miss(line)
        return False

    def probe(self, addr: int) -> bool:
        """Check presence without disturbing LRU state or statistics."""
        line = addr >> self._offset_bits
        return line in self._sets[self._set_index(line)]

    def fill(
        self, addr: int, dirty: bool = False
    ) -> Optional[CacheBlock]:
        """Install the line containing ``addr``; return the victim if any.

        If the line is already present this only refreshes its LRU
        position (and ORs in ``dirty``).  An eviction of a dirty line
        increments the writeback counter; the evicted block is returned
        so the caller can forward it to a victim cache or the next level.
        """
        line = addr >> self._offset_bits
        cache_set = self._sets[self._set_index(line)]
        existing = cache_set.get(line)
        if existing is not None:
            cache_set.move_to_end(line)
            existing.dirty = existing.dirty or dirty
            return None
        victim: Optional[CacheBlock] = None
        if len(cache_set) >= self._assoc:
            _, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
        cache_set[line] = CacheBlock(line, dirty)
        return victim

    def victim_candidate(self, addr: int) -> Optional[int]:
        """Line that a fill for ``addr`` would evict right now, if any.

        Returns None when the set still has a free way or already holds
        the line.  Used by the Johnson & Hwu bypass logic, which compares
        the access frequency of the incoming line's macro-block against
        that of the line it would displace.
        """
        line = addr >> self._offset_bits
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set or len(cache_set) < self._assoc:
            return None
        return next(iter(cache_set))

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        """Remove the line containing ``addr`` (e.g. for a victim swap)."""
        line = self.line_of(addr)
        return self._sets[self._set_index(line)].pop(line, None)

    def flush(self) -> int:
        """Empty the cache; return the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for b in cache_set.values() if b.dirty)
            cache_set.clear()
        return dirty

    # ------------------------------------------------------------------
    # bulk replay (vectorized simulator path)

    def bulk_replay(self, lines, writes=None, need_hits=True):
        """Replay a whole line-number access stream at once.

        Numpy-kernel equivalent of per-access ``lookup`` + miss
        ``fill`` against the live sets, so scalar code can resume on
        the same state afterwards.  See
        :func:`repro.memory.bulk.replay_cache` for the contract.
        """
        from repro.memory import bulk

        return bulk.replay_cache(self, lines, writes, need_hits)

    def bulk_replay_events(self, memory, lines, kinds):
        """Replay a chronological demand/writeback event stream (L2).

        See :func:`repro.memory.bulk.replay_l2`.
        """
        from repro.memory import bulk

        return bulk.replay_l2(self, memory, lines, kinds)

    def bulk_classify_shadow(self, lines, hit) -> None:
        """Three-C classification post-pass over a replayed stream.

        See :func:`repro.memory.bulk.replay_shadow`; no-op unless the
        cache was built with ``classify_misses=True``.
        """
        from repro.memory import bulk

        bulk.replay_shadow(self, lines, hit)

    # ------------------------------------------------------------------
    # introspection

    def resident_lines(self) -> set[int]:
        """Set of line numbers currently resident (for tests)."""
        resident: set[int] = set()
        for cache_set in self._sets:
            resident.update(cache_set.keys())
        return resident

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    def lru_order(self, set_index: int) -> list[int]:
        """Lines of one set from least- to most-recently used (tests)."""
        if not 0 <= set_index < self._num_sets:
            raise IndexError(f"set index {set_index} out of range")
        return list(self._sets[set_index].keys())

    # ------------------------------------------------------------------
    # three-C miss classification (shadow fully-associative cache)

    def _touch_shadow(self, line: int) -> None:
        shadow = self._shadow
        if line in shadow:
            shadow.move_to_end(line)
        else:
            shadow[line] = None
            if len(shadow) > self._shadow_capacity:
                shadow.popitem(last=False)

    def _classify_miss(self, line: int) -> None:
        if line not in self._seen_lines:
            self._seen_lines.add(line)
            self.stats.compulsory_misses += 1
        elif line in self._shadow:
            # The fully-associative cache would have hit: pure conflict.
            self.stats.conflict_misses += 1
        else:
            self.stats.capacity_misses += 1
        self._touch_shadow(line)

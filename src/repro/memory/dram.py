"""Main-memory model: fixed access latency plus bus-transfer time."""

from __future__ import annotations

from repro.params import MachineParams

__all__ = ["MainMemory"]


class MainMemory:
    """Fixed-latency DRAM behind a narrow bus.

    A read of a ``block_size``-byte line costs ``mem_latency`` cycles for
    the critical word plus one cycle per additional ``mem_bus_width``-byte
    beat (Table 1: 100 cycles, 8-byte bus).  Writebacks are counted but,
    as in SimpleScalar's default, are assumed buffered and do not stall
    the processor.
    """

    def __init__(self, machine: MachineParams):
        self._machine = machine
        self.reads = 0
        self.writes = 0

    def read_block(self, block_size: int) -> int:
        """Fetch one line; return the latency in cycles."""
        self.reads += 1
        return self._machine.mem_latency + self._machine.block_transfer_cycles(
            block_size
        )

    def write_block(self, block_size: int) -> int:
        """Write back one line; buffered, so zero visible latency."""
        self.writes += 1
        return 0

"""Cache block (line) record."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheBlock"]


@dataclass
class CacheBlock:
    """One cache line's metadata.

    ``block_addr`` is the byte address shifted right by the line's offset
    bits (i.e. a line number, unique across the whole address space);
    data contents are never modelled, only presence and dirtiness.
    """

    block_addr: int
    dirty: bool = False

    def byte_addr(self, block_size: int) -> int:
        """First byte address covered by this line."""
        return self.block_addr * block_size

"""Statistics records for caches and the memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "HierarchySnapshot"]


@dataclass
class CacheStats:
    """Counters for one cache (or cache-like structure).

    Miss classification (``compulsory``/``capacity``/``conflict``) is only
    populated when the owning cache was built with ``classify_misses=True``;
    otherwise the three counters stay at zero while ``misses`` still counts.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    compulsory_misses: int = 0
    capacity_misses: int = 0
    conflict_misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 when the cache was never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def conflict_fraction(self) -> float:
        """Fraction of misses classified as conflict misses."""
        if self.misses == 0:
            return 0.0
        return self.conflict_misses / self.misses

    def reset(self) -> None:
        for f in (
            "accesses",
            "hits",
            "misses",
            "evictions",
            "writebacks",
            "compulsory_misses",
            "capacity_misses",
            "conflict_misses",
        ):
            setattr(self, f, 0)


@dataclass(frozen=True)
class HierarchySnapshot:
    """Immutable snapshot of the whole hierarchy's counters.

    Produced by :meth:`repro.memory.hierarchy.MemoryHierarchy.snapshot`;
    this is what experiment results store, so it must be hash-free plain
    data.
    """

    l1d: CacheStats
    l1i: CacheStats
    l2: CacheStats
    dtlb_misses: int
    itlb_misses: int
    mem_reads: int
    mem_writes: int
    assist_hits: int = 0
    bypassed_fills: int = 0
    prefetched_blocks: int = 0

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate


def clone_stats(stats: CacheStats) -> CacheStats:
    """Deep-copy a :class:`CacheStats` (used when snapshotting)."""
    return CacheStats(
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        evictions=stats.evictions,
        writebacks=stats.writebacks,
        compulsory_misses=stats.compulsory_misses,
        capacity_misses=stats.capacity_misses,
        conflict_misses=stats.conflict_misses,
    )

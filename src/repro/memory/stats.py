"""Statistics records for caches and the memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "HierarchySnapshot"]


@dataclass
class CacheStats:
    """Counters for one cache (or cache-like structure).

    Miss classification (``compulsory``/``capacity``/``conflict``) is only
    populated when the owning cache was built with ``classify_misses=True``;
    otherwise the three counters stay at zero while ``misses`` still counts.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    compulsory_misses: int = 0
    capacity_misses: int = 0
    conflict_misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 when the cache was never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def conflict_fraction(self) -> float:
        """Fraction of misses classified as conflict misses."""
        if self.misses == 0:
            return 0.0
        return self.conflict_misses / self.misses

    def reset(self) -> None:
        for f in _CACHE_FIELDS:
            setattr(self, f, 0)

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Field-wise sum — merge counters from two runs or intervals."""
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            *(
                getattr(self, f) + getattr(other, f)
                for f in _CACHE_FIELDS
            )
        )

    def __radd__(self, other) -> "CacheStats":
        if other == 0:  # so sum(stats_list) works without a start value
            return clone_stats(self)
        return self.__add__(other)

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        """Field-wise difference — the delta between two snapshots.

        Subtracting an earlier snapshot of the same cache from a later
        one yields the counters accrued *in between*; this is how
        telemetry turns boundary snapshots into per-region statistics.
        """
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            *(
                getattr(self, f) - getattr(other, f)
                for f in _CACHE_FIELDS
            )
        )


_CACHE_FIELDS = (
    "accesses",
    "hits",
    "misses",
    "evictions",
    "writebacks",
    "compulsory_misses",
    "capacity_misses",
    "conflict_misses",
)


@dataclass(frozen=True)
class HierarchySnapshot:
    """Immutable snapshot of the whole hierarchy's counters.

    Produced by :meth:`repro.memory.hierarchy.MemoryHierarchy.snapshot`;
    this is what experiment results store, so it must be hash-free plain
    data.
    """

    l1d: CacheStats
    l1i: CacheStats
    l2: CacheStats
    dtlb_misses: int
    itlb_misses: int
    mem_reads: int
    mem_writes: int
    assist_hits: int = 0
    bypassed_fills: int = 0
    prefetched_blocks: int = 0

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate

    def __add__(self, other: "HierarchySnapshot") -> "HierarchySnapshot":
        """Field-wise merge — aggregate hierarchy counters.

        Used wherever per-interval or per-cell statistics are combined
        (telemetry region totals, suite-level aggregation) instead of
        hand-rolled per-field arithmetic.
        """
        if not isinstance(other, HierarchySnapshot):
            return NotImplemented
        return HierarchySnapshot(
            l1d=self.l1d + other.l1d,
            l1i=self.l1i + other.l1i,
            l2=self.l2 + other.l2,
            dtlb_misses=self.dtlb_misses + other.dtlb_misses,
            itlb_misses=self.itlb_misses + other.itlb_misses,
            mem_reads=self.mem_reads + other.mem_reads,
            mem_writes=self.mem_writes + other.mem_writes,
            assist_hits=self.assist_hits + other.assist_hits,
            bypassed_fills=self.bypassed_fills + other.bypassed_fills,
            prefetched_blocks=self.prefetched_blocks + other.prefetched_blocks,
        )

    def __radd__(self, other) -> "HierarchySnapshot":
        if other == 0:  # so sum(snapshot_list) works without a start value
            return self
        return self.__add__(other)

    def __sub__(self, other: "HierarchySnapshot") -> "HierarchySnapshot":
        """Counter delta between a later and an earlier snapshot."""
        if not isinstance(other, HierarchySnapshot):
            return NotImplemented
        return HierarchySnapshot(
            l1d=self.l1d - other.l1d,
            l1i=self.l1i - other.l1i,
            l2=self.l2 - other.l2,
            dtlb_misses=self.dtlb_misses - other.dtlb_misses,
            itlb_misses=self.itlb_misses - other.itlb_misses,
            mem_reads=self.mem_reads - other.mem_reads,
            mem_writes=self.mem_writes - other.mem_writes,
            assist_hits=self.assist_hits - other.assist_hits,
            bypassed_fills=self.bypassed_fills - other.bypassed_fills,
            prefetched_blocks=self.prefetched_blocks - other.prefetched_blocks,
        )


def clone_stats(stats: CacheStats) -> CacheStats:
    """Deep-copy a :class:`CacheStats` (used when snapshotting)."""
    return CacheStats(
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        evictions=stats.evictions,
        writebacks=stats.writebacks,
        compulsory_misses=stats.compulsory_misses,
        capacity_misses=stats.capacity_misses,
        conflict_misses=stats.conflict_misses,
    )

"""Set-associative translation lookaside buffer.

Only hit/miss behaviour is modelled (there is no page table): a TLB miss
costs a fixed penalty, per the SimpleScalar baseline the paper builds
on.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.params import TLBParams

__all__ = ["TLB"]


class TLB:
    """LRU set-associative TLB over virtual page numbers."""

    def __init__(self, params: TLBParams):
        self.params = params
        self.accesses = 0
        self.misses = 0
        self._page_shift = params.page_size.bit_length() - 1
        self._num_sets = params.num_sets
        self._assoc = params.assoc
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    def page_of(self, addr: int) -> int:
        return addr >> self._page_shift

    def lookup(self, addr: int) -> bool:
        """Translate ``addr``; return True on hit, filling on miss."""
        page = addr >> self._page_shift
        tlb_set = self._sets[page % self._num_sets]
        self.accesses += 1
        if page in tlb_set:
            tlb_set.move_to_end(page)
            return True
        self.misses += 1
        if len(tlb_set) >= self._assoc:
            tlb_set.popitem(last=False)
        tlb_set[page] = None
        return False

    def bulk_lookup(self, pages):
        """Replay a page-number stream at once; return per-access miss flags.

        Numpy-kernel equivalent of per-access :meth:`lookup` against
        the live sets (see :func:`repro.memory.bulk.replay_tlb`).
        """
        from repro.memory import bulk

        return bulk.replay_tlb(self, pages)

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

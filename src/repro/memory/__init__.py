"""Memory-hierarchy substrate: caches, TLBs, DRAM, and the hierarchy.

This package implements the machine of the paper's Table 1: split 4-way
L1 caches, a unified L2, data/instruction TLBs, and a fixed-latency main
memory behind an 8-byte bus.  The hierarchy exposes hook points (see
:mod:`repro.memory.assist`) through which the run-time hardware
optimizers of :mod:`repro.hwopt` (cache bypassing, victim caches) attach.
"""

from repro.memory.assist import AssistInterface, FillDecision
from repro.memory.block import CacheBlock
from repro.memory.cache import SetAssociativeCache
from repro.memory.column import ColumnAssociativeCache
from repro.memory.dram import MainMemory
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.stats import CacheStats, HierarchySnapshot
from repro.memory.tlb import TLB
from repro.memory.victim import VictimCache

__all__ = [
    "AccessResult",
    "AssistInterface",
    "CacheBlock",
    "CacheStats",
    "ColumnAssociativeCache",
    "FillDecision",
    "HierarchySnapshot",
    "MainMemory",
    "MemoryHierarchy",
    "SetAssociativeCache",
    "TLB",
    "VictimCache",
]

"""Analytical locality model: MRCs straight from the IR.

This package is the bridge the roadmap names between the compiler's
reuse analysis and the Mattson miss-ratio-curve machinery: it predicts
stack-distance histograms — and therefore full miss-ratio curves —
from the loop-nest IR alone, with no trace generation and no
simulation.

Two evaluation modes exist:

* :mod:`repro.analytic.model` — the closed-form model.  Per-reference
  reuse distances are derived symbolically from loop bounds, strides,
  and layouts (O(IR size), milliseconds for the whole suite).
* :mod:`repro.analytic.walk` — the exact walker.  The IR is walked
  with the same semantics as the trace interpreter but addresses feed
  an LRU stack directly; the result matches the trace-driven
  histogram *exactly*, which is how the closed-form model is
  validated (property-tested in ``tests/analytic``).

Consumers:

* :mod:`repro.analytic.gating` — analytic ON/OFF gating, compared
  against the simulator-driven :func:`repro.hwopt.policy.recommend_gating`;
* :mod:`repro.analytic.tiles` — model-driven tile-size search used by
  :class:`repro.compiler.optimizer.LocalityOptimizer`;
* :mod:`repro.analytic.predict` — the ``repro predict`` CLI and the
  service's ``POST /v1/predict`` endpoint.

Imports here stay light so that :mod:`repro.compiler.optimizer` can
lazily pull :mod:`repro.analytic.tiles` without an import cycle
through :mod:`repro.analytic.predict` (which imports the optimizer).
"""

from repro.analytic.model import (
    LocalityModel,
    PredictedRegion,
    predict_histogram,
    predict_nest_histogram,
)
from repro.analytic.walk import walk_histogram, walk_profile

__all__ = [
    "LocalityModel",
    "PredictedRegion",
    "predict_histogram",
    "predict_nest_histogram",
    "walk_histogram",
    "walk_profile",
]

"""Analytic ON/OFF gating: the MRC policy evaluated without a trace.

:func:`analytic_gating` rebuilds exactly the program the selective
pipeline simulates — instantiate, insert markers, run the locality
optimizer — but instead of tracing it, scores each *static* uniform
region with the closed-form model of :mod:`repro.analytic.model` and
applies the same decision rule as
:func:`repro.hwopt.policy.compare_policies`: ON where the predicted
miss ratio at the L1 capacity is at or above the program's predicted
ratio floored at ``miss_floor``.  The result reuses the policy
dataclasses, so rendering and evaluation code works on either source.

The simulator's comparison operates on *dynamic* regions (a marker
inside a loop produces one region per iteration — tpcc has hundreds),
the analytic one on *static* regions, so region lists are not
index-comparable.  :func:`gating_agreement` therefore compares the two
at the level that matters for the hardware: for each gate class the
compiler emitted (OFF regions, ON regions), does the model-driven
policy reach the same reference-weighted majority verdict on both
sides?  This is the benchmark-level agreement score reported in
EXPERIMENTS.md against the simulator-driven 12/13 template.
"""

from __future__ import annotations

from typing import Optional

from repro.analytic.model import LocalityModel
from repro.compiler.ir.program import Program
from repro.hwopt.policy import (
    DEFAULT_MISS_FLOOR,
    GatingComparison,
    GatingRecommendation,
)
from repro.params import MachineParams

__all__ = [
    "analytic_gating",
    "analytic_gating_for_program",
    "gating_agreement",
]


def analytic_gating_for_program(
    program: Program,
    cache_lines: int,
    line_size: int = 32,
    threshold: Optional[float] = None,
    miss_floor: float = DEFAULT_MISS_FLOOR,
    model: Optional[LocalityModel] = None,
) -> GatingComparison:
    """Model-vs-compiler gating for an already-prepared program.

    ``program`` must carry region annotations (the optimizer or
    :func:`repro.compiler.regions.detect.detect_regions` leaves them
    in place); ``model`` lets callers reuse an existing
    :class:`LocalityModel` instead of rebuilding one.
    """
    if cache_lines <= 0:
        raise ValueError("cache_lines must be positive")
    if not 0.0 <= miss_floor <= 1.0:
        raise ValueError(
            f"miss_floor must be a ratio in [0, 1], got {miss_floor!r}"
        )
    model = model or LocalityModel(program, line_size)
    if threshold is None:
        program_ratio = model.miss_ratio(cache_lines)
        threshold = max(program_ratio, miss_floor)
    recommendations = []
    for region in model.occupied_regions():
        ratio = region.curve().miss_ratio(cache_lines)
        recommendations.append(
            GatingRecommendation(
                region_index=region.index,
                compiler_on=region.gate_on,
                model_on=ratio >= threshold,
                miss_ratio=ratio,
                memory_refs=region.memory_refs,
            )
        )
    return GatingComparison(
        trace_name=f"{program.name}/analytic",
        cache_lines=cache_lines,
        threshold=threshold,
        recommendations=tuple(recommendations),
    )


def analytic_gating(
    spec,
    scale,
    machine: MachineParams,
    threshold: Optional[float] = None,
    miss_floor: float = DEFAULT_MISS_FLOOR,
) -> GatingComparison:
    """Analytic gating for one benchmark, end to end — no trace.

    Rebuilds the selective program exactly as
    :func:`repro.core.versions.prepare_codes` does (markers first, then
    the optimizer planned against the same machine) and scores it with
    the closed-form model at the machine's L1D geometry.
    """
    from repro.compiler.optimizer import LocalityOptimizer
    from repro.compiler.regions.markers import insert_markers

    program = spec.instantiate(scale)
    insert_markers(program)
    LocalityOptimizer(machine).optimize(program)
    return analytic_gating_for_program(
        program,
        cache_lines=machine.l1d.num_blocks,
        line_size=machine.l1d.block_size,
        threshold=threshold,
        miss_floor=miss_floor,
    )


def _class_verdicts(comparison: GatingComparison) -> dict[bool, bool]:
    """Reference-weighted majority model verdict per compiler class."""
    weights: dict[bool, dict[bool, int]] = {}
    for rec in comparison.recommendations:
        votes = weights.setdefault(rec.compiler_on, {True: 0, False: 0})
        votes[rec.model_on] += max(rec.memory_refs, 1)
    return {
        compiler_on: votes[True] >= votes[False]
        for compiler_on, votes in weights.items()
    }


def gating_agreement(
    analytic: GatingComparison, simulated: GatingComparison
) -> bool:
    """Do the analytic and simulated policies reach the same verdicts?

    True when, for every compiler gate class present on both sides,
    the reference-weighted majority model decision matches.  Classes
    present on only one side (e.g. a static region whose dynamic spans
    issued no references) are skipped — there is nothing to compare.
    """
    analytic_verdicts = _class_verdicts(analytic)
    simulated_verdicts = _class_verdicts(simulated)
    shared = analytic_verdicts.keys() & simulated_verdicts.keys()
    return all(
        analytic_verdicts[cls] == simulated_verdicts[cls] for cls in shared
    )

"""Exact IR walker: trace-identical stack distances, no trace.

This is the validation half of the analytic subsystem.  It executes a
program with *exactly* the semantics of
:class:`repro.tracegen.interpreter.TraceGenerator` — same reference
order (reads, ALU, writes), same scalar address assignment, same
index-then-data behavior of :class:`IndexedRef`, same persistent
pointer-chase chains — but instead of materializing trace records it
feeds each touched line straight into a
:class:`repro.locality.stack.ReuseStackEngine`.

The resulting histograms are therefore *bit-identical* to
``distance_histogram(TraceGenerator(program).generate_packed())`` and
``split_profiles(...)`` (property-tested in
``tests/analytic/test_walk_exact.py``), while allocating no
per-instruction storage.  The closed-form model
(:mod:`repro.analytic.model`) is judged against this walker.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import (
    AffineRef,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    RegisterRef,
    ScalarRef,
)
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.locality.mrc import DistanceHistogram
from repro.locality.profile import LocalityProfile, RegionProfile
from repro.locality.stack import ReuseStackEngine
from repro.tracegen.memory_map import SCALAR_BASE, assign_addresses

__all__ = ["walk_histogram", "walk_profile"]


class _Walker:
    """One execution of the program against an LRU stack.

    Mirrors ``TraceGenerator`` record-for-record: ``self._offset``
    counts emitted trace records (loads, stores, ALU bursts, branches,
    markers) so region ``start`` offsets match
    :func:`repro.locality.profile.split_profiles` exactly.
    """

    def __init__(
        self,
        program: Program,
        line_size: int,
        initially_on: bool,
        engine: Optional[ReuseStackEngine] = None,
    ):
        self.program = program
        self.line_size = line_size
        assign_addresses(program)  # idempotent, same map as the tracer
        self._engine = engine or ReuseStackEngine()
        self._scalar_addrs: dict[str, int] = {}
        self._assign_scalars()
        self._chains: dict[str, int] = {}
        self._offset = 0
        self.regions: list[RegionProfile] = [
            RegionProfile(0, initially_on, 0)
        ]
        self._record = self.regions[0].histogram.record

    # -- scalar addresses (same order as TraceGenerator._assign_pcs) ----

    def _assign_scalars(self) -> None:
        cursor = SCALAR_BASE

        def register(name: str) -> None:
            nonlocal cursor
            if name not in self._scalar_addrs:
                self._scalar_addrs[name] = cursor
                cursor += 8

        def visit(nodes) -> None:
            for node in nodes:
                if isinstance(node, Loop):
                    visit(node.body)
                elif isinstance(node, Statement):
                    for ref in node.references:
                        if isinstance(ref, ScalarRef):
                            register(ref.name)
                        elif isinstance(ref, RegisterRef) and isinstance(
                            ref.original, ScalarRef
                        ):
                            register(ref.original.name)

        visit(self.program.body)

    # -- execution -------------------------------------------------------

    def run(self) -> None:
        self._exec_nodes(self.program.body, {})

    def _exec_nodes(self, nodes: list[Node], bindings: dict[str, int]):
        for node in nodes:
            if isinstance(node, Loop):
                self._exec_loop(node, bindings)
            elif isinstance(node, Statement):
                self._exec_statement(node, bindings)
            elif isinstance(node, MarkerStmt):
                region = RegionProfile(
                    len(self.regions), node.activates, self._offset
                )
                self.regions.append(region)
                self._record = region.histogram.record
                self._offset += 1
            else:  # pragma: no cover - IR is closed over these types
                raise TypeError(f"cannot execute {node!r}")

    def _exec_loop(self, loop: Loop, bindings: dict[str, int]) -> None:
        lower = loop.lower.eval(bindings)
        upper = loop.upper.eval(bindings)
        body = loop.body
        variable = loop.var
        for value in range(lower, upper, loop.step):
            bindings[variable] = value
            self._exec_nodes(body, bindings)
            self._offset += 2  # induction ALU + branch

    def _exec_statement(
        self, statement: Statement, bindings: Mapping[str, int]
    ) -> None:
        for ref in statement.reads:
            self._touch(ref, bindings)
        if statement.work:
            self._offset += 1  # one compressed ALU burst record
        for ref in statement.writes:
            self._touch(ref, bindings)

    def _access(self, addr: int) -> None:
        self._record(self._engine.access(addr // self.line_size))
        self._offset += 1

    def _touch(self, ref, bindings: Mapping[str, int]) -> None:
        if isinstance(ref, AffineRef):
            self._access(ref.address(bindings))
        elif isinstance(ref, ScalarRef):
            self._access(self._scalar_addrs[ref.name])
        elif isinstance(ref, RegisterRef):
            pass  # promoted to a register: no memory traffic
        elif isinstance(ref, IndexedRef):
            index_addr, data_addr = ref.addresses(bindings)
            self._access(index_addr)
            self._access(data_addr)
        elif isinstance(ref, PointerChaseRef):
            node = self._chains.get(ref.chain, 0)
            addr, nxt = ref.address_and_next(node)
            self._access(addr)
            self._chains[ref.chain] = nxt
        elif isinstance(ref, NonAffineRef):
            self._access(ref.address(bindings))
        else:  # pragma: no cover - reference taxonomy is closed
            raise TypeError(f"cannot execute reference {ref!r}")


def walk_histogram(
    program: Program,
    line_size: int = 32,
    engine: Optional[ReuseStackEngine] = None,
) -> DistanceHistogram:
    """Exact whole-program stack-distance histogram, no trace.

    Equals ``distance_histogram(trace, line_size)`` for the trace the
    interpreter would generate from the same program.
    """
    walker = _Walker(program, line_size, initially_on=False, engine=engine)
    walker.run()
    merged = DistanceHistogram()
    for region in walker.regions:
        merged = merged.merged(region.histogram)
    return merged


def walk_profile(
    program: Program,
    line_size: int = 32,
    initially_on: bool = False,
) -> LocalityProfile:
    """Exact per-region locality profile, no trace.

    Equals ``split_profiles(trace, line_size, initially_on)`` for the
    interpreter's trace of the same program — one shared LRU stack,
    distances binned into the dynamic region they occur in.
    """
    walker = _Walker(program, line_size, initially_on=initially_on)
    walker.run()
    return LocalityProfile(program.name, line_size, walker.regions)

"""Closed-form locality model: stack-distance histograms from the IR.

The model walks the loop-nest IR once and, for every memory reference,
derives where its accesses land on the Mattson stack-distance axis as a
closed-form function of loop trip counts, address strides (under the
*current* storage layouts, so it sees what interchange/layout/tiling
did), and the cache line size.  The output is an ordinary
:class:`repro.locality.mrc.DistanceHistogram`, so every downstream
consumer of the trace-driven machinery — miss-ratio curves, the gating
policy, the evaluation tables — works unchanged, in O(IR size) instead
of O(trace length).

Per affine reference the derivation is the classic one (cf. "Fully
Symbolic Analysis of Loop Locality"): along the enclosing loop chain
``(L_1 .. L_d)`` the byte delta per iteration of ``L_k`` is
``address_stride(ref, L_k.var) * L_k.step``.  Scanning levels from the
innermost outwards,

* ``delta == 0``  — temporal reuse carried by ``L_k``: all but the
  first of ``N_k`` traversals re-touch the same line, at a stack
  distance of the lines one ``L_k`` body iteration touches;
* ``0 < |delta| < line`` — spatial reuse: a traversal of ``N_k``
  iterations touches ``ceil(N_k * delta / line)`` distinct lines, the
  remaining accesses hit at the same body-iteration distance;
* ``|delta| >= line`` — no reuse at this level; the accesses stay
  candidates for reuse carried further out.

What survives every level is a cold miss, clamped to the reference's
footprint in lines; accesses beyond the footprint are re-traversals at
footprint distance.  References that share an array and the same delta
signature are *grouped* by their constant byte offsets: offsets within
one line (the read and write of ``a[i] += ...``, trailing-dimension
stencil taps) fold into one stream whose extra copies are
near-immediate reuses, and offsets that are an in-range multiple of
some level's delta (``a[i-1][j]`` against ``a[i][j]``: one iteration
of the ``i`` loop) are *group translations* — reuses carried by that
loop, at the distance its intervening iterations touch.  Offsets with
neither relation (the distinct columns of a column-store scan) stay
separate streams; without the distinction, a three-column table scan
would be underpredicted three-fold, and with plain per-offset streams
a stencil would overcount cold misses several-fold.

Non-analyzable references get coarse but honest models: indexed /
non-affine data accesses are uniform draws over the target array's
line footprint (expected-distinct for cold, a quantile spread for
reuse distances), pointer chases are cyclic traversals that thrash
any LRU cache smaller than the cycle.  Both are *interleave-scaled*:
the stack distance between two draws of the same line includes the
lines every other stream in the loop body touches during the reuse
gap, so a small hot table inside a streaming loop still shows the
capacity pressure the full-stack simulation sees.  These are exactly
the behaviors the paper's hardware mechanisms exist to absorb, so the
model flags them with high predicted miss ratios — which is what the
analytic gating consumer needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.compiler.analysis.classify import HARDWARE, SOFTWARE
from repro.compiler.analysis.reuse import address_stride
from repro.compiler.ir.expr import AffineExpr, MaxExpr, MinExpr
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import (
    AffineRef,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    RegisterRef,
    ScalarRef,
)
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.locality.mrc import DistanceHistogram, MissRatioCurve

__all__ = [
    "LocalityModel",
    "PredictedRegion",
    "predict_histogram",
    "predict_nest_histogram",
]

#: Quantile buckets used to spread the reuse distances of random-access
#: references uniformly over their footprint (an 8-step staircase is a
#: close enough approximation of the linear random-access MRC).
_RANDOM_BUCKETS = 8


@dataclass
class PredictedRegion:
    """Predicted locality of one static uniform region."""

    index: int
    gate_on: bool
    histogram: DistanceHistogram = field(default_factory=DistanceHistogram)

    @property
    def memory_refs(self) -> int:
        return self.histogram.total

    def curve(self) -> MissRatioCurve:
        return self.histogram.curve()


@dataclass
class _Level:
    """One enclosing loop of a reference group."""

    loop: Loop
    trip: int


@dataclass
class _Group:
    """References sharing one array, delta signature, and loop chain."""

    kind: str  # "affine" | "scalar" | "random" | "pointer"
    region: PredictedRegion
    chain: tuple[_Level, ...]
    deltas: tuple[int, ...] = ()
    #: Constant byte offset of the representative reference.
    offset: int = 0
    #: References per innermost iteration mapped onto this group.
    copies: int = 0
    #: Footprint of the random/pointer target, in cache lines.
    target_lines: int = 1
    #: Perplexity of the draw distribution over the target's lines
    #: (computed from the index array's actual data); 0 = unknown,
    #: treated as uniform over ``target_lines``.
    eff_lines: float = 0.0
    #: Translated copies (stencil taps): each entry is the candidate
    #: ``(gap, chain position)`` interpretations of one reference whose
    #: offset is an in-range multiple of that level's delta.
    far_copies: list = field(default_factory=list)

    @property
    def executions(self) -> int:
        product = 1
        for level in self.chain:
            product *= max(level.trip, 0)
        return product

    def _factor(self, position: int, line_size: int) -> int:
        """Distinct lines multiplier contributed by chain level ``position``.

        Only meaningful for affine/scalar groups; random and pointer
        groups carry their own footprint in ``target_lines``.
        """
        level = self.chain[position]
        trip = max(level.trip, 1)
        delta = abs(self.deltas[position])
        if delta == 0 or trip <= 1:
            return 1
        if delta >= line_size:
            return trip
        lines = -(-(trip * delta) // line_size)  # ceil
        return min(max(lines, 1), trip)

    def lines_below(self, position: int, line_size: int) -> float:
        """Distinct lines one iteration of chain level ``position`` touches
        (i.e. the footprint of the levels strictly inside it)."""
        if self.kind in ("random", "pointer"):
            draws = self.copies
            for level in self.chain[position + 1:]:
                draws *= max(level.trip, 1)
            return float(min(draws, self.target_lines))
        lines = 1.0
        for inner in range(position + 1, len(self.chain)):
            lines *= self._factor(inner, line_size)
        return lines

    def footprint_lines(self, line_size: int) -> int:
        """Distinct lines the whole group touches over its chain."""
        if self.kind in ("random", "pointer"):
            return max(self.target_lines, 1)
        lines = 1
        for position in range(len(self.chain)):
            lines *= self._factor(position, line_size)
        return max(lines, 1)


class LocalityModel:
    """Closed-form locality prediction for one program.

    Builds per-region predicted stack-distance histograms (regions as
    annotated by :mod:`repro.compiler.regions.detect`; a program
    without annotations forms a single gate-off region) plus the
    whole-program histogram.  All in one IR pass — no addresses need
    to be assigned and no trace exists.
    """

    def __init__(self, program_or_nodes, line_size: int = 32):
        self.line_size = line_size
        self.regions: list[PredictedRegion] = []
        self._groups: list[_Group] = []
        #: Affine stream bundles: (region, chain, array, deltas) ->
        #: the groups found so far, distinguished by constant offset.
        self._affine: dict[tuple, list[_Group]] = {}
        #: Scalar / random / pointer groups, unique per key.
        self._keyed: dict[tuple, _Group] = {}
        self._default_region: Optional[PredictedRegion] = None
        if isinstance(program_or_nodes, Program):
            nodes: Iterable[Node] = program_or_nodes.body
        elif isinstance(program_or_nodes, Loop):
            nodes = [program_or_nodes]
        else:
            nodes = list(program_or_nodes)
        self._collect(nodes, (), None)
        self._emit_all()

    # -- public results ------------------------------------------------

    def total_histogram(self) -> DistanceHistogram:
        merged = DistanceHistogram()
        for region in self.regions:
            merged = merged.merged(region.histogram)
        return merged

    def curve(self) -> MissRatioCurve:
        return self.total_histogram().curve()

    def miss_ratio(self, cache_lines: int) -> float:
        return self.curve().miss_ratio(cache_lines)

    def occupied_regions(self) -> list[PredictedRegion]:
        return [r for r in self.regions if r.memory_refs]

    # -- region bookkeeping --------------------------------------------

    def _new_region(self, gate_on: bool) -> PredictedRegion:
        region = PredictedRegion(len(self.regions), gate_on)
        self.regions.append(region)
        return region

    def _fallback_region(self) -> PredictedRegion:
        if self._default_region is None:
            self._default_region = self._new_region(False)
        return self._default_region

    # -- collection pass ------------------------------------------------

    def _collect(
        self,
        nodes: Iterable[Node],
        chain: tuple[_Level, ...],
        region: Optional[PredictedRegion],
    ) -> None:
        steps = {level.loop.var: level.loop.step for level in chain}
        for node in nodes:
            if isinstance(node, MarkerStmt):
                continue
            if isinstance(node, Loop):
                inner_region = region
                if region is None and node.preference in (
                    SOFTWARE,
                    HARDWARE,
                ):
                    inner_region = self._new_region(
                        node.preference == HARDWARE
                    )
                level = _Level(node, _model_trip(node, steps))
                self._collect(node.body, chain + (level,), inner_region)
            elif isinstance(node, Statement):
                target = region
                if target is None:
                    if node.preference in (SOFTWARE, HARDWARE):
                        target = self._new_region(
                            node.preference == HARDWARE
                        )
                    else:
                        target = self._fallback_region()
                self._statement(node, chain, target)

    def _statement(
        self,
        statement: Statement,
        chain: tuple[_Level, ...],
        region: PredictedRegion,
    ) -> None:
        for ref in statement.references:
            self._reference(ref, chain, region)

    def _reference(self, ref, chain, region) -> None:
        chain_key = tuple(id(level.loop) for level in chain)
        if isinstance(ref, RegisterRef):
            return  # promoted: no memory traffic
        if isinstance(ref, AffineRef):
            self._affine_reference(ref, chain, region, chain_key)
        elif isinstance(ref, ScalarRef):
            deltas = tuple(0 for _ in chain)
            key = (id(region), chain_key, "scalar", ref.name)
            group = self._keyed.get(key)
            if group is None:
                group = _Group("scalar", region, chain, deltas)
                self._keyed[key] = group
                self._groups.append(group)
            group.copies += 1
        elif isinstance(ref, IndexedRef):
            # The index load is a plain affine access; the data access
            # is a random draw over the data array's footprint.
            self._reference(ref.index, chain, region)
            self._random_group(
                ref.array, chain, region, chain_key, indexed=ref
            )
        elif isinstance(ref, PointerChaseRef):
            lines = self._pointer_lines(ref)
            key = (id(region), chain_key, "pointer", ref.array.name, ref.chain)
            group = self._keyed.get(key)
            if group is None:
                group = _Group("pointer", region, chain, target_lines=lines)
                self._keyed[key] = group
                self._groups.append(group)
            group.copies += 1
        elif isinstance(ref, NonAffineRef):
            self._random_group(ref.array, chain, region, chain_key)

    def _affine_reference(self, ref, chain, region, chain_key) -> None:
        strides = _effective_strides(ref, chain)
        deltas = tuple(
            stride * level.loop.step
            for stride, level in zip(strides, chain)
        )
        offset = _constant_offset(ref)
        bundle = (id(region), chain_key, ref.array.name, deltas)
        groups = self._affine.setdefault(bundle, [])
        for group in groups:
            diff = offset - group.offset
            if abs(diff) < self.line_size:
                group.copies += 1  # shares the representative's lines
                return
            candidates = _translation_candidates(diff, chain, deltas)
            if candidates:
                group.far_copies.append(candidates)
                return
        group = _Group("affine", region, chain, deltas, offset=offset)
        group.target_lines = self._array_lines(ref.array)
        group.copies = 1
        groups.append(group)
        self._groups.append(group)

    def _random_group(
        self, array, chain, region, chain_key, indexed=None
    ) -> None:
        key = (id(region), chain_key, "random", array.name)
        group = self._keyed.get(key)
        if group is None:
            group = _Group(
                "random",
                region,
                chain,
                target_lines=self._array_lines(array),
            )
            if indexed is not None:
                group.eff_lines = self._effective_lines(indexed)
            self._keyed[key] = group
            self._groups.append(group)
        group.copies += 1

    def _effective_lines(self, ref: IndexedRef) -> float:
        """Perplexity of the draw distribution over the target's lines.

        The index array's initialization data is part of the IR, so
        the model can see *how skewed* the draws are: for uniform
        indices this equals the touched-line count, for zipf-skewed
        ones (hot groups in an aggregation) it is much smaller — and
        the typical reuse gap shrinks accordingly.
        """
        data = ref.index.array.data
        if data is None:
            return 0.0
        values = np.asarray(data).reshape(-1)
        if values.size == 0:
            return 0.0
        per_line = max(self.line_size // ref.array.element_size, 1)
        targets = (
            values * ref.scale + ref.offset
        ) % ref.array.element_count
        counts = np.unique(targets // per_line, return_counts=True)[1]
        probabilities = counts / counts.sum()
        entropy = float(-(probabilities * np.log(probabilities)).sum())
        return math.exp(entropy)

    def _array_lines(self, array) -> int:
        return max(-(-array.footprint_bytes // self.line_size), 1)

    def _pointer_lines(self, ref: PointerChaseRef) -> int:
        nodes = (
            len(ref.array.data)
            if ref.array.data is not None
            else ref.array.element_count
        )
        if ref.node_size >= self.line_size:
            return max(nodes, 1)
        return max(-(-(nodes * ref.node_size) // self.line_size), 1)

    # -- emission pass ---------------------------------------------------

    def _emit_all(self) -> None:
        iteration_lines = self._iteration_lines()
        region_lines = self._region_lines()
        for group in self._groups:
            if group.kind in ("affine", "scalar"):
                self._emit_analyzable(group, iteration_lines)
            elif group.kind == "random":
                self._emit_random(group, iteration_lines, region_lines)
            else:
                self._emit_pointer(group, iteration_lines, region_lines)

    def _iteration_lines(self) -> dict[int, float]:
        """Distinct lines one body iteration of each loop touches.

        Summed over every group the loop encloses; the innermost-level
        value (position = chain end) degenerates to the number of
        distinct line-groups one statement batch touches.
        """
        lines: dict[int, float] = {}
        for group in self._groups:
            for position, level in enumerate(group.chain):
                key = id(level.loop)
                lines[key] = lines.get(key, 0.0) + group.lines_below(
                    position, self.line_size
                )
        return lines

    def _region_lines(self) -> dict[int, float]:
        """Total distinct lines each region's groups touch."""
        totals: dict[int, float] = {}
        for group in self._groups:
            key = id(group.region)
            totals[key] = totals.get(key, 0.0) + group.footprint_lines(
                self.line_size
            )
        return totals

    def _inner_distance(
        self,
        group: _Group,
        position: int,
        iteration_lines: dict[int, float],
    ) -> int:
        """Stack distance of a reuse carried by chain level ``position``:
        the *other* distinct lines one body iteration touches."""
        level = group.chain[position]
        total = iteration_lines.get(id(level.loop), 1.0)
        return max(int(round(total)) - 1, 0)

    def _near_distance(self, group: _Group) -> int:
        """Distance of intra-iteration (copy) reuses."""
        if not group.chain:
            return 0
        innermost = group.chain[-1]
        peers = sum(
            1
            for other in self._groups
            if other.chain and other.chain[-1].loop is innermost.loop
        )
        return max(peers - 1, 0)

    def _emit_analyzable(
        self, group: _Group, iteration_lines: dict[int, float]
    ) -> None:
        histogram = group.region.histogram
        executions = group.executions
        if executions <= 0 or group.copies <= 0:
            return
        # Copies beyond the representative are near-immediate reuses.
        near = (group.copies - 1) * executions
        if near:
            _bump(histogram, self._near_distance(group), near)
        # Translated copies (a[i-1][j] against a[i][j]) reuse the
        # representative's lines after ``gap`` iterations of the
        # carrying loop; the cheapest interpretation wins the stack.
        for candidates in group.far_copies:
            distance = min(
                int(
                    round(
                        gap
                        * iteration_lines.get(
                            id(group.chain[position].loop), 1.0
                        )
                    )
                )
                for gap, position in candidates
            )
            _bump(histogram, max(distance - 1, 0), executions)

        remaining = executions
        for position in range(len(group.chain) - 1, -1, -1):
            if remaining <= 0:
                break
            level = group.chain[position]
            trip = level.trip
            if trip <= 1:
                continue
            delta = abs(group.deltas[position])
            if delta >= self.line_size:
                continue  # every iteration a new line at this level
            if delta == 0:
                reuses = remaining * (trip - 1) // trip
            else:
                new_lines = min(
                    max(-(-(trip * delta) // self.line_size), 1), trip
                )
                reuses = remaining * (trip - new_lines) // trip
            if reuses <= 0:
                continue
            distance = self._inner_distance(group, position, iteration_lines)
            _bump(histogram, distance, reuses)
            remaining -= reuses

        if remaining <= 0:
            return
        footprint = group.footprint_lines(self.line_size)
        if group.kind == "scalar":
            footprint = 1
        else:
            footprint = min(footprint, group.target_lines)
        cold = min(remaining, footprint)
        histogram.cold += cold
        leftover = remaining - cold
        if leftover > 0:
            # Re-traversals of the full footprint (the clamp bit): they
            # hit only in caches that hold the whole footprint.
            _bump(histogram, max(footprint - 1, 0), leftover)

    def _other_rate(
        self, group: _Group, iteration_lines: dict[int, float]
    ) -> float:
        """Lines per innermost iteration touched by *other* streams."""
        if not group.chain:
            return 0.0
        innermost = group.chain[-1]
        total = iteration_lines.get(id(innermost.loop), 0.0)
        own = group.lines_below(len(group.chain) - 1, self.line_size)
        return max(total - own, 0.0)

    def _other_cap(
        self, group: _Group, region_lines: dict[int, float]
    ) -> float:
        """Distinct lines other streams in the region can pile up."""
        total = region_lines.get(id(group.region), 0.0)
        return max(total - group.target_lines, 0.0)

    def _emit_random(
        self,
        group: _Group,
        iteration_lines: dict[int, float],
        region_lines: dict[int, float],
    ) -> None:
        histogram = group.region.histogram
        draws = group.copies * group.executions
        if draws <= 0:
            return
        footprint = group.target_lines
        expected = footprint * -math.expm1(-draws / footprint)
        cold = min(int(round(expected)), draws, footprint)
        cold = max(cold, 1)
        histogram.cold += cold
        reuses = draws - cold
        if reuses <= 0:
            return
        # Uniform draws over the footprint: the reuse gap of a line is
        # geometric with mean ``footprint`` draws, during which the
        # group itself touches ``footprint * q`` distinct lines (q the
        # gap quantile) and the other streams in the loop body add
        # their per-iteration traffic — that interleave is what makes
        # a small hot table miss inside a streaming loop.  A quantile
        # staircase over q approximates the resulting distance mix.
        copies = max(group.copies, 1)
        effective = footprint
        if 0.0 < group.eff_lines < footprint:
            effective = group.eff_lines  # skewed draws: shorter gaps
        other_rate = self._other_rate(group, iteration_lines)
        other_cap = self._other_cap(group, region_lines)
        per_bucket = reuses // _RANDOM_BUCKETS
        spilled = reuses - per_bucket * _RANDOM_BUCKETS
        for bucket in range(_RANDOM_BUCKETS):
            count = per_bucket + (spilled if bucket == 0 else 0)
            if count <= 0:
                continue
            quantile = (2 * bucket + 1) / (2 * _RANDOM_BUCKETS)
            own = effective * quantile
            gap_iterations = (
                -effective * math.log1p(-quantile) / copies
            )
            other = min(other_rate * gap_iterations, other_cap)
            _bump(histogram, int(own + other), count)

    def _emit_pointer(
        self,
        group: _Group,
        iteration_lines: dict[int, float],
        region_lines: dict[int, float],
    ) -> None:
        histogram = group.region.histogram
        draws = group.copies * group.executions
        if draws <= 0:
            return
        cycle = group.target_lines
        cold = min(draws, cycle)
        histogram.cold += cold
        reuses = draws - cold
        if reuses > 0:
            # A cyclic walk revisits each line after touching every
            # other line in the cycle — plus whatever the other streams
            # interleave during the lap: LRU thrash below that total.
            copies = max(group.copies, 1)
            other = min(
                self._other_rate(group, iteration_lines) * cycle / copies,
                self._other_cap(group, region_lines),
            )
            _bump(histogram, max(int(cycle + other) - 1, 0), reuses)


def _bound_coefficient(bound, name: str) -> int:
    """Coefficient of ``name`` in a loop bound, looking through the
    Min/Max clamps that strip-mining installs."""
    if isinstance(bound, AffineExpr):
        return bound.coefficient(name)
    if isinstance(bound, (MinExpr, MaxExpr)):
        for operand in bound.operands:
            coeff = _bound_coefficient(operand, name)
            if coeff:
                return coeff
    return 0


def _effective_strides(ref, chain: tuple[_Level, ...]) -> list[int]:
    """Per-level address stride of ``ref``, window anchoring included.

    A strip-mined controller variable (``i__t``) never appears in any
    subscript, yet advancing it moves the reference: the inner loops
    anchored to it (``i in [i__t, min(n, i__t + T))``) shift their
    whole window.  Its effective stride is the anchored loops' strides
    scaled by the anchor coefficients.  Without this, a tiled nest
    looks like it revisits the same addresses tile after tile and the
    model wildly over-credits temporal reuse.  Resolved innermost
    first so a controller of a controller would chain through.
    """
    strides = {
        level.loop.var: address_stride(ref, level.loop.var)
        for level in chain
    }
    for position in range(len(chain) - 1, -1, -1):
        name = chain[position].loop.var
        if strides[name]:
            continue  # appears in the subscripts directly
        anchored = 0
        for inner in chain[position + 1:]:
            coeff = _bound_coefficient(inner.loop.lower, name)
            anchored += coeff * strides[inner.loop.var]
        strides[name] = anchored
    return [strides[level.loop.var] for level in chain]


def _constant_offset(ref: AffineRef) -> int:
    """Constant byte offset of a reference under the current layout.

    The loop-variant part lives in the deltas; this is the rest — what
    separates ``a[i][0]`` from ``a[i][5]`` (different columns, possibly
    thousands of bytes under a column-store layout) or ``a[i-1]`` from
    ``a[i]`` (one element).
    """
    array = ref.array
    elements = 0
    for dim, subscript in enumerate(ref.subscripts):
        if subscript.const:
            elements += subscript.const * array.stride_of_dim(dim)
    return elements * array.element_size


def _translation_candidates(
    diff: int, chain: tuple[_Level, ...], deltas: tuple[int, ...]
) -> tuple[tuple[int, int], ...]:
    """Loop levels that can carry a reuse across offset ``diff``.

    ``diff`` bytes equal ``gap`` iterations of level ``k`` exactly when
    ``diff`` is a multiple of ``deltas[k]`` with the gap *strictly*
    inside the level's trip count — then the offset reference
    re-touches lines the representative touched ``gap`` iterations of
    ``k`` ago.  ``gap == trip`` is rejected: the translation lands
    exactly past the level's range, which is a different stream unless
    the next-outer level happens to be contiguous (``a[2i][j]`` and
    ``a[2i+1][j]`` walk disjoint interleaved rows forever).  Returns
    every ``(gap, position)`` interpretation (emission takes the one
    with the smallest stack distance).
    """
    candidates = []
    for position, level in enumerate(chain):
        delta = deltas[position]
        if not delta:
            continue
        gap, remainder = divmod(abs(diff), abs(delta))
        if remainder == 0 and 0 < gap < max(level.trip, 0):
            candidates.append((int(gap), position))
    return tuple(candidates)


def _bump(histogram: DistanceHistogram, distance: int, count: int) -> None:
    counts = histogram.counts
    counts[distance] = counts.get(distance, 0) + count


def _model_trip(loop: Loop, outer_steps: dict[str, int]) -> int:
    """Trip count for the model; tiled inner loops clamp to the strip.

    ``trip_count_estimate`` sees a strip-mined loop's pre-tiling bounds
    through its Min/Max constants, which would double-count the
    iteration space (controller trips x full extent).  A ``MinExpr``
    upper bound referencing a controlling tile variable means the loop
    runs at most one strip: the controller's step.
    """
    estimate = loop.trip_count_estimate()
    if isinstance(loop.upper, MinExpr):
        for operand in loop.upper.operands:
            if not isinstance(operand, AffineExpr) or operand.is_constant:
                continue
            names = operand.variables
            if len(names) != 1:
                continue
            variable = next(iter(names))
            step = outer_steps.get(variable)
            if step and operand.coefficient(variable) == 1:
                estimate = min(estimate, max(step, 1))
    return estimate


def predict_histogram(
    program: Program, line_size: int = 32
) -> DistanceHistogram:
    """Whole-program predicted stack-distance histogram (closed form)."""
    return LocalityModel(program, line_size).total_histogram()


def predict_nest_histogram(
    nest_head: Loop, line_size: int = 32
) -> DistanceHistogram:
    """Predicted histogram of one loop nest in isolation.

    Used by the tile-size search to score tiled candidate nests
    against each other; enclosing-loop context cancels out in the
    comparison.
    """
    return LocalityModel(nest_head, line_size).total_histogram()

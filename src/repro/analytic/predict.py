"""One-call analytic prediction for a benchmark: the CLI/service entry.

:func:`predict_benchmark` packages the whole analytic subsystem behind
a single JSON-ready payload: rebuild the selective program exactly as
the simulation pipeline would (markers, then the locality optimizer —
so the model sees post-transformation layouts, tiles included), run
the closed-form :class:`repro.analytic.model.LocalityModel` over it,
and report the predicted miss-ratio curve, the per-region gating
verdicts, and the tiling decisions the optimizer took.  No trace is
generated and nothing is simulated; this is the O(milliseconds) path
that ``repro predict`` and ``POST /v1/predict`` expose.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.analytic.gating import analytic_gating_for_program
from repro.analytic.model import LocalityModel
from repro.hwopt.policy import DEFAULT_MISS_FLOOR
from repro.locality.mrc import MissRatioCurve
from repro.params import MachineParams, base_config
from repro.workloads.base import Scale
from repro.workloads.registry import get_spec

__all__ = ["predict_benchmark"]


def _curve_points(
    curve: MissRatioCurve, cache_lines: int
) -> list[list[float]]:
    """Sample the predicted MRC at power-of-two capacities.

    The full step curve can have thousands of knees at medium scale;
    powers of two (plus the target L1 capacity) keep the payload small
    while preserving the shape evaluation cares about.  Sampling a
    monotone curve keeps it monotone.
    """
    top = max(curve.sizes())
    sizes = {cache_lines} if cache_lines > 0 else set()
    size = 1
    while size <= top:
        sizes.add(size)
        size *= 2
    sizes.add(top)
    return [
        [size, curve.miss_ratio(size)] for size in sorted(sizes)
    ]


def predict_benchmark(
    benchmark: str,
    scale: Scale,
    machine: Optional[MachineParams] = None,
    threshold: Optional[float] = None,
    miss_floor: float = DEFAULT_MISS_FLOOR,
) -> dict:
    """Analytic locality prediction for one benchmark, JSON-ready.

    Raises ``KeyError`` for an unknown benchmark (the service maps it
    to a 400) and ``ValueError`` for an out-of-range ``miss_floor``.
    """
    from repro.compiler.optimizer import LocalityOptimizer
    from repro.compiler.regions.markers import insert_markers

    started = time.perf_counter()
    spec = get_spec(benchmark)
    machine = machine or base_config().scaled(scale.machine_divisor)
    cache_lines = machine.l1d.num_blocks
    line_size = machine.l1d.block_size

    program = spec.instantiate(scale)
    insert_markers(program)
    report = LocalityOptimizer(machine).optimize(program)

    model = LocalityModel(program, line_size)
    comparison = analytic_gating_for_program(
        program,
        cache_lines=cache_lines,
        line_size=line_size,
        threshold=threshold,
        miss_floor=miss_floor,
        model=model,
    )
    curve = model.curve()
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    return {
        "benchmark": spec.name,
        "category": spec.category,
        "scale": scale.name,
        "machine": machine.name,
        "cache_lines": cache_lines,
        "line_size": line_size,
        "miss_floor": miss_floor,
        "threshold": comparison.threshold,
        "memory_refs": curve.total,
        "miss_ratio": curve.miss_ratio(cache_lines),
        "mrc": _curve_points(curve, cache_lines),
        "regions": [
            {
                "index": rec.region_index,
                "compiler_on": rec.compiler_on,
                "model_on": rec.model_on,
                "miss_ratio": rec.miss_ratio,
                "memory_refs": rec.memory_refs,
            }
            for rec in comparison.recommendations
        ],
        "model_on_regions": comparison.model_on_regions,
        "compiler_on_regions": comparison.compiler_on_regions,
        "tilings": [
            {
                "applied": tiling.applied,
                "tile_size": tiling.tile_size,
                "tiled_vars": list(tiling.tiled_vars),
                "reason": tiling.reason,
            }
            for tiling in report.tilings
        ],
        "elapsed_ms": elapsed_ms,
    }

"""Model-driven tile-size search.

:func:`repro.compiler.transforms.tiling.select_tile_size` picks a tile
edge from a pure capacity argument — footprint of a square tile versus
half the L1.  That ignores everything the closed-form model knows:
line-size effects on the trailing dimension, how many arrays actually
carry reuse, and the loop structure left after interchange and
skewing.  The search here closes that gap: for each candidate edge it
*tiles a throwaway clone of the nest*, asks
:func:`repro.analytic.predict_nest_histogram` for the predicted
miss-ratio at the L1 capacity, and keeps the edge that minimizes it.

The heuristic default stays the anchor: a candidate must *strictly*
beat the default's predicted ratio to displace it, so on nests where
the model is indifferent the behavior is unchanged — this is what
backs the "never worse than the fixed default" acceptance bar.
Legality is not re-derived here; every candidate goes through
:func:`apply_tiling`, which runs the dependence-relation check, and
blocked candidates simply drop out of the search.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.analytic.model import predict_nest_histogram
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import (
    AffineRef,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    RegisterRef,
)
from repro.compiler.transforms.tiling import (
    TilingResult,
    apply_tiling,
    select_tile_size,
)

__all__ = ["TileSearch", "choose_tile_size", "model_tiling"]

#: Candidate tile edges (powers of two); the heuristic default is
#: always added to the pool so the search can never lose to it.
_CANDIDATES = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class TileSearch:
    """Outcome of one model-driven tile search."""

    #: The winning tile edge (== ``default`` unless a candidate's
    #: predicted miss ratio strictly beat the default's).
    chosen: int
    #: The capacity-heuristic edge that anchored the search.
    default: int
    #: ``(tile, predicted miss ratio)`` for every legal candidate.
    scores: tuple[tuple[int, float], ...]

    @property
    def improved(self) -> bool:
        return self.chosen != self.default


def _clone_nest(nest_head: Loop) -> Loop:
    """Deep-copy a nest for a throwaway tiling, sharing array decls.

    ``ArrayDecl`` compares by identity and may carry bulky ``data``
    payloads (pointer-chase permutations), so the memo pins every decl
    reachable from the nest to itself: the clone's references point at
    the *same* decl objects while loops, bounds, and statements are
    fresh and safe to mutate.
    """
    memo: dict[int, object] = {}
    for statement in nest_head.all_statements():
        for ref in statement.references:
            if isinstance(ref, RegisterRef):
                ref = ref.original
            if isinstance(
                ref, (AffineRef, IndexedRef, NonAffineRef, PointerChaseRef)
            ):
                memo[id(ref.array)] = ref.array
            if isinstance(ref, IndexedRef):
                memo[id(ref.index.array)] = ref.index.array
    return copy.deepcopy(nest_head, memo)


def choose_tile_size(
    nest_head: Loop, l1_bytes: int, line_size: int = 32
) -> Optional[TileSearch]:
    """Pick the tile edge with the best predicted miss ratio.

    Returns ``None`` when no candidate (default included) can legally
    tile the nest — the caller falls back to plain ``apply_tiling``,
    which reports the blocker.
    """
    chain = nest_head.perfect_nest_loops()
    statements = (
        list(chain[-1].all_statements()) if len(chain) >= 2 else []
    )
    default = select_tile_size(l1_bytes, statements, len(chain))
    l1_lines = max(l1_bytes // line_size, 1)

    scores: list[tuple[int, float]] = []
    for tile in sorted({default, *_CANDIDATES}):
        clone = _clone_nest(nest_head)
        result = apply_tiling(clone, l1_bytes, tile_size=tile)
        if not result.applied:
            continue
        ratio = predict_nest_histogram(clone, line_size).curve().miss_ratio(
            l1_lines
        )
        scores.append((tile, ratio))
    if not scores:
        return None

    by_tile = dict(scores)
    chosen = default
    if default in by_tile:
        best = by_tile[default]
    else:
        chosen, best = min(scores, key=lambda item: (item[1], item[0]))
    for tile, ratio in scores:
        if ratio < best - 1e-9:  # strictly better than the incumbent
            chosen, best = tile, ratio
    return TileSearch(chosen, default, tuple(scores))


def model_tiling(
    nest_head: Loop, l1_bytes: int, line_size: int = 32
) -> TilingResult:
    """Tile ``nest_head`` in place with the model-chosen edge.

    Drop-in replacement for ``apply_tiling(nest_head, l1_bytes)`` in
    the optimizer pipeline: same legality checks, same
    :class:`TilingResult`, but the edge comes from the search above.
    """
    search = choose_tile_size(nest_head, l1_bytes, line_size)
    if search is None:
        return apply_tiling(nest_head, l1_bytes)
    return apply_tiling(nest_head, l1_bytes, tile_size=search.chosen)

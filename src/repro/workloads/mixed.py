"""Mixed-pattern workloads: Chaos, TPC-C, TPC-D Q1/Q3/Q6.

These alternate regular (compiler-optimizable) and irregular
(hardware-preferred) phases inside an outer loop, so region detection
produces a genuinely mixed program and the selective ON/OFF scheme has
phase boundaries to exploit — the paper's core scenario ("many programs
have a phase-by-phase nature", Section 5.1).

* *Chaos* — molecular dynamics on an irregular mesh: indexed
  gather/scatter over edges (hw) alternating with dense per-node
  updates (sw).
* *TPC-C* — OLTP: B-tree index probes with hot-warehouse skew (hw) and
  sequential row-segment scans (sw).
* *TPC-D Q1* — columnar scan + small-group aggregation.
* *TPC-D Q3* — scans + a hash join probe into a large table.
* *TPC-D Q6*  — predicate scan dominating a small index-probe phase.

For the TPC models the paper itself substituted "a code segment
performing the necessary operations" for a real DBMS — we do the same
at the access-pattern level.
"""

from __future__ import annotations

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import IndexedRef, PointerChaseRef
from repro.tracegen.irregular import (
    clustered_indices,
    permutation_chain,
    uniform_indices,
    zipf_indices,
)
from repro.workloads.base import Scale

__all__ = [
    "build_chaos",
    "build_tpcc",
    "build_tpcd_q1",
    "build_tpcd_q3",
    "build_tpcd_q6",
]

_NODE_SIZE = 32


def build_chaos(scale: Scale) -> Program:
    """Irregular-mesh molecular dynamics (*Chaos*, mesh.2k).

    Per time step: an edge-loop force gather/scatter through the mesh
    connectivity (irregular), then dense position/velocity updates on
    (3, N) component arrays whose base orientation is stride-N (the
    data transformation fixes it).
    """
    nodes = scale.n2d * scale.n2d // 2
    edges = nodes * 2
    b = ProgramBuilder("chaos")
    x = b.array("X", (nodes,))
    force = b.array("FORCE", (nodes,))
    ew = b.array("EW", (edges,))
    ia = b.index_array(
        "IA", clustered_indices(edges, nodes, cluster=24, jumps=0.1, seed=51)
    )
    ib = b.index_array(
        "IB", clustered_indices(edges, nodes, cluster=24, jumps=0.1, seed=52)
    )
    vel = b.array("VEL", (3, nodes))
    acc = b.array("ACC", (3, nodes))
    e, n, d = var("e"), var("n"), var("d")

    edge_phase = loop("e", 0, edges, [
        stmt(
            reads=[IndexedRef(x, ia[e]), IndexedRef(x, ib[e]), ew[e]],
            writes=[IndexedRef(force, ia[e])],
            work=5,
            label="gather",
        ),
    ])
    update_phase = loop("n", 0, nodes, [
        loop("d", 0, 3, [
            stmt(
                writes=[vel[d, n]],
                reads=[vel[d, n], acc[d, n]],
                work=2,
                label="kick",
            ),
        ]),
        stmt(writes=[x[n]], reads=[x[n], force[n]], work=2, label="drift"),
    ])
    b.append(loop("t", 0, scale.steps, [edge_phase, update_phase]))
    return b.build()


def build_tpcc(scale: Scale) -> Program:
    """OLTP transaction batches: index probes interleaved with scans.

    Each batch runs a burst of B-tree probes through hot-skewed keys (a
    few warehouses absorb most traffic) plus a pointer descent, then a
    short order-line settlement scan over a wide row-store segment.
    The rapid hardware/software phase alternation is the paper's
    victim-cache scenario (Section 5.2): in the naively-combined
    version every settlement scan flushes the victim cache that the
    next probe burst would have hit, while the selective version turns
    the mechanism off across the scan and preserves it.
    """
    batches = 48 * scale.steps
    txns_per_batch = max(scale.n1d // (4 * batches) * scale.steps, 16)
    tree_nodes = 4096
    rows = scale.n2d * scale.n2d
    rows_per_batch = max(rows // batches, 8)
    b = ProgramBuilder("tpcc")
    btree = b.array("BTREE", (tree_nodes,))
    probe_idx = b.index_array(
        "PROBEIDX",
        zipf_indices(batches * txns_per_batch, tree_nodes, skew=1.0, seed=61),
    )
    pool = b.array(
        "POOL",
        (tree_nodes,),
        element_size=_NODE_SIZE,
        data=permutation_chain(tree_nodes, seed=62),
    )
    orders = b.array("ORDERS", (rows_per_batch * batches, 16))
    p, r, t = var("p"), var("r"), var("t")

    probe_phase = loop("p", 0, txns_per_batch, [
        stmt(
            reads=[
                IndexedRef(btree, probe_idx[t * txns_per_batch + p]),
                PointerChaseRef(pool, "descent", 0, _NODE_SIZE),
                PointerChaseRef(pool, "descent", 8, _NODE_SIZE),
            ],
            writes=[IndexedRef(btree, probe_idx[t * txns_per_batch + p])],
            work=4,
            label="probe",
        ),
    ])
    scan_phase = loop("r", 0, rows_per_batch, [
        stmt(
            reads=[
                orders[t * rows_per_batch + r, 0],
                orders[t * rows_per_batch + r, 5],
                orders[t * rows_per_batch + r, 10],
            ],
            writes=[orders[t * rows_per_batch + r, 15]],
            work=3,
            label="scan",
        ),
    ])
    b.append(loop("t", 0, batches, [probe_phase, scan_phase]))
    return b.build()


def _lineitem_scan(
    b: ProgramBuilder, rows: int, prefix: str
) -> tuple:
    """A wide analytic table plus a few-columns-of-many scan.

    Rows are 16 attributes (128 bytes) wide but the query touches only
    three — the regime in which a row store wastes most of each fetched
    line and the data transformation's row→column conversion pays off,
    exactly as for real TPC-D scans.
    """
    table = b.array(prefix, (rows, 16))
    r = var("r")
    reads = [table[r, 0], table[r, 5], table[r, 10]]
    return table, reads


def build_tpcd_q1(scale: Scale) -> Program:
    """TPC-D Q1: full scan with arithmetic, then grouped aggregation.

    The scan reads four lineitem columns per row (row-store at base —
    48-byte row stride per column touch — column-store after the data
    transformation) and materializes a net-price vector; the
    aggregation phase scatters into a small group table through
    computed group ids (irregular, but hot — few groups).
    """
    rows = scale.n2d * scale.n2d
    groups = 512
    b = ProgramBuilder("tpcd_q1")
    lineitem, col_reads = _lineitem_scan(b, rows, "LINEITEM")
    net = b.array("NET", (rows,))
    agg = b.array("AGG", (groups,))
    gid = b.index_array(
        "GID", zipf_indices(rows, groups, skew=0.8, seed=71)
    )
    r = var("r")

    scan_phase = loop("r", 0, rows, [
        stmt(reads=col_reads, writes=[net[r]], work=6, label="scan"),
    ])
    agg_phase = loop("r", 0, rows, [
        stmt(
            reads=[net[r], IndexedRef(agg, gid[r]), IndexedRef(agg, gid[r], offset=1)],
            writes=[IndexedRef(agg, gid[r])],
            work=3,
            label="agg",
        ),
    ])
    b.append(loop("t", 0, scale.steps, [scan_phase, agg_phase]))
    return b.build()


def build_tpcd_q3(scale: Scale) -> Program:
    """TPC-D Q3: order/customer scans feeding a hash-join probe.

    The join probes a hash table sized well beyond L1 with uniformly
    distributed keys — the hardest pattern for any cache — sandwiched
    between two analyzable scans.
    """
    rows = scale.n2d * scale.n2d // 2
    hash_slots = 16384
    b = ProgramBuilder("tpcd_q3")
    orders, order_reads = _lineitem_scan(b, rows, "ORDERS")
    okey = b.array("OKEY", (rows,), element_size=4)
    htable = b.array("HASHT", (hash_slots,))
    hidx = b.index_array(
        "HIDX", uniform_indices(rows, hash_slots, seed=81)
    )
    hidx2 = b.index_array(
        "HIDX2", uniform_indices(rows, hash_slots, seed=82)
    )
    result = b.array("RESULT", (rows,))
    r = var("r")

    scan_phase = loop("r", 0, rows, [
        stmt(reads=order_reads, writes=[okey[r]], work=4, label="scan"),
    ])
    join_phase = loop("r", 0, rows, [
        stmt(
            reads=[
                okey[r],
                IndexedRef(htable, hidx[r]),
                IndexedRef(htable, hidx2[r]),
            ],
            writes=[IndexedRef(htable, hidx[r])],
            work=3,
            label="join",
        ),
    ])
    gather_phase = loop("r", 0, rows, [
        stmt(reads=[okey[r]], writes=[result[r]], work=2, label="emit"),
    ])
    b.append(
        loop("t", 0, scale.steps, [scan_phase, join_phase, gather_phase])
    )
    return b.build()


def build_tpcd_q6(scale: Scale) -> Program:
    """TPC-D Q6: predicate scan with a small secondary index phase.

    Scan-dominated (the paper's Q6 behaves closest to a regular code
    among the TPC queries); the short index-probe phase keeps a
    hardware region in the program so the selective scheme still has
    something to toggle.
    """
    rows = scale.n2d * scale.n2d
    index_probes = rows // 8
    index_slots = 8192
    b = ProgramBuilder("tpcd_q6")
    lineitem, col_reads = _lineitem_scan(b, rows, "LINEITEM")
    revenue = b.array("REVENUE", (rows,))
    index = b.array(
        "INDEX",
        (index_slots,),
        element_size=_NODE_SIZE,
        data=permutation_chain(index_slots, seed=92),
    )
    iidx = b.index_array(
        "IIDX",
        zipf_indices(index_probes, index_slots, skew=0.9, seed=91),
    )
    r, p = var("r"), var("p")

    scan_phase = loop("r", 0, rows, [
        stmt(reads=col_reads, writes=[revenue[r]], work=5, label="scan"),
    ])
    index_phase = loop("p", 0, index_probes, [
        stmt(
            reads=[IndexedRef(index, iidx[p]), PointerChaseRef(
                index, "leafwalk", 0, _NODE_SIZE
            )],
            writes=[],
            work=2,
            label="index",
        ),
    ])
    b.append(loop("t", 0, scale.steps, [scan_phase, index_phase]))
    return b.build()

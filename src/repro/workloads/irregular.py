"""Irregular workloads: Perl, Compress, Li, Applu.

The paper classifies these four as irregular-access codes (Section
4.2): their dominant references go through pointers, hash probes, or
subscripted subscripts that no static analysis can reorder.  Region
detection therefore marks (nearly) everything hardware-preferred, the
compiler path leaves them alone, and the run-time mechanism (bypass or
victim cache) provides whatever improvement there is — ~5% average in
the paper.

Each model reproduces the namesake's characteristic mix:

* *Perl* — bytecode dispatch + symbol-table hashing with a hot/cold
  (Zipf) skew + SV pointer chasing;
* *Compress* — sequential input/output streams + LZW dictionary probes
  with drifting short-term locality;
* *Li* — car/cdr cons-cell walks over a fragmented heap + a hot
  environment table;
* *Applu* — SSOR sweeps through wavefront-ordered cell indices (SPEC
  FP, but irregular per the paper).
"""

from __future__ import annotations

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import IndexedRef, PointerChaseRef
from repro.tracegen.irregular import (
    clustered_indices,
    permutation_chain,
    uniform_indices,
    zipf_indices,
)
from repro.workloads.base import Scale

__all__ = ["build_perl", "build_compress", "build_li", "build_applu"]

_NODE_SIZE = 32  # one cache line per heap node at 32-byte lines


def build_perl(scale: Scale) -> Program:
    """Interpreter loop: dispatch, symbol lookup, SV dereference."""
    ops = scale.n1d * scale.steps
    # The symbol table's hot core must be cacheable when protected:
    # ~2x the (scaled) L1 capacity, with a Zipf-skewed access mix.
    symbols = 1024
    heap_nodes = max(scale.n1d // 2, 512)
    b = ProgramBuilder("perl")
    bytecode = b.array("BC", (ops,), element_size=4)
    symtab = b.array("SYM", (symbols,))
    lookup = b.index_array(
        "LOOKUP", zipf_indices(ops, symbols, skew=1.1, seed=11)
    )
    update = b.index_array(
        "UPDATE", zipf_indices(ops, symbols, skew=1.1, seed=12)
    )
    # element_size equals the chase node size so the declared footprint
    # covers every byte the pointer walk touches.
    heap = b.array(
        "HEAP",
        (heap_nodes,),
        element_size=_NODE_SIZE,
        data=permutation_chain(heap_nodes, seed=13),
    )
    t = var("t")
    b.append(
        loop("t", 0, ops, [
            stmt(
                reads=[
                    bytecode[t],
                    IndexedRef(symtab, lookup[t]),
                    PointerChaseRef(heap, "sv", node_size=_NODE_SIZE),
                ],
                writes=[IndexedRef(symtab, update[t])],
                work=5,
                label="dispatch",
            ),
        ])
    )
    return b.build()


def build_compress(scale: Scale) -> Program:
    """LZW compression: stream in/out, dictionary hash probes."""
    length = scale.n1d * scale.steps
    table = 8192
    b = ProgramBuilder("compress")
    input_buf = b.array("IN", (length,), element_size=4)
    output_buf = b.array("OUT", (length,), element_size=4)
    htab = b.array("HTAB", (table,))
    codetab = b.array("CODETAB", (table,), element_size=4)
    probe1 = b.index_array(
        "PROBE1",
        clustered_indices(length, table, cluster=48, jumps=0.04, seed=21),
    )
    probe2 = b.index_array(
        "PROBE2",
        clustered_indices(length, table, cluster=48, jumps=0.04, seed=22),
    )
    t = var("t")
    b.append(
        loop("t", 0, length, [
            stmt(
                reads=[
                    input_buf[t],
                    IndexedRef(htab, probe1[t]),
                    IndexedRef(htab, probe2[t]),
                    IndexedRef(codetab, probe1[t]),
                ],
                writes=[output_buf[t]],
                work=4,
                label="lzw",
            ),
        ])
    )
    return b.build()


def build_li(scale: Scale) -> Program:
    """Lisp interpreter: car/cdr walks plus a hot environment table."""
    evals = scale.n1d * scale.steps
    heap_nodes = max(scale.n1d, 1024)
    env_slots = 512
    b = ProgramBuilder("li")
    heap = b.array(
        "HEAP",
        (heap_nodes,),
        element_size=_NODE_SIZE,
        data=permutation_chain(heap_nodes, seed=31),
    )
    env = b.array("ENV", (env_slots,))
    env_idx = b.index_array(
        "ENVIDX", zipf_indices(evals, env_slots, skew=1.2, seed=32)
    )
    t = var("t")
    b.append(
        loop("t", 0, evals, [
            stmt(
                reads=[
                    PointerChaseRef(heap, "car", 0, _NODE_SIZE),
                    PointerChaseRef(heap, "cdr", 8, _NODE_SIZE),
                    IndexedRef(env, env_idx[t]),
                ],
                writes=[
                    PointerChaseRef(heap, "car", 16, _NODE_SIZE),
                ],
                work=3,
                label="eval",
            ),
        ])
    )
    return b.build()


def build_applu(scale: Scale) -> Program:
    """SSOR sweeps over wavefront-ordered cells (SPECfp95 *Applu*).

    The solution update runs through an indirection array holding the
    wavefront ordering, so although the underlying data is a dense
    grid, the access sequence is not compile-time analyzable — the
    paper groups Applu with the irregular codes.
    """
    cells = scale.n1d // 2
    sweeps = scale.steps * 2
    b = ProgramBuilder("applu")
    rsd = b.array("RSD", (cells,))
    u = b.array("U", (cells,))
    coeff = b.array("COEFF", (cells,), element_size=4)
    wave = b.index_array(
        "WAVE",
        clustered_indices(cells, cells, cluster=96, jumps=0.02, seed=41),
    )
    neighbor = b.index_array(
        "NBR", uniform_indices(cells, cells, seed=42)
    )
    s, c = var("s"), var("c")
    b.append(
        loop("s", 0, sweeps, [
            loop("c", 0, cells, [
                stmt(
                    reads=[
                        IndexedRef(rsd, wave[c]),
                        IndexedRef(rsd, neighbor[c]),
                        IndexedRef(u, wave[c]),
                        coeff[c],
                    ],
                    writes=[IndexedRef(rsd, wave[c])],
                    work=6,
                    label="ssor",
                ),
            ]),
        ])
    )
    return b.build()

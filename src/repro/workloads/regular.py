"""Regular (array-intensive) workloads: Swim, Mgrid, Vpenta, Adi.

Each model reproduces the *access-pattern structure* of its namesake's
dominant kernels at a scaled problem size.  All references are affine,
so region detection classifies every nest software-optimizable, and the
baseline versions are written in the cache-hostile orientation the
original Fortran codes exhibit on a row-major machine (column sweeps,
large-stride innermost loops, many same-aligned arrays) — which is what
gives the compiler path its large wins in the paper (26.6% average for
regular codes, Section 5.1).
"""

from __future__ import annotations

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.program import Program
from repro.workloads.base import Scale

__all__ = [
    "build_swim",
    "build_mgrid",
    "build_vpenta",
    "build_adi",
    "build_mxm",
    "build_seidel",
    "build_pipefuse",
]


def build_swim(scale: Scale) -> Program:
    """Shallow-water stencils (SPECfp95 *Swim*).

    Three sweeps per time step over the height/velocity/flux fields.
    The baseline iterates ``for j: for i:`` while subscripting
    ``[i, j]`` — column order on row-major arrays, the documented
    pathology of the original code on cache machines.
    """
    n = scale.n2d
    b = ProgramBuilder("swim")
    u = b.array("U", (n, n))
    v = b.array("V", (n, n))
    p = b.array("P", (n, n))
    cu = b.array("CU", (n, n))
    cv = b.array("CV", (n, n))
    z = b.array("Z", (n, n))
    h = b.array("H", (n, n))
    i, j = var("i"), var("j")

    calc1 = loop("j", 0, n - 1, [
        loop("i", 0, n - 1, [
            stmt(writes=[cu[i + 1, j]],
                 reads=[p[i + 1, j], p[i, j], u[i + 1, j]], work=2,
                 label="cu"),
            stmt(writes=[cv[i, j + 1]],
                 reads=[p[i, j + 1], p[i, j], v[i, j + 1]], work=2,
                 label="cv"),
        ]),
    ])
    calc2 = loop("j", 0, n - 1, [
        loop("i", 0, n - 1, [
            stmt(writes=[z[i + 1, j + 1]],
                 reads=[v[i + 1, j + 1], v[i, j + 1], u[i + 1, j + 1],
                        u[i + 1, j], p[i, j]],
                 work=4, label="z"),
        ]),
    ])
    calc3 = loop("j", 0, n - 1, [
        loop("i", 0, n - 1, [
            stmt(writes=[h[i, j]],
                 reads=[p[i, j], u[i + 1, j], u[i, j], v[i, j + 1],
                        v[i, j]],
                 work=4, label="h"),
        ]),
    ])
    b.append(loop("t", 0, scale.steps, [calc1, calc2, calc3]))
    return b.build()


def build_mgrid(scale: Scale) -> Program:
    """Multigrid V-cycle relaxation (SPECfp95 *Mgrid*).

    A 27-point-ish 3-D stencil (modelled with 7 taps) plus a norm
    reduction.  The baseline sweeps the *slowest-varying* dimension
    innermost (``for k: for j: for i:`` with ``[i, j, k]`` row-major
    subscripts), giving an M²-element stride every iteration.
    """
    m = max(scale.n2d // 3, 12)
    b = ProgramBuilder("mgrid")
    u = b.array("U", (m, m, m))
    r = b.array("R", (m, m, m))
    i, j, k = var("i"), var("j"), var("k")

    resid = loop("k", 1, m - 1, [
        loop("j", 1, m - 1, [
            loop("i", 1, m - 1, [
                stmt(writes=[r[i, j, k]],
                     reads=[u[i, j, k], u[i - 1, j, k], u[i + 1, j, k],
                            u[i, j - 1, k], u[i, j + 1, k],
                            u[i, j, k - 1], u[i, j, k + 1]],
                     work=7, label="resid"),
            ]),
        ]),
    ])
    psinv = loop("k", 1, m - 1, [
        loop("j", 1, m - 1, [
            loop("i", 1, m - 1, [
                stmt(writes=[u[i, j, k]],
                     reads=[u[i, j, k], r[i, j, k], r[i - 1, j, k],
                            r[i + 1, j, k]],
                     work=4, label="psinv"),
            ]),
        ]),
    ])
    b.append(loop("t", 0, scale.steps, [resid, psinv]))
    return b.build()


def build_vpenta(scale: Scale) -> Program:
    """Pentadiagonal inversion (SPECfp92 nasa7 *Vpenta* kernel).

    Many two-dimensional arrays swept down their *columns* in a
    row-major layout — the benchmark with the paper's worst base miss
    rate (52% L1).  Forward elimination then back substitution.
    """
    n = scale.n2d
    b = ProgramBuilder("vpenta")
    a = b.array("A", (n, n))
    bb = b.array("B", (n, n))
    c = b.array("C", (n, n))
    d = b.array("D", (n, n))
    e = b.array("E", (n, n))
    f = b.array("F", (n, n))
    x = b.array("X", (n, n))
    j, k = var("j"), var("k")

    forward = loop("j", 0, n, [
        loop("k", 2, n, [
            stmt(writes=[x[k, j]],
                 reads=[x[k - 1, j], x[k - 2, j], a[k, j], bb[k, j],
                        c[k, j]],
                 work=5, label="fwd"),
            stmt(writes=[f[k, j]],
                 reads=[f[k - 1, j], d[k, j], e[k, j]],
                 work=3, label="rhs"),
        ]),
    ])
    backward = loop("j", 0, n, [
        loop("k", 0, n - 2, [
            stmt(writes=[d[k, j]],
                 reads=[d[k + 1, j], x[k, j], f[k, j], e[k, j]],
                 work=4, label="back"),
        ]),
    ])
    b.append(loop("t", 0, scale.steps, [forward, backward]))
    return b.build()


def build_adi(scale: Scale) -> Program:
    """Alternating-direction-implicit integration (Livermore *Adi*).

    A row sweep (already friendly) followed by a column sweep that is
    stride-N at base; loop interchange of the column sweep is legal
    (the recurrence is carried by the swept dimension) and restores
    stride-1 — the classic ADI optimization.
    """
    n = scale.n2d
    b = ProgramBuilder("adi")
    x = b.array("X", (n, n))
    a = b.array("A", (n, n))
    bb = b.array("B", (n, n))
    i, j = var("i"), var("j")

    row_sweep = loop("i", 0, n, [
        loop("j", 1, n, [
            stmt(writes=[x[i, j]],
                 reads=[x[i, j - 1], a[i, j], bb[i, j]],
                 work=3, label="row"),
        ]),
    ])
    # Column sweep written colum-wise: inner j walks dim 0 (stride N).
    col_sweep = loop("i", 0, n, [
        loop("j", 1, n, [
            stmt(writes=[x[j, i]],
                 reads=[x[j - 1, i], a[j, i], bb[j, i]],
                 work=3, label="col"),
        ]),
    ])
    b.append(loop("t", 0, scale.steps, [row_sweep, col_sweep]))
    return b.build()


def build_mxm(scale: Scale) -> Program:
    """Dense matrix multiply plus an irregular binning pass.

    Not one of the paper's 13 benchmarks — registered as a profiling
    demo.  The textbook IJK nest walks ``B`` down its columns
    (stride-N on a row-major layout), so the compiler path optimizes
    it; the histogram pass scatters through a data-dependent index
    array, so region detection marks it hardware-preferred and the
    selective trace carries real ON/OFF markers — every telemetry
    signal (miss-ratio series, gate spans, bypass counters) has
    something to show on a short run.
    """
    from repro.compiler.ir.refs import IndexedRef
    from repro.tracegen.irregular import uniform_indices

    n = scale.n2d
    b = ProgramBuilder("mxm")
    a = b.array("A", (n, n))
    bb = b.array("B", (n, n))
    c = b.array("C", (n, n))
    i, j, k = var("i"), var("j"), var("k")

    mult = loop("i", 0, n, [
        loop("j", 0, n, [
            loop("k", 0, n, [
                stmt(writes=[c[i, j]],
                     reads=[c[i, j], a[i, k], bb[k, j]],
                     work=2, label="mxm"),
            ]),
        ]),
    ])

    bins = max(n * 8, 256)
    points = n * n
    hist = b.array("HIST", (bins,))
    scat = b.index_array(
        "SCAT", uniform_indices(points, bins, seed=7)
    )
    s = var("s")
    binpass = loop("s", 0, points, [
        stmt(reads=[IndexedRef(hist, scat[s])],
             writes=[IndexedRef(hist, scat[s])],
             work=1, label="bin"),
    ])
    b.append(loop("t", 0, scale.steps, [mult, binpass]))
    return b.build()


def build_seidel(scale: Scale) -> Program:
    """Gauss-Seidel time/space sweep (loop-skewing demo kernel).

    A 1-D three-point relaxation repeated over time steps::

        for t: for i: a[i] = (a[i-1] + a[i] + a[i+1]) / 3

    The ``(t, i)`` nest carries a ``(<, >)`` dependence (this step
    reads ``a[i+1]`` written by the *previous* step), so neither
    interchange nor rectangular tiling is legal as written.  Skewing
    ``i`` by one per time step turns every direction non-negative,
    making the nest fully permutable — the classic wavefront — and
    unblocks tiling.  Sized so the array overflows the scaled L1 and
    both trip counts exceed the selected tile.
    """
    n = max(scale.n1d // 4, 768)
    steps = max(8 * scale.steps, 24)
    b = ProgramBuilder("seidel")
    a = b.array("A", (n,))
    t, i = var("t"), var("i")

    b.append(loop("t", 0, steps, [
        loop("i", 1, n - 1, [
            stmt(writes=[a[i]],
                 reads=[a[i - 1], a[i], a[i + 1]],
                 work=2, label="relax"),
        ]),
    ]))
    return b.build()


def build_pipefuse(scale: Scale) -> Program:
    """Producer/consumer pipeline (loop-fusion demo kernel).

    Three sibling sweeps per time step over shared 1-D arrays::

        for i: b[i] = a[i] + a[i-1]        # produce
        for j: c[j] = b[j] + b[j-1]        # consume
        for k: d[k] = b[k+1] + c[k]        # look-ahead

    The first two nests share ``B`` with only forward-or-equal
    dependences, so fusing them is legal and profitable (the ``B``
    values are still hot).  The third reads ``b[k+1]`` — *ahead* of
    the producer's write at the same iteration — so fusing it into
    the pair would reverse a flow dependence; the optimizer must
    refuse with a fusion-preventing reason, which the legality replay
    re-checks.
    """
    n = scale.n1d // 2
    b = ProgramBuilder("pipefuse")
    a = b.array("A", (n,))
    bb = b.array("B", (n + 1,))
    c = b.array("C", (n,))
    d = b.array("D", (n,))
    i, j, k = var("i"), var("j"), var("k")

    produce = loop("i", 1, n, [
        stmt(writes=[bb[i]], reads=[a[i], a[i - 1]],
             work=1, label="produce"),
    ])
    consume = loop("j", 1, n, [
        stmt(writes=[c[j]], reads=[bb[j], bb[j - 1]],
             work=1, label="consume"),
    ])
    ahead = loop("k", 1, n, [
        stmt(writes=[d[k]], reads=[bb[k + 1], c[k]],
             work=1, label="ahead"),
    ])
    b.append(loop("t", 0, scale.steps, [produce, consume, ahead]))
    return b.build()

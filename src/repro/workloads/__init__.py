"""The 13-benchmark suite of paper Section 4.2, as IR workload models.

Categories follow the paper's access-pattern classification:

* **regular** — Swim, Mgrid, Vpenta, Adi (affine kernels the compiler
  can optimize);
* **irregular** — Perl, Compress, Li, Applu (pointer chasing, hash
  probing, indexed sweeps the hardware mechanism targets);
* **mixed** — Chaos, TPC-C, TPC-D Q1/Q3/Q6 (alternating phases, where
  the selective ON/OFF scheme shines).

See DESIGN.md for the SPEC/TPC → model substitution rationale.  Every
workload builds deterministically from its scale, so traces are
reproducible run to run.
"""

from repro.workloads.base import (
    MEDIUM,
    SMALL,
    TINY,
    Scale,
    WorkloadSpec,
)
from repro.workloads.registry import (
    all_specs,
    get_spec,
    specs_by_category,
    workload_names,
)

__all__ = [
    "MEDIUM",
    "SMALL",
    "TINY",
    "Scale",
    "WorkloadSpec",
    "all_specs",
    "get_spec",
    "specs_by_category",
    "workload_names",
]

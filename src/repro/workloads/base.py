"""Workload scaffolding: scales and specs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compiler.ir.program import Program

__all__ = ["Scale", "WorkloadSpec", "TINY", "SMALL", "MEDIUM"]

#: Access-pattern categories (paper Section 4.2).
REGULAR = "regular"
IRREGULAR = "irregular"
MIXED = "mixed"


@dataclass(frozen=True)
class Scale:
    """Problem-size knob for all workloads.

    The paper runs full SPEC/TPC inputs (10⁷-10⁹ instructions); these
    scales shrink problem sizes so a Python-level simulator can run
    them, and experiments shrink the caches by the matching divisor
    (see ``MachineParams.scaled``) to preserve the working-set/cache
    ratio.

    Attributes:
        name: "tiny" (unit tests), "small" (benchmarks), "medium"
            (fuller runs).
        n2d: Edge length for N×N arrays.
        n1d: Element count for large 1-D arrays/streams.
        steps: Outer repetition factor (time steps, transaction counts).
        machine_divisor: The cache-scaling divisor experiments should
            pair with this workload scale.
    """

    name: str
    n2d: int
    n1d: int
    steps: int
    machine_divisor: int = 8

    def __post_init__(self) -> None:
        if self.n2d < 8 or self.n1d < 64 or self.steps < 1:
            raise ValueError(f"scale {self.name} is degenerate")


# n2d is kept low enough that a 7-array benchmark's padded working set
# stays comfortably inside the scaled L2 — TINY exists for fast tests,
# not for sitting on capacity boundaries.  Two steps amortize the cold
# first pass, whose serialized compulsory DRAM misses would otherwise
# dominate such short runs (the paper's inputs run to completion).
TINY = Scale("tiny", n2d=28, n1d=2048, steps=3)
SMALL = Scale("small", n2d=72, n1d=12288, steps=2)
MEDIUM = Scale("medium", n2d=112, n1d=32768, steps=3)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named benchmark: category plus a Program factory."""

    name: str
    category: str
    build: Callable[[Scale], Program]
    description: str = ""

    def __post_init__(self) -> None:
        if self.category not in (REGULAR, IRREGULAR, MIXED):
            raise ValueError(f"unknown category {self.category}")

    def instantiate(self, scale: Scale) -> Program:
        program = self.build(scale)
        if program.name != self.name:
            raise ValueError(
                f"builder for {self.name} produced program {program.name}"
            )
        return program

"""The benchmark registry: name → spec for all 13 programs."""

from __future__ import annotations

from repro.workloads.base import IRREGULAR, MIXED, REGULAR, WorkloadSpec
from repro.workloads.irregular import (
    build_applu,
    build_compress,
    build_li,
    build_perl,
)
from repro.workloads.mixed import (
    build_chaos,
    build_tpcc,
    build_tpcd_q1,
    build_tpcd_q3,
    build_tpcd_q6,
)
from repro.workloads.regular import (
    build_adi,
    build_mgrid,
    build_mxm,
    build_pipefuse,
    build_seidel,
    build_swim,
    build_vpenta,
)

__all__ = ["all_specs", "get_spec", "specs_by_category", "workload_names"]

#: Paper Table 2 order.
_SPECS = [
    WorkloadSpec("perl", IRREGULAR, build_perl,
                 "SpecInt95 Perl: dispatch + symbol hashing + SV chasing"),
    WorkloadSpec("compress", IRREGULAR, build_compress,
                 "SpecInt95 Compress: LZW streams + dictionary probes"),
    WorkloadSpec("li", IRREGULAR, build_li,
                 "SpecInt95 Li: cons-cell walks + hot environment"),
    WorkloadSpec("swim", REGULAR, build_swim,
                 "SpecFP95 Swim: shallow-water stencils"),
    WorkloadSpec("applu", IRREGULAR, build_applu,
                 "SpecFP95 Applu: wavefront-ordered SSOR sweeps"),
    WorkloadSpec("mgrid", REGULAR, build_mgrid,
                 "SpecFP95 Mgrid: 3-D multigrid relaxation"),
    WorkloadSpec("chaos", MIXED, build_chaos,
                 "Chaos: irregular-mesh MD + dense updates"),
    WorkloadSpec("vpenta", REGULAR, build_vpenta,
                 "SpecFP92 Vpenta: pentadiagonal inversion"),
    WorkloadSpec("adi", REGULAR, build_adi,
                 "Livermore Adi: alternating-direction sweeps"),
    WorkloadSpec("tpcc", MIXED, build_tpcc,
                 "TPC-C: B-tree probes + row-segment scans"),
    WorkloadSpec("tpcd_q1", MIXED, build_tpcd_q1,
                 "TPC-D Q1: columnar scan + grouped aggregation"),
    WorkloadSpec("tpcd_q3", MIXED, build_tpcd_q3,
                 "TPC-D Q3: scans + hash-join probe"),
    WorkloadSpec("tpcd_q6", MIXED, build_tpcd_q6,
                 "TPC-D Q6: predicate scan + index probes"),
]

#: Extra workloads resolvable by name but *not* part of the paper's
#: 13-benchmark suite (``all_specs``): demo kernels for the profiling
#: CLI and tutorials.
_EXTRA_SPECS = [
    WorkloadSpec("mxm", MIXED, build_mxm,
                 "Dense IJK matrix multiply + irregular binning "
                 "(profiling demo kernel)"),
    WorkloadSpec("seidel", REGULAR, build_seidel,
                 "Gauss-Seidel time/space sweep "
                 "(loop-skewing demo kernel)"),
    WorkloadSpec("pipefuse", REGULAR, build_pipefuse,
                 "Producer/consumer pipeline sweeps "
                 "(loop-fusion demo kernel)"),
]

_BY_NAME = {spec.name: spec for spec in _SPECS + _EXTRA_SPECS}


def all_specs() -> list[WorkloadSpec]:
    """Every benchmark, in paper Table 2 order."""
    return list(_SPECS)


def workload_names() -> list[str]:
    return [spec.name for spec in _SPECS]


def get_spec(name: str) -> WorkloadSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(_BY_NAME)}"
        ) from None


def specs_by_category(category: str) -> list[WorkloadSpec]:
    matches = [spec for spec in _SPECS if spec.category == category]
    if not matches:
        raise KeyError(f"unknown category {category!r}")
    return matches

"""Affine index expressions over loop variables.

An :class:`AffineExpr` is ``const + sum(coeff_v * v)`` over loop
variables.  These are the subscripts the paper's Section 2.3 calls
*analyzable*: ``B[i]``, ``C[i+j][k-1]``.  Expressions support natural
arithmetic (``i + 1``, ``2 * i - j``) so workload definitions read like
the source loops they model.

:class:`MinExpr` exists for loop upper bounds produced by tiling
(``min(N, tt + T)``); :class:`MaxExpr` is its dual for lower bounds,
produced when tiling a skewed (affine-bounded) nest over its constant
bounding box (``max(f*t, jt)``).  Neither is a valid array subscript.
"""

from __future__ import annotations

from typing import Mapping, Union

__all__ = [
    "AffineExpr",
    "MinExpr",
    "MaxExpr",
    "var",
    "const",
    "as_expr",
    "BoundLike",
]


class AffineExpr:
    """Immutable affine combination of loop variables plus a constant."""

    __slots__ = ("terms", "const")

    def __init__(self, terms: Mapping[str, int] | None = None, const: int = 0):
        cleaned = {}
        if terms:
            for name, coeff in terms.items():
                if not isinstance(coeff, int):
                    raise TypeError(f"coefficient of {name} must be int")
                if coeff != 0:
                    cleaned[name] = coeff
        object.__setattr__(self, "terms", cleaned)
        object.__setattr__(self, "const", const)

    def __setattr__(self, *_args) -> None:
        raise AttributeError("AffineExpr is immutable")

    def __copy__(self) -> "AffineExpr":
        return self  # immutable: sharing is safe

    def __deepcopy__(self, _memo) -> "AffineExpr":
        return self

    # -- evaluation ----------------------------------------------------

    def eval(self, bindings: Mapping[str, int]) -> int:
        """Value under loop-variable ``bindings``.

        Raises KeyError if a variable is unbound — that is a bug in the
        caller (an expression escaping its loop), so it must not pass
        silently.
        """
        total = self.const
        for name, coeff in self.terms.items():
            total += coeff * bindings[name]
        return total

    # -- structure queries ----------------------------------------------

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self.terms)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def coefficient(self, name: str) -> int:
        return self.terms.get(name, 0)

    def depends_on(self, name: str) -> bool:
        return name in self.terms

    def substitute(self, name: str, replacement: "AffineExpr") -> "AffineExpr":
        """Replace variable ``name`` with an affine ``replacement``."""
        coeff = self.terms.get(name, 0)
        if coeff == 0:
            return self
        rest = {k: v for k, v in self.terms.items() if k != name}
        result = AffineExpr(rest, self.const)
        return result + replacement * coeff

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other: Union["AffineExpr", int]) -> "AffineExpr":
        other = as_expr(other)
        terms = dict(self.terms)
        for name, coeff in other.terms.items():
            terms[name] = terms.get(name, 0) + coeff
        return AffineExpr(terms, self.const + other.const)

    __radd__ = __add__

    def __sub__(self, other: Union["AffineExpr", int]) -> "AffineExpr":
        return self + (as_expr(other) * -1)

    def __rsub__(self, other: Union["AffineExpr", int]) -> "AffineExpr":
        return as_expr(other) + (self * -1)

    def __mul__(self, factor: int) -> "AffineExpr":
        if not isinstance(factor, int):
            raise TypeError("AffineExpr can only be scaled by an int")
        return AffineExpr(
            {n: c * factor for n, c in self.terms.items()}, self.const * factor
        )

    __rmul__ = __mul__

    def __neg__(self) -> "AffineExpr":
        return self * -1

    # -- identity --------------------------------------------------------

    def _key(self) -> tuple:
        return (tuple(sorted(self.terms.items())), self.const)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.is_constant and self.const == other
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        parts = []
        for name, coeff in sorted(self.terms.items()):
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


class MinExpr:
    """``min`` of affine expressions; only valid as a loop upper bound."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Union[AffineExpr, int]):
        if not operands:
            raise ValueError("MinExpr needs at least one operand")
        object.__setattr__(
            self, "operands", tuple(as_expr(op) for op in operands)
        )

    def __setattr__(self, *_args) -> None:
        raise AttributeError("MinExpr is immutable")

    def __copy__(self) -> "MinExpr":
        return self  # immutable: sharing is safe

    def __deepcopy__(self, _memo) -> "MinExpr":
        return self

    def eval(self, bindings: Mapping[str, int]) -> int:
        return min(op.eval(bindings) for op in self.operands)

    @property
    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for op in self.operands:
            names |= op.variables
        return names

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MinExpr):
            return NotImplemented
        return self.operands == other.operands

    def __hash__(self) -> int:
        return hash(self.operands)

    def __repr__(self) -> str:
        return "min(" + ", ".join(map(repr, self.operands)) + ")"


class MaxExpr:
    """``max`` of affine expressions; only valid as a loop lower bound."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Union[AffineExpr, int]):
        if not operands:
            raise ValueError("MaxExpr needs at least one operand")
        object.__setattr__(
            self, "operands", tuple(as_expr(op) for op in operands)
        )

    def __setattr__(self, *_args) -> None:
        raise AttributeError("MaxExpr is immutable")

    def __copy__(self) -> "MaxExpr":
        return self  # immutable: sharing is safe

    def __deepcopy__(self, _memo) -> "MaxExpr":
        return self

    def eval(self, bindings: Mapping[str, int]) -> int:
        return max(op.eval(bindings) for op in self.operands)

    @property
    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for op in self.operands:
            names |= op.variables
        return names

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaxExpr):
            return NotImplemented
        return self.operands == other.operands

    def __hash__(self) -> int:
        return hash(self.operands)

    def __repr__(self) -> str:
        return "max(" + ", ".join(map(repr, self.operands)) + ")"


#: Anything accepted as a loop bound.
BoundLike = Union[AffineExpr, MinExpr, MaxExpr, int]


def var(name: str) -> AffineExpr:
    """The loop variable ``name`` as an expression."""
    return AffineExpr({name: 1})


def const(value: int) -> AffineExpr:
    return AffineExpr({}, value)


def as_expr(value: Union[AffineExpr, int]) -> AffineExpr:
    """Coerce an int (or pass through an expression)."""
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return AffineExpr({}, value)
    raise TypeError(f"cannot treat {value!r} as an affine expression")

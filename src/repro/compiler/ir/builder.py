"""Convenience builder for constructing IR programs.

Workload definitions read close to the modelled source code::

    b = ProgramBuilder("example")
    U = b.array("U", (N,))
    V = b.array("V", (N, N))
    i, j = var("i"), var("j")
    b.append(
        loop("i", 0, N, [
            loop("j", 0, N, [
                stmt(writes=[U[j]], reads=[U[j], V[j, i]], work=2),
            ]),
        ])
    )
    program = b.build()
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.compiler.ir.expr import (
    AffineExpr,
    BoundLike,
    MaxExpr,
    MinExpr,
    as_expr,
)
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import ArrayDecl, Reference
from repro.compiler.ir.stmts import Statement

__all__ = ["ProgramBuilder", "loop", "stmt"]


def loop(
    var: str,
    lower: Union[AffineExpr, MaxExpr, int],
    upper: BoundLike,
    body: Sequence[Node],
    step: int = 1,
) -> Loop:
    """Build a loop node; bounds accept ints or affine expressions."""
    lower_expr = lower if isinstance(lower, MaxExpr) else as_expr(lower)
    upper_expr = upper if isinstance(upper, MinExpr) else as_expr(upper)
    return Loop(var, lower_expr, upper_expr, list(body), step)


def stmt(
    writes: Optional[Sequence[Reference]] = None,
    reads: Optional[Sequence[Reference]] = None,
    work: int = 1,
    label: Optional[str] = None,
) -> Statement:
    """Build a statement node."""
    return Statement(
        reads=list(reads or []),
        writes=list(writes or []),
        work=work,
        label=label,
    )


class ProgramBuilder:
    """Accumulates arrays and top-level nodes into a Program."""

    def __init__(self, name: str):
        self._name = name
        self._arrays: dict[str, ArrayDecl] = {}
        self._body: list[Node] = []

    def array(
        self,
        name: str,
        shape: tuple[int, ...],
        element_size: int = 8,
        data: Optional[np.ndarray] = None,
        pad: int = 0,
    ) -> ArrayDecl:
        """Declare an array and return its declaration (for subscripting)."""
        if name in self._arrays:
            raise ValueError(f"array {name} already declared")
        decl = ArrayDecl(
            name=name,
            shape=shape,
            element_size=element_size,
            data=data,
            pad=pad,
        )
        self._arrays[name] = decl
        return decl

    def index_array(
        self, name: str, data: np.ndarray, element_size: int = 4
    ) -> ArrayDecl:
        """Declare an array that carries run-time index values."""
        return self.array(
            name, tuple(data.shape), element_size=element_size, data=data
        )

    def append(self, *nodes: Node) -> None:
        self._body.extend(nodes)

    def build(self) -> Program:
        return Program(self._name, dict(self._arrays), list(self._body))

"""Statements: the leaves of the loop-nest IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.ir.refs import Reference

__all__ = ["Statement", "MarkerStmt"]


@dataclass
class Statement:
    """One assignment-like statement.

    Executing it loads every reference in ``reads``, performs ``work``
    ALU instructions, and stores every reference in ``writes``.  The
    reference lists are ordered (the trace preserves program order).
    """

    reads: list[Reference] = field(default_factory=list)
    writes: list[Reference] = field(default_factory=list)
    work: int = 1
    label: Optional[str] = None
    #: Region preference ("sw"/"hw") — filled in by region detection for
    #: statements sandwiched between loops of differing preference
    #: (Section 2.2: "treated as if they are within an imaginary loop
    #: that iterates only once").
    preference: Optional[str] = None

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("work must be non-negative")

    @property
    def references(self) -> list[Reference]:
        """All references in program order (reads then writes)."""
        return [*self.reads, *self.writes]

    def __repr__(self) -> str:
        name = self.label or "stmt"
        return (
            f"<{name}: {len(self.reads)}R {len(self.writes)}W "
            f"work={self.work}>"
        )


@dataclass
class MarkerStmt:
    """An activate (ON) or deactivate (OFF) instruction (Section 2.2).

    Inserted by :mod:`repro.compiler.regions.markers`; the interpreter
    turns it into a HW_ON / HW_OFF trace record which toggles the
    hardware mechanism at run time and costs one issue slot.
    """

    kind: str  # "on" | "off"

    def __post_init__(self) -> None:
        if self.kind not in ("on", "off"):
            raise ValueError(f"marker kind must be 'on'/'off', got {self.kind}")

    @property
    def activates(self) -> bool:
        return self.kind == "on"

    def __repr__(self) -> str:
        return f"<HW_{self.kind.upper()}>"

"""Array declarations and memory references.

The reference taxonomy follows paper Section 2.3 exactly:

*analyzable* (compile-time optimizable)
    :class:`ScalarRef` (``A``) and :class:`AffineRef`
    (``B[i]``, ``C[i+j][k-1]``).

*non-analyzable*
    :class:`NonAffineRef` (``D[i*i][j]``, ``E[i/j]``),
    :class:`IndexedRef` (``G[IP[j]+2]`` — subscripted subscripts), and
    :class:`PointerChaseRef` (``*H[i]``, linked structures, struct
    fields reached through pointers).

Every reference is *executable*: given loop-variable bindings and the
run-time data attached to index/pointer arrays it yields the byte
address(es) it touches, which is how traces are generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.compiler.ir.expr import AffineExpr, as_expr

__all__ = [
    "ArrayDecl",
    "Reference",
    "ScalarRef",
    "AffineRef",
    "NonAffineRef",
    "IndexedRef",
    "PointerChaseRef",
    "RegisterRef",
]


@dataclass(eq=False)
class ArrayDecl:
    """A program array with shape, element size, and storage layout.

    Declarations are *entities*: equality and hashing are by identity
    (``eq=False``), so references can embed them in frozen dataclasses
    and layout mutations stay visible through every alias.

    ``dim_order`` is the storage-dimension permutation from slowest- to
    fastest-varying.  Row-major for a 2-D array is ``(0, 1)``; the data
    transformation of Section 3.2 selects e.g. column-major ``(1, 0)``
    per array.  ``pad`` adds unused elements to the fastest-varying
    extent (array padding, mentioned in Section 4.2).

    ``data`` optionally holds run-time *values* (for index arrays and
    pointer-successor arrays); it never affects addressing, only the
    targets of indexed/pointer references.
    """

    name: str
    shape: tuple[int, ...]
    element_size: int = 8
    dim_order: Optional[tuple[int, ...]] = None
    pad: int = 0
    #: Inter-array padding: bytes added to the allocator-assigned base
    #: so same-index elements of different arrays stop sharing cache
    #: sets.  Set by the padding transformation.
    base_skew: int = 0
    base: int = 0
    data: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.shape or any(extent <= 0 for extent in self.shape):
            raise ValueError(f"{self.name}: bad shape {self.shape}")
        if self.element_size <= 0:
            raise ValueError(f"{self.name}: element_size must be positive")
        if self.dim_order is None:
            self.dim_order = tuple(range(len(self.shape)))
        if sorted(self.dim_order) != list(range(len(self.shape))):
            raise ValueError(
                f"{self.name}: dim_order {self.dim_order} is not a "
                f"permutation of the {len(self.shape)} dimensions"
            )

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def element_count(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    @property
    def footprint_bytes(self) -> int:
        """Allocated bytes including padding."""
        return self._padded_row_elements() * self._outer_product() * (
            self.element_size
        )

    def _padded_row_elements(self) -> int:
        fastest = self.dim_order[-1]
        return self.shape[fastest] + self.pad

    def _outer_product(self) -> int:
        product = 1
        for dim in self.dim_order[:-1]:
            product *= self.shape[dim]
        return product

    def offset_of(self, indices: Sequence[int]) -> int:
        """Linear element offset of logical ``indices`` under the layout."""
        if len(indices) != self.rank:
            raise ValueError(
                f"{self.name}: expected {self.rank} indices, got {indices}"
            )
        return self._horner_offset(indices)

    def _horner_offset(self, indices: Sequence[int]) -> int:
        order = self.dim_order
        offset = 0
        for position, dim in enumerate(order):
            extent = (
                self._padded_row_elements()
                if position == len(order) - 1
                else self.shape[dim]
            )
            if position:
                offset *= extent
            index = indices[dim]
            offset = offset + index if position else index
        return offset

    def address_of(self, indices: Sequence[int]) -> int:
        """Byte address of the element at logical ``indices``."""
        return self.base + self._horner_offset(indices) * self.element_size

    def stride_of_dim(self, dim: int) -> int:
        """Elements skipped when logical dimension ``dim`` advances by 1."""
        order = self.dim_order
        position = order.index(dim)
        stride = 1
        for later_position in range(position + 1, len(order)):
            extent = (
                self._padded_row_elements()
                if later_position == len(order) - 1
                else self.shape[order[later_position]]
            )
            stride *= extent
        return stride

    def with_layout(self, dim_order: tuple[int, ...]) -> "ArrayDecl":
        """Copy of this declaration under a different storage order."""
        return ArrayDecl(
            name=self.name,
            shape=self.shape,
            element_size=self.element_size,
            dim_order=dim_order,
            pad=self.pad,
            base_skew=self.base_skew,
            base=self.base,
            data=self.data,
        )

    # -- sugar: A[i, j] builds an AffineRef ------------------------------

    def __getitem__(
        self, subscripts: Union[AffineExpr, int, tuple]
    ) -> "AffineRef":
        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        return AffineRef(self, tuple(as_expr(s) for s in subscripts))

    def __repr__(self) -> str:
        return f"ArrayDecl({self.name}, shape={self.shape})"


class Reference:
    """Base class for all memory references."""

    #: Whether Section 2.3 classifies this reference kind as analyzable.
    analyzable: bool = False

    @property
    def array_name(self) -> Optional[str]:
        return None


@dataclass(frozen=True)
class ScalarRef(Reference):
    """A scalar variable (``A``): analyzable, one fixed address."""

    name: str
    analyzable = True


@dataclass(frozen=True)
class AffineRef(Reference):
    """An affine array reference (``C[i+j][k-1]``): analyzable."""

    array: ArrayDecl
    subscripts: tuple[AffineExpr, ...]

    analyzable = True

    def __post_init__(self) -> None:
        if len(self.subscripts) != self.array.rank:
            raise ValueError(
                f"{self.array.name}: {len(self.subscripts)} subscripts for "
                f"rank-{self.array.rank} array"
            )

    @property
    def array_name(self) -> str:
        return self.array.name

    @property
    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for subscript in self.subscripts:
            names |= subscript.variables
        return names

    def address(self, bindings: Mapping[str, int]) -> int:
        indices = [s.eval(bindings) for s in self.subscripts]
        return self.array.address_of(indices)

    def depends_on(self, variable: str) -> bool:
        return any(s.depends_on(variable) for s in self.subscripts)

    def with_array(self, array: ArrayDecl) -> "AffineRef":
        return AffineRef(array, self.subscripts)

    def __repr__(self) -> str:
        inner = "][".join(repr(s) for s in self.subscripts)
        return f"{self.array.name}[{inner}]"


@dataclass(frozen=True)
class NonAffineRef(Reference):
    """A non-affine subscript (``D[i*i][j]``, ``E[i/j]``).

    ``index_fn`` computes the logical indices from the loop bindings at
    execution time; it is opaque to the compiler, which is precisely why
    the reference is non-analyzable.
    """

    array: ArrayDecl
    index_fn: Callable[[Mapping[str, int]], tuple[int, ...]]
    description: str = "non-affine"

    analyzable = False

    @property
    def array_name(self) -> str:
        return self.array.name

    def address(self, bindings: Mapping[str, int]) -> int:
        indices = self.index_fn(bindings)
        return self.array.address_of(indices)

    def __repr__(self) -> str:
        return f"{self.array.name}[<{self.description}>]"


@dataclass(frozen=True)
class IndexedRef(Reference):
    """A subscripted-subscript reference (``G[IP[j]+2]``).

    Executing it touches memory twice: first the index load
    (``IP[j]`` — itself an affine access), then the data access at the
    loaded value (scaled and offset).  The index array must carry
    run-time ``data``.
    """

    array: ArrayDecl
    index: AffineRef
    offset: int = 0
    scale: int = 1

    analyzable = False

    @property
    def array_name(self) -> str:
        return self.array.name

    def addresses(self, bindings: Mapping[str, int]) -> tuple[int, int]:
        """(index-load address, data address)."""
        index_array = self.index.array
        if index_array.data is None:
            raise ValueError(
                f"index array {index_array.name} has no run-time data"
            )
        index_indices = [s.eval(bindings) for s in self.index.subscripts]
        value = int(index_array.data[tuple(index_indices)])
        target = value * self.scale + self.offset
        target %= self.array.element_count  # defensive wrap for tests
        return (
            index_array.address_of(index_indices),
            self.array.base + target * self.array.element_size,
        )

    def __repr__(self) -> str:
        return f"{self.array.name}[{self.index!r}*{self.scale}+{self.offset}]"


@dataclass(frozen=True)
class PointerChaseRef(Reference):
    """A pointer dereference walking a linked structure (``*H``, ``K->f``).

    The chase keeps per-``chain`` state (the current node id) in the
    interpreter; each execution touches the node's field at
    ``field_offset`` and then follows ``array.data[node]`` to the next
    node.  ``array.data`` must hold the successor ids (a permutation or
    list structure built by the workload).
    """

    array: ArrayDecl
    chain: str
    field_offset: int = 0
    node_size: int = 32

    analyzable = False

    @property
    def array_name(self) -> str:
        return self.array.name

    def address_and_next(self, node: int) -> tuple[int, int]:
        """(address touched for ``node``, successor node id)."""
        if self.array.data is None:
            raise ValueError(
                f"pointer array {self.array.name} has no run-time data"
            )
        addr = self.array.base + node * self.node_size + self.field_offset
        nxt = int(self.array.data[node % len(self.array.data)])
        return addr, nxt

    def __repr__(self) -> str:
        return f"*{self.array.name}<{self.chain}>"


@dataclass(frozen=True)
class RegisterRef(Reference):
    """A reference promoted to a register by scalar replacement.

    Wraps the original reference for bookkeeping; executing it touches
    no memory.  Produced by
    :mod:`repro.compiler.transforms.scalar_replacement`.
    """

    original: Reference

    analyzable = True

    @property
    def array_name(self) -> Optional[str]:
        return self.original.array_name

    def __repr__(self) -> str:
        return f"reg({self.original!r})"

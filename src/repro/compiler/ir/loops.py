"""Loops and loop-nest traversal."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.compiler.ir.expr import AffineExpr, MaxExpr, MinExpr, as_expr
from repro.compiler.ir.stmts import MarkerStmt, Statement

__all__ = ["Loop", "Node"]

Node = Union["Loop", Statement, MarkerStmt]


@dataclass
class Loop:
    """``for var in [lower, upper) step step: body``.

    Bounds are affine in outer loop variables (``MinExpr`` uppers and
    ``MaxExpr`` lowers appear after tiling).  ``preference`` is filled
    in by the region-detection pass: "sw" (compiler-optimizable), "hw"
    (leave to the run-time mechanism) or "mixed" (an outer loop whose
    children disagree, paper Figure 2 step 7).
    """

    var: str
    lower: Union[AffineExpr, MaxExpr]
    upper: Union[AffineExpr, MinExpr]
    body: list[Node] = field(default_factory=list)
    step: int = 1
    preference: Optional[str] = None

    def __post_init__(self) -> None:
        self.lower = as_expr(self.lower) if isinstance(
            self.lower, int
        ) else self.lower
        if isinstance(self.upper, int):
            self.upper = as_expr(self.upper)
        if self.step <= 0:
            raise ValueError(f"loop {self.var}: step must be positive")

    # -- structure -------------------------------------------------------

    @property
    def inner_loops(self) -> list["Loop"]:
        """Directly nested loops."""
        return [child for child in self.body if isinstance(child, Loop)]

    @property
    def is_innermost(self) -> bool:
        return not self.inner_loops

    def statements(self) -> list[Statement]:
        """Direct child statements (not those inside nested loops)."""
        return [child for child in self.body if isinstance(child, Statement)]

    def walk(self) -> Iterator[Node]:
        """Pre-order traversal of this loop and everything below it."""
        yield self
        for child in self.body:
            if isinstance(child, Loop):
                yield from child.walk()
            else:
                yield child

    def all_statements(self) -> Iterator[Statement]:
        """Every statement in the subtree, in program order."""
        for node in self.walk():
            if isinstance(node, Statement):
                yield node

    def nest_depth(self) -> int:
        """Depth of the deepest loop chain rooted here (this loop = 1)."""
        inner = self.inner_loops
        if not inner:
            return 1
        return 1 + max(child.nest_depth() for child in inner)

    # -- static estimates --------------------------------------------------

    def trip_count_estimate(self, assumed_outer: int = 16) -> int:
        """Iterations of this loop, assuming ``assumed_outer`` when the
        bounds depend on outer variables (triangular loops etc.)."""
        if (
            isinstance(self.lower, AffineExpr)
            and isinstance(self.upper, AffineExpr)
        ):
            # Correlated affine bounds (a skewed loop's f*t .. n + f*t)
            # have an exact trip count even though neither bound is
            # constant: subtract symbolically first.
            span = self.upper - self.lower
            if span.is_constant:
                trips = (span.const + self.step - 1) // self.step
                return max(trips, 0)
        if isinstance(self.lower, MaxExpr):
            candidates = [
                op.const for op in self.lower.operands if op.is_constant
            ]
            lower = max(candidates) if candidates else 0
        else:
            lower = self.lower.const if self.lower.is_constant else 0
        if isinstance(self.upper, MinExpr):
            candidates = [
                op.const for op in self.upper.operands if op.is_constant
            ]
            upper = min(candidates) if candidates else assumed_outer
        elif self.upper.is_constant:
            upper = self.upper.const
        else:
            upper = assumed_outer
        trips = (upper - lower + self.step - 1) // self.step
        return max(trips, 0)

    def is_perfect_nest(self) -> bool:
        """True when every level down to the innermost has a single loop
        child and no statements except at the innermost level."""
        loop: Loop = self
        while True:
            inner = loop.inner_loops
            if not inner:
                return True
            if len(inner) > 1 or loop.statements():
                return False
            loop = inner[0]

    def perfect_nest_loops(self) -> list["Loop"]:
        """The loops of a perfect nest from outermost (self) inwards.

        For an imperfect nest, returns the perfectly-nested prefix.
        """
        loops = [self]
        loop = self
        while True:
            inner = loop.inner_loops
            if len(inner) != 1 or loop.statements():
                return loops
            loop = inner[0]
            loops.append(loop)

    def __repr__(self) -> str:
        tag = f" [{self.preference}]" if self.preference else ""
        return (
            f"Loop({self.var} in [{self.lower!r}, {self.upper!r})"
            f"{tag}, {len(self.body)} children)"
        )

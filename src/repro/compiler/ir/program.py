"""Whole-program container."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator

from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.refs import ArrayDecl
from repro.compiler.ir.stmts import MarkerStmt, Statement

__all__ = ["Program"]


@dataclass
class Program:
    """A program: array declarations plus a top-level statement/loop list.

    Programs are the unit the paper's framework operates on: region
    detection annotates the loops, the locality optimizer rewrites the
    analyzable nests, marker insertion adds ON/OFF statements, and the
    interpreter (:mod:`repro.tracegen`) executes the result into a
    trace.
    """

    name: str
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    body: list[Node] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, decl in self.arrays.items():
            if name != decl.name:
                raise ValueError(
                    f"array registered as {name} but declared as {decl.name}"
                )

    def add_array(self, decl: ArrayDecl) -> ArrayDecl:
        if decl.name in self.arrays:
            raise ValueError(f"array {decl.name} already declared")
        self.arrays[decl.name] = decl
        return decl

    # -- traversal -------------------------------------------------------

    def walk(self) -> Iterator[Node]:
        """Pre-order traversal of the whole program."""
        for child in self.body:
            if isinstance(child, Loop):
                yield from child.walk()
            else:
                yield child

    def loops(self) -> Iterator[Loop]:
        for node in self.walk():
            if isinstance(node, Loop):
                yield node

    def top_level_loops(self) -> list[Loop]:
        return [node for node in self.body if isinstance(node, Loop)]

    def all_statements(self) -> Iterator[Statement]:
        for node in self.walk():
            if isinstance(node, Statement):
                yield node

    def markers(self) -> list[MarkerStmt]:
        return [node for node in self.walk() if isinstance(node, MarkerStmt)]

    # -- copying -----------------------------------------------------------

    def clone(self) -> "Program":
        """Deep copy for independent transformation.

        Run-time data arrays (index contents, pointer successors) are
        shared between clones — they are read-only inputs, and copying
        them would waste memory.  Aliasing between references and the
        declarations in ``arrays`` is preserved, so in-place layout
        changes on a clone affect every reference of that clone only.
        """
        memo: dict[int, object] = {}
        for decl in self.arrays.values():
            if decl.data is not None:
                memo[id(decl.data)] = decl.data
        return copy.deepcopy(self, memo)

    def total_footprint_bytes(self) -> int:
        return sum(decl.footprint_bytes for decl in self.arrays.values())

    def __repr__(self) -> str:
        return (
            f"Program({self.name}, {len(self.arrays)} arrays, "
            f"{len(self.body)} top-level nodes)"
        )

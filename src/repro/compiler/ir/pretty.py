"""Human-readable rendering of IR programs.

Produces a pseudo-C listing of a program — loops, statements with
their references, region annotations, ON/OFF markers — for debugging
workload models and inspecting what the transformations did.  Used by
``python -m repro regions`` consumers and the examples.
"""

from __future__ import annotations

from repro.compiler.ir.expr import MaxExpr, MinExpr
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import (
    AffineRef,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    Reference,
    RegisterRef,
    ScalarRef,
)
from repro.compiler.ir.stmts import MarkerStmt, Statement

__all__ = ["format_program", "format_reference"]

_INDENT = "    "


def format_reference(ref: Reference) -> str:
    """One reference as source-like text."""
    if isinstance(ref, ScalarRef):
        return ref.name
    if isinstance(ref, AffineRef):
        subscripts = "][".join(repr(s) for s in ref.subscripts)
        return f"{ref.array.name}[{subscripts}]"
    if isinstance(ref, IndexedRef):
        inner = format_reference(ref.index)
        suffix = ""
        if ref.scale != 1:
            suffix += f"*{ref.scale}"
        if ref.offset:
            suffix += f"+{ref.offset}"
        return f"{ref.array.name}[{inner}{suffix}]"
    if isinstance(ref, PointerChaseRef):
        return f"{ref.array.name}->({ref.chain}+{ref.field_offset})"
    if isinstance(ref, NonAffineRef):
        return f"{ref.array.name}[<{ref.description}>]"
    if isinstance(ref, RegisterRef):
        return f"reg({format_reference(ref.original)})"
    return repr(ref)


def _format_bound(bound) -> str:
    if isinstance(bound, MinExpr):
        return "min(" + ", ".join(repr(op) for op in bound.operands) + ")"
    if isinstance(bound, MaxExpr):
        return "max(" + ", ".join(repr(op) for op in bound.operands) + ")"
    return repr(bound)


def _format_statement(statement: Statement) -> str:
    writes = ", ".join(format_reference(w) for w in statement.writes)
    reads = ", ".join(format_reference(r) for r in statement.reads)
    label = statement.label or "stmt"
    preference = (
        f"  /* {statement.preference} */" if statement.preference else ""
    )
    lhs = writes or "_"
    return f"{lhs} = f({reads});  // {label}{preference}"


def _render(node, lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(node, Loop):
        preference = f"  /* {node.preference} */" if node.preference else ""
        lower = _format_bound(node.lower)
        upper = _format_bound(node.upper)
        step = f"; step {node.step}" if node.step != 1 else ""
        lines.append(
            f"{pad}for ({node.var} = {lower}; {node.var} < {upper}"
            f"{step}) {{{preference}"
        )
        for child in node.body:
            _render(child, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, Statement):
        lines.append(pad + _format_statement(node))
    elif isinstance(node, MarkerStmt):
        word = "ACTIVATE" if node.activates else "DEACTIVATE"
        lines.append(f"{pad}__{word}_HW();")
    else:  # pragma: no cover - closed node set
        lines.append(f"{pad}/* {node!r} */")


def format_program(program: Program, include_arrays: bool = True) -> str:
    """The whole program as a pseudo-C listing."""
    lines: list[str] = [f"// program {program.name}"]
    if include_arrays:
        for decl in program.arrays.values():
            shape = "][".join(str(extent) for extent in decl.shape)
            layout = ""
            if decl.dim_order != tuple(range(decl.rank)):
                layout = f"  /* layout {decl.dim_order} */"
            pad = f" pad={decl.pad}" if decl.pad else ""
            skew = f" skew={decl.base_skew}" if decl.base_skew else ""
            lines.append(
                f"double {decl.name}[{shape}];"
                f"{layout}{pad}{skew}".rstrip()
            )
    for node in program.body:
        _render(node, lines, 0)
    return "\n".join(lines)

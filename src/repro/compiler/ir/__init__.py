"""Executable loop-nest intermediate representation."""

from repro.compiler.ir.expr import AffineExpr, MinExpr, var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import (
    AffineRef,
    ArrayDecl,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    Reference,
    RegisterRef,
    ScalarRef,
)
from repro.compiler.ir.stmts import MarkerStmt, Statement

__all__ = [
    "AffineExpr",
    "AffineRef",
    "ArrayDecl",
    "IndexedRef",
    "Loop",
    "MarkerStmt",
    "MinExpr",
    "NonAffineRef",
    "PointerChaseRef",
    "Program",
    "Reference",
    "RegisterRef",
    "ScalarRef",
    "Statement",
    "var",
]

"""The compiler side of the paper's framework (Sections 2 and 3.2).

Subpackages:

* :mod:`repro.compiler.ir` — a loop-nest intermediate representation
  rich enough to express both the regular (affine) kernels and the
  irregular (pointer/indexed/non-affine) access patterns the paper's
  benchmarks contain, and *executable* so traces can be generated.
* :mod:`repro.compiler.analysis` — reference classification
  (analyzable vs non-analyzable, Section 2.3), reuse analysis, loop
  bounds/footprint estimation, and a direction-vector dependence test.
* :mod:`repro.compiler.regions` — the region-detection algorithm of
  Section 2.2 plus ON/OFF marker insertion with redundant-marker
  elimination.
* :mod:`repro.compiler.transforms` — loop interchange, tiling,
  unroll-and-jam, scalar replacement, and data-layout selection.
* :mod:`repro.compiler.optimizer` — the integrated pipeline that the
  Pure-Software / Combined / Selective versions all share.
* :mod:`repro.compiler.verify` — the independent static-analysis
  backstop: structural well-formedness, marker-state abstract
  interpretation (with minimality), interval bounds checking, and a
  post-transform legality audit (``python -m repro lint``).
"""

from repro.compiler.optimizer import LocalityOptimizer, OptimizationReport
from repro.compiler.verify import (
    VerificationError,
    VerifyReport,
    verify_program,
)

__all__ = [
    "LocalityOptimizer",
    "OptimizationReport",
    "VerificationError",
    "VerifyReport",
    "verify_program",
]

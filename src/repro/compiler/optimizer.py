"""The integrated locality-optimization pipeline (paper Section 3.2).

Applies, to every software-analyzable region found by region detection:

1. **Loop fusion** — adjacent compatible sibling nests sharing arrays
   merge, so shared values are reused cache-hot.
2. **Loop interchange** — temporal-reuse-first permutation of each
   perfect nest.
3. **Data layout selection** — per-array storage order so the innermost
   loop sweeps stride-1 (global, voted across regions).
4. **Loop skewing** — depth-2 nests whose dependence pattern blocks an
   otherwise-profitable tiling get rotated fully permutable.
5. **Iteration-space tiling** — when the nest's footprint exceeds L1 and
   outer loops carry reuse.
6. **Unroll-and-jam** — small-factor outer unrolling into the inner body.
7. **Scalar replacement** — inner-invariant references promoted to
   registers (loads hoisted, stores sunk).

Hardware-preferred regions are left untouched — their locality is the
run-time mechanism's job.  The same optimized program is used by the
Pure-Software, Combined, and Selective versions (Section 4.4); only the
Selective version additionally carries ON/OFF markers.

Each step can be disabled independently, which the ablation benchmarks
use to attribute the software-side gains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.compiler.analysis.classify import (
    DEFAULT_THRESHOLD,
    MIXED,
    SOFTWARE,
)
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.program import Program
from repro.compiler.regions.detect import RegionReport, detect_regions
from repro.compiler.transforms.fusion import FusionResult, fuse_region
from repro.compiler.transforms.interchange import (
    InterchangeResult,
    apply_interchange,
)
from repro.compiler.transforms.layout import (
    LayoutResult,
    apply_layouts,
    apply_padding,
    choose_layouts,
)
from repro.compiler.transforms.scalar_replacement import (
    ScalarReplacementResult,
    apply_scalar_replacement,
)
from repro.compiler.transforms.skew import SkewResult, apply_skew
from repro.compiler.transforms.tiling import TilingResult, apply_tiling
from repro.compiler.transforms.unroll import UnrollResult, apply_unroll_and_jam
from repro.params import MachineParams

__all__ = [
    "LocalityOptimizer",
    "OptimizationReport",
    "software_nest_heads",
    "software_regions",
]


@dataclass
class OptimizationReport:
    """Everything the optimizer did to one program."""

    program_name: str
    regions: RegionReport | None = None
    fusions: list[FusionResult] = field(default_factory=list)
    interchanges: list[InterchangeResult] = field(default_factory=list)
    layout: LayoutResult | None = None
    padded_arrays: list[str] = field(default_factory=list)
    skews: list[SkewResult] = field(default_factory=list)
    tilings: list[TilingResult] = field(default_factory=list)
    unrolls: list[UnrollResult] = field(default_factory=list)
    scalar: ScalarReplacementResult | None = None
    #: Filled when ``optimize(verify=True)`` ran the static verifier.
    verification: object | None = None

    @property
    def fused_nests(self) -> int:
        return sum(1 for r in self.fusions if r.applied)

    @property
    def interchanged_nests(self) -> int:
        return sum(1 for r in self.interchanges if r.applied)

    @property
    def skewed_nests(self) -> int:
        return sum(1 for r in self.skews if r.applied)

    @property
    def tiled_nests(self) -> int:
        return sum(1 for r in self.tilings if r.applied)

    @property
    def unrolled_nests(self) -> int:
        return sum(1 for r in self.unrolls if r.applied)

    def summary(self) -> str:
        layouts = len(self.layout.changed) if self.layout else 0
        promoted = self.scalar.promoted if self.scalar else 0
        return (
            f"{self.program_name}: {self.fused_nests} fused, "
            f"{self.interchanged_nests} interchanged, "
            f"{layouts} layouts changed, {len(self.padded_arrays)} padded, "
            f"{self.skewed_nests} skewed, "
            f"{self.tiled_nests} tiled, {self.unrolled_nests} unrolled, "
            f"{promoted} refs promoted"
        )


class LocalityOptimizer:
    """Compiler-side optimizer driven by a machine description."""

    def __init__(
        self,
        machine: MachineParams,
        threshold: float = DEFAULT_THRESHOLD,
        enable_fusion: bool = True,
        enable_interchange: bool = True,
        enable_layout: bool = True,
        enable_padding: bool = True,
        enable_skew: bool = True,
        enable_tiling: bool = True,
        enable_unroll: bool = True,
        enable_scalar_replacement: bool = True,
        unroll_factor: int = 2,
        model_tiles: bool = True,
    ):
        self.machine = machine
        self.threshold = threshold
        self.enable_fusion = enable_fusion
        self.enable_interchange = enable_interchange
        self.enable_layout = enable_layout
        self.enable_padding = enable_padding
        self.enable_skew = enable_skew
        self.enable_tiling = enable_tiling
        self.enable_unroll = enable_unroll
        self.enable_scalar_replacement = enable_scalar_replacement
        self.unroll_factor = unroll_factor
        #: Pick tile sizes with the analytic locality model (clone each
        #: candidate, score its predicted MRC) instead of the capacity
        #: heuristic alone; the heuristic edge stays the tie-breaker.
        self.model_tiles = model_tiles

    def optimize(
        self, program: Program, verify: bool = False
    ) -> OptimizationReport:
        """Transform ``program`` in place; return the report.

        With ``verify=True`` a pristine clone is kept and, after the
        pipeline, the static verifier
        (:mod:`repro.compiler.verify`) re-proves structure, marker
        placement, bounds, and transform legality; correctness errors
        raise :class:`~repro.compiler.verify.VerificationError` with
        the offending nodes named.
        """
        baseline = program.clone() if verify else None
        report = OptimizationReport(program.name)
        report.regions = detect_regions(program, self.threshold)

        if self.enable_fusion:
            # Before anything enumerates nest heads: fusion merges
            # sibling nests, so the head list must be taken afterwards.
            for index, region in enumerate(self._software_regions(program)):
                report.fusions.extend(fuse_region(region, index))

        heads = list(self._software_nest_heads(program))

        if self.enable_interchange:
            line = self.machine.l1d.block_size
            for head in heads:
                report.interchanges.append(apply_interchange(head, line))

        if self.enable_layout:
            report.layout = choose_layouts(
                program,
                line_size=self.machine.l1d.block_size,
                l1_size=self.machine.l1d.size,
            )
            apply_layouts(program, report.layout)

        if self.enable_padding:
            # Padding targets conflict-prone arrays: those whose
            # references asked for layout attention, plus everything in
            # a nest that interchange had to fix — both kinds end up as
            # dense streams whose only remaining misses are same-set
            # collisions between arrays.
            candidates: set[str] | None
            if report.layout is not None:
                candidates = set(report.layout.votes)
                for head, interchange in zip(heads, report.interchanges):
                    if interchange.applied:
                        candidates.update(_nest_array_names(head))
            else:
                candidates = None
            report.padded_arrays = apply_padding(
                program,
                self.machine.l1d.block_size,
                self.machine.l2.block_size,
                candidates=candidates,
            )

        if self.enable_skew and self.enable_tiling:
            # Skewing exists only to unblock tiling; one result per
            # head, aligned with the heads list like the other phases.
            l1_bytes = self.machine.l1d.size
            for head in heads:
                report.skews.append(apply_skew(head, l1_bytes))

        if self.enable_tiling:
            l1_bytes = self.machine.l1d.size
            if self.model_tiles:
                # Imported lazily: the analytic package is a consumer
                # of the compiler IR, not a dependency of it.
                from repro.analytic.tiles import model_tiling

                line = self.machine.l1d.block_size
                for head in heads:
                    report.tilings.append(
                        model_tiling(head, l1_bytes, line)
                    )
            else:
                for head in heads:
                    report.tilings.append(apply_tiling(head, l1_bytes))

        if self.enable_unroll:
            tiled = {
                id(head)
                for head, tiling in zip(heads, report.tilings)
                if tiling.applied
            } if report.tilings else set()
            for head in heads:
                if id(head) in tiled:
                    report.unrolls.append(
                        UnrollResult(False, reason="nest was tiled")
                    )
                    continue
                report.unrolls.append(
                    apply_unroll_and_jam(head, self.unroll_factor)
                )

        if self.enable_scalar_replacement:
            total = ScalarReplacementResult()
            for region in self._software_regions(program):
                partial = apply_scalar_replacement(region)
                total.promoted += partial.promoted
                total.loops_transformed += partial.loops_transformed
            report.scalar = total

        if verify:
            # Imported lazily: the verify package imports this module
            # for the nest-head enumeration.
            from repro.compiler.verify import (
                VerificationError,
                verify_program,
            )

            report.verification = verify_program(
                program, report=report, baseline=baseline
            )
            if report.verification.errors:
                raise VerificationError(report.verification)

        return report

    # ------------------------------------------------------------------

    def _software_regions(self, program: Program) -> Iterator[Loop]:
        return software_regions(program)

    def _software_nest_heads(self, program: Program) -> Iterator[Loop]:
        return software_nest_heads(program)


def software_regions(program: Program) -> Iterator[Loop]:
    """Maximal loops with preference "sw", in program order.

    Shared with the static verifier's legality replay, which must
    enumerate nests exactly as the optimizer did to line its audit up
    with the per-nest results in the report.
    """

    def walk(nodes):
        for node in nodes:
            if not isinstance(node, Loop):
                continue
            if node.preference == SOFTWARE:
                yield node
            elif node.preference == MIXED:
                yield from walk(node.body)

    yield from walk(program.body)


def software_nest_heads(program: Program) -> Iterator[Loop]:
    """Transformable nest heads inside the software regions.

    A nest head is a loop whose perfect-nest chain bottoms out at a
    true innermost loop; imperfect levels split into separate heads
    below the imperfection.
    """
    for region in software_regions(program):
        yield from _nest_heads(region)


def _nest_array_names(head: Loop) -> set[str]:
    """Names of arrays referenced anywhere under ``head`` (rank >= 2)."""
    from repro.compiler.ir.refs import AffineRef

    names: set[str] = set()
    for statement in head.all_statements():
        for ref in statement.references:
            if isinstance(ref, AffineRef) and ref.array.rank >= 2:
                names.add(ref.array.name)
    return names


def _nest_heads(loop: Loop) -> Iterator[Loop]:
    chain = loop.perfect_nest_loops()
    bottom = chain[-1]
    if bottom.is_innermost:
        yield loop
        return
    for inner in bottom.inner_loops:
        yield from _nest_heads(inner)

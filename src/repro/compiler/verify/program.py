"""The verifier facade: run all four analyses over one program.

This is the pass suite the rest of the system calls — the CLI's
``repro lint``, the ``verify=True`` hook on
:meth:`repro.compiler.optimizer.LocalityOptimizer.optimize`, and the
mutation/differential test suites.  The four analyses are independent
of the code they check: nothing is trusted from the optimizer or the
marker emitter except, for the legality replay, the *claimed* loop
orders in the optimization report (which are then validated against
dependence vectors recomputed from the subscripts).
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import Reference
from repro.compiler.verify.bounds import verify_bounds
from repro.compiler.verify.diagnostics import VerifyReport
from repro.compiler.verify.legality import verify_legality
from repro.compiler.verify.markers import verify_markers
from repro.compiler.verify.structure import verify_structure

__all__ = ["verify_program"]


def verify_program(
    program: Program,
    report=None,
    baseline: Optional[Program] = None,
    check_minimality: bool = True,
) -> VerifyReport:
    """Run structure, marker, bounds, and legality analyses.

    ``report`` (an :class:`~repro.compiler.optimizer
    .OptimizationReport`) and ``baseline`` (the pre-transform program —
    a clone taken before optimizing, or a fresh instantiation; it is
    mutated during the replay) enable the full legality audit; without
    them only the program-local legality checks run.
    """
    result = VerifyReport(program.name)
    result.diagnostics.extend(verify_structure(program))
    result.diagnostics.extend(
        verify_markers(program, check_minimality=check_minimality)
    )
    result.diagnostics.extend(verify_bounds(program))
    result.diagnostics.extend(
        verify_legality(program, report=report, baseline=baseline)
    )
    result.refs_checked = _count_refs(program)
    result.markers_checked = len(program.markers())
    result.nests_audited = (
        sum(
            1
            for results in (
                getattr(report, "fusions", []),
                report.interchanges,
                getattr(report, "skews", []),
                report.tilings,
                report.unrolls,
            )
            for r in results
            if r.applied
        )
        if report is not None
        else 0
    )
    return result


def _count_refs(program: Program) -> int:
    return sum(
        1
        for statement in program.all_statements()
        for ref in statement.references
        if isinstance(ref, Reference)
    )

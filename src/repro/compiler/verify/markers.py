"""Analysis 2: abstract interpretation of the hardware ON/OFF state.

Recomputes, independently of the fused emitter in
:mod:`repro.compiler.regions.markers`, the hardware state at every node
over the lattice ``{ON, OFF, UNKNOWN}`` and checks the central property
of paper Section 2.2: every hardware-preferred region executes with the
mechanism ON and every software-preferred region with it OFF — on
*every* iteration of every loop, which is where the emitter's one-retry
heuristic could in principle go wrong.

Loop bodies are iterated to a fixed point: the body's entry state is
the join of the state before the loop and the state at the end of the
body (distinct states join to UNKNOWN, which no region requirement
accepts, so a loop whose body nets a state change *must* carry a
marker before its first region — the Figure 2(c) "reactivate at the
bottom" shape).  A loop that may run zero times additionally joins its
exit state with the pre-loop state; trip positivity is proven with the
same interval arithmetic the bounds analysis uses, so tiled point
loops (``min(N, tt+T)`` uppers) are still recognized as
always-executing.

**Minimality** is checked by deletion: a marker whose removal leaves
the property intact is redundant and reported as a warning — the
emitter's elimination pass should never have produced it.
"""

from __future__ import annotations

from repro.compiler.analysis.classify import HARDWARE, SOFTWARE
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.compiler.verify.bounds import (
    Interval,
    definitely_executes,
    loop_var_interval,
)
from repro.compiler.verify.diagnostics import (
    WARNING,
    Diagnostic,
    node_path,
)

__all__ = ["verify_markers"]

_ANALYSIS = "markers"

#: The abstract hardware state lattice.
_ON = "on"
_OFF = "off"
_UNKNOWN = "unknown"

#: What state each region preference requires.
_REQUIRED = {HARDWARE: _ON, SOFTWARE: _OFF}


def _join(a: str, b: str) -> str:
    return a if a == b else _UNKNOWN


def verify_markers(
    program: Program, check_minimality: bool = True
) -> list[Diagnostic]:
    """Check marker correctness (and, optionally, minimality).

    On a program without region annotations or markers every check is
    vacuous; run :func:`repro.compiler.regions.detect.detect_regions`
    (or the full marker pass) first for a meaningful verdict.
    """
    diagnostics = _check_program(program)
    if check_minimality and not diagnostics:
        diagnostics.extend(_check_minimality(program))
    return diagnostics


# ----------------------------------------------------------------------
# the abstract interpreter


def _check_program(program: Program) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    _run(program, program.body, _OFF, [], {}, diagnostics)
    return diagnostics


def _run(
    program: Program,
    nodes: list[Node],
    state: str,
    ancestors: list[Loop],
    env: dict[str, Interval],
    diagnostics: list[Diagnostic] | None,
) -> str:
    """Abstractly execute ``nodes`` from ``state``; return the exit
    state.  With ``diagnostics=None`` the walk is silent (used for the
    fixed-point warm-up passes and the minimality probes)."""
    for node in nodes:
        if isinstance(node, MarkerStmt):
            state = _ON if node.activates else _OFF
        elif isinstance(node, Statement):
            _require(program, node, state, ancestors, diagnostics)
        elif isinstance(node, Loop):
            _require(program, node, state, ancestors, diagnostics)
            state = _run_loop(
                program, node, state, ancestors, env, diagnostics
            )
    return state


def _run_loop(
    program: Program,
    loop: Loop,
    state: str,
    ancestors: list[Loop],
    env: dict[str, Interval],
    diagnostics: list[Diagnostic] | None,
) -> str:
    below = ancestors + [loop]
    iterates = loop_var_interval(loop, env)
    shadowed = loop.var in env
    if iterates is not None and not shadowed:
        env[loop.var] = iterates
    try:
        # Fixed point on the body's entry state: iteration i+1 enters
        # in the exit state of iteration i, so the entry must absorb
        # the exit.  The lattice has height 2, so one widening step
        # (to UNKNOWN) always converges.
        entry = state
        exit_state = _run(program, loop.body, entry, below, env, None)
        if exit_state != entry:
            entry = _UNKNOWN
            exit_state = _run(program, loop.body, entry, below, env, None)
        # Converged: replay once more, collecting diagnostics.
        exit_state = _run(
            program, loop.body, entry, below, env, diagnostics
        )
        if definitely_executes(loop, env if not shadowed else {}):
            return exit_state
        return _join(state, exit_state)
    finally:
        if iterates is not None and not shadowed:
            del env[loop.var]


def _require(
    program: Program,
    node: Node,
    state: str,
    ancestors: list[Loop],
    diagnostics: list[Diagnostic] | None,
) -> None:
    required = _REQUIRED.get(getattr(node, "preference", None))
    if required is None or state == required:
        return
    if diagnostics is not None:
        want = "ON" if required == _ON else "OFF"
        have = state.upper()
        diagnostics.append(
            Diagnostic(
                program.name,
                _ANALYSIS,
                node_path(ancestors, node),
                f"{node.preference!r} region entered with hardware state "
                f"{have}, requires {want}",
            )
        )


# ----------------------------------------------------------------------
# minimality


def _check_minimality(program: Program) -> list[Diagnostic]:
    """Delete each marker in turn; if the property survives, the
    marker was redundant.  Quadratic in marker count, but marker
    counts are tiny (one per region boundary at most)."""
    diagnostics: list[Diagnostic] = []
    for container, index, marker, ancestors in _marker_sites(program):
        del container[index]
        try:
            still_valid = not _check_program(program)
        finally:
            container.insert(index, marker)
        if still_valid:
            diagnostics.append(
                Diagnostic(
                    program.name,
                    _ANALYSIS,
                    node_path(ancestors, marker),
                    "removable marker: deleting it leaves every region "
                    "in the required state (emitter minimality bug)",
                    severity=WARNING,
                )
            )
    return diagnostics


def _marker_sites(program: Program):
    """Yield (container_list, index, marker, ancestor_loops) for every
    marker, in program order."""
    sites = []

    def visit(container: list[Node], ancestors: list[Loop]) -> None:
        for index, node in enumerate(container):
            if isinstance(node, MarkerStmt):
                sites.append((container, index, node, list(ancestors)))
            elif isinstance(node, Loop):
                visit(node.body, ancestors + [node])

    visit(program.body, [])
    return sites

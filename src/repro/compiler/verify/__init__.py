"""Static IR verification: the correctness backstop for the compiler.

A pass suite that runs *after* — and independently of — the
:class:`~repro.compiler.optimizer.LocalityOptimizer` and the ON/OFF
marker emitter, and proves four families of facts about a program:

1. **structure** (:mod:`.structure`) — the IR is well-formed: subscript
   counts match array ranks, loop variables are unique along each nest
   path, references and bounds use only in-scope variables, markers sit
   only at legal body positions;
2. **markers** (:mod:`.markers`) — an abstract interpretation over the
   ``{ON, OFF, UNKNOWN}`` state lattice, iterating loop bodies to a
   fixed point, proves every hardware region executes ON and every
   software region OFF, and that no marker is removable (minimality);
3. **bounds** (:mod:`.bounds`) — interval analysis over loop bounds
   proves every affine access in bounds, through tiling's ``min``
   uppers, unroll's shifted copies, and padded/permuted layouts;
4. **legality** (:mod:`.legality`) — dependence relations are
   recomputed from the subscripts by the engine in
   :mod:`repro.compiler.analysis.deps` and each applied fusion /
   interchange / skew / tiling / unroll is re-validated (no
   fusion-preventing dependence, lexicographic non-negativity, skew
   restores full permutability, no reversed dependence under
   unroll-and-jam), and every scalar-replaced reference is re-proven
   inner-loop invariant.

A fifth, purely informational pass (:mod:`.deps`, behind
``repro lint --deps``) renders per-nest relation summaries: counts,
kind mix, ``*`` directions, unanalyzable references, and which
transforms each nest received.

Entry points: :func:`verify_program` over one program,
:func:`~repro.compiler.verify.lint.lint_registry` over the whole
benchmark suite (``python -m repro lint``), and the opt-in
``verify=True`` flag on ``LocalityOptimizer.optimize``.
"""

from repro.compiler.verify.bounds import Interval, verify_bounds
from repro.compiler.verify.deps import (
    NestDepsSummary,
    deps_summaries,
    render_deps,
)
from repro.compiler.verify.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    VerificationError,
    VerifyReport,
)
from repro.compiler.verify.legality import verify_legality
from repro.compiler.verify.markers import verify_markers
from repro.compiler.verify.program import verify_program
from repro.compiler.verify.structure import verify_structure

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "Interval",
    "NestDepsSummary",
    "VerificationError",
    "VerifyReport",
    "deps_summaries",
    "render_deps",
    "verify_bounds",
    "verify_legality",
    "verify_markers",
    "verify_program",
    "verify_structure",
]

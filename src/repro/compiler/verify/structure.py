"""Analysis 1: structural well-formedness of the IR.

Checks the invariants every later pass (and the interpreter) silently
relies on, so a corrupted transform fails here with a named node
instead of as an address error three layers down:

* array declarations are internally consistent (positive shape,
  ``dim_order`` a permutation, non-negative padding) and every
  reference's declaration is the *same object* registered in
  ``program.arrays`` — transforms mutate declarations in place, so a
  stale alias would silently address the old layout;
* subscript count matches array rank, for plain affine references and
  for the index part of subscripted-subscript references;
* loop variables are unique along every nest path (shadowing would
  make inner bindings clobber outer ones in the interpreter);
* loop bounds and affine subscripts use only in-scope loop variables
  (bounds are evaluated at loop entry, so a loop's own variable is not
  in scope for its own bounds);
* markers appear only in *body* positions outside uniform regions: a
  marker nested inside an "sw"/"hw" loop would toggle the hardware
  mid-region, which the emitter never does;
* index arrays behind :class:`IndexedRef` carry run-time data.
"""

from __future__ import annotations

from repro.compiler.analysis.classify import HARDWARE, SOFTWARE
from repro.compiler.ir.expr import AffineExpr, MaxExpr, MinExpr
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import (
    AffineRef,
    ArrayDecl,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    Reference,
    RegisterRef,
)
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.compiler.verify.diagnostics import (
    Diagnostic,
    describe_node,
    node_path,
)

__all__ = ["verify_structure"]

_ANALYSIS = "structure"


def verify_structure(program: Program) -> list[Diagnostic]:
    """Run every structural check; return the diagnostics."""
    diagnostics: list[Diagnostic] = []
    for name, decl in program.arrays.items():
        _check_decl(program, name, decl, diagnostics)
    _walk(program, program.body, [], False, diagnostics)
    return diagnostics


def _emit(
    diagnostics: list[Diagnostic],
    program: Program,
    ancestors: list[Loop],
    node,
    message: str,
) -> None:
    diagnostics.append(
        Diagnostic(
            program=program.name,
            analysis=_ANALYSIS,
            node=node_path(ancestors, node),
            message=message,
        )
    )


def _check_decl(
    program: Program,
    registered_name: str,
    decl: ArrayDecl,
    diagnostics: list[Diagnostic],
) -> None:
    where = f"array {decl.name}"

    def emit(message: str) -> None:
        diagnostics.append(
            Diagnostic(program.name, _ANALYSIS, where, message)
        )

    if registered_name != decl.name:
        emit(f"registered as {registered_name!r} but named {decl.name!r}")
    if not decl.shape or any(extent <= 0 for extent in decl.shape):
        emit(f"non-positive shape {decl.shape}")
    if sorted(decl.dim_order) != list(range(decl.rank)):
        emit(
            f"dim_order {decl.dim_order} is not a permutation of "
            f"{decl.rank} dimensions"
        )
    if decl.pad < 0 or decl.base_skew < 0:
        emit(f"negative padding (pad={decl.pad}, skew={decl.base_skew})")
    if decl.element_size <= 0:
        emit(f"non-positive element size {decl.element_size}")


def _walk(
    program: Program,
    nodes: list[Node],
    ancestors: list[Loop],
    inside_uniform_region: bool,
    diagnostics: list[Diagnostic],
) -> None:
    scope = {loop.var for loop in ancestors}
    for node in nodes:
        if isinstance(node, Loop):
            _check_loop(program, node, ancestors, scope, diagnostics)
            uniform = inside_uniform_region or node.preference in (
                SOFTWARE,
                HARDWARE,
            )
            _walk(
                program,
                node.body,
                ancestors + [node],
                uniform,
                diagnostics,
            )
        elif isinstance(node, Statement):
            for ref in node.references:
                _check_reference(
                    program, ref, node, ancestors, scope, diagnostics
                )
        elif isinstance(node, MarkerStmt):
            if node.kind not in ("on", "off"):
                _emit(
                    diagnostics, program, ancestors, node,
                    f"invalid marker kind {node.kind!r}",
                )
            if inside_uniform_region:
                _emit(
                    diagnostics, program, ancestors, node,
                    "marker inside a uniform region: the hardware state "
                    "would change mid-region",
                )
        else:
            _emit(
                diagnostics, program, ancestors, node,
                f"unknown node type {type(node).__name__} in body position",
            )


def _check_loop(
    program: Program,
    loop: Loop,
    ancestors: list[Loop],
    scope: set[str],
    diagnostics: list[Diagnostic],
) -> None:
    if loop.var in scope:
        _emit(
            diagnostics, program, ancestors, loop,
            f"loop variable {loop.var!r} shadows an enclosing loop",
        )
    if loop.step <= 0:
        _emit(
            diagnostics, program, ancestors, loop,
            f"non-positive step {loop.step}",
        )
    for role, bound in (("lower", loop.lower), ("upper", loop.upper)):
        if isinstance(bound, (MinExpr, MaxExpr)):
            # min() can only tighten an upper bound, max() a lower one;
            # the other placement would silently widen the range.
            valid_role = "upper" if isinstance(bound, MinExpr) else "lower"
            if role != valid_role:
                _emit(
                    diagnostics, program, ancestors, loop,
                    f"{type(bound).__name__} is only valid as "
                    f"a{'n' if valid_role == 'upper' else ''} "
                    f"{valid_role} bound, found as {role}",
                )
            variables = bound.variables
        elif isinstance(bound, AffineExpr):
            variables = bound.variables
        else:
            _emit(
                diagnostics, program, ancestors, loop,
                f"{role} bound is {type(bound).__name__}, "
                "not an affine expression",
            )
            continue
        escaped = variables - scope
        if escaped:
            _emit(
                diagnostics, program, ancestors, loop,
                f"{role} bound {bound!r} uses out-of-scope "
                f"variable(s) {sorted(escaped)}",
            )


def _check_reference(
    program: Program,
    ref: Reference,
    statement: Statement,
    ancestors: list[Loop],
    scope: set[str],
    diagnostics: list[Diagnostic],
) -> None:
    here = node_path(ancestors, statement) + f" > {describe_node(ref)}"

    def emit(message: str) -> None:
        diagnostics.append(
            Diagnostic(program.name, _ANALYSIS, here, message)
        )

    if isinstance(ref, RegisterRef):
        _check_reference(
            program, ref.original, statement, ancestors, scope, diagnostics
        )
        return
    if isinstance(ref, AffineRef):
        _check_affine(program, ref, emit, scope)
    elif isinstance(ref, IndexedRef):
        _check_registered(program, ref.array, emit)
        _check_affine(program, ref.index, emit, scope)
        if ref.index.array.data is None:
            emit(
                f"index array {ref.index.array.name} carries no run-time "
                "data"
            )
    elif isinstance(ref, (NonAffineRef, PointerChaseRef)):
        _check_registered(program, ref.array, emit)


def _check_affine(
    program: Program, ref: AffineRef, emit, scope: set[str]
) -> None:
    _check_registered(program, ref.array, emit)
    if len(ref.subscripts) != ref.array.rank:
        emit(
            f"{len(ref.subscripts)} subscript(s) for rank-"
            f"{ref.array.rank} array {ref.array.name}"
        )
    escaped = ref.variables - scope
    if escaped:
        emit(f"uses out-of-scope variable(s) {sorted(escaped)}")


def _check_registered(program: Program, decl: ArrayDecl, emit) -> None:
    registered = program.arrays.get(decl.name)
    if registered is None:
        emit(f"array {decl.name} is not declared in the program")
    elif registered is not decl:
        emit(
            f"array {decl.name} declaration is a stale alias: the "
            "reference does not share the registered declaration object, "
            "so in-place layout changes would not reach it"
        )

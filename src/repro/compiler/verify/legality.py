"""Analysis 4: post-transform legality audit.

The transforms in :mod:`repro.compiler.transforms` check their own
preconditions before rewriting; this pass re-derives the legality facts
*after* the fact so a buggy transform (or a corrupted program) is
caught instead of silently changing program semantics.

Two layers:

**Program-only checks** (always run): every :class:`RegisterRef` left
by scalar replacement must wrap a reference that is genuinely invariant
in the innermost loop it lives in, and its promoted value must be
loaded before / stored after that loop — a promotion of a variant
reference would read one element where the original program read many.

**Replay audit** (when the caller supplies the pre-transform
``baseline`` program and the :class:`OptimizationReport` the optimizer
produced): the software nest heads of the baseline are enumerated
exactly as the optimizer enumerated them, the dependence relations of
each nest are *recomputed from the subscripts* by the engine in
:mod:`repro.compiler.analysis.deps` (nothing is trusted from the
report but the claimed loop orders, skew factors, and fusion sites),
and then

* each applied fusion must be re-provable legal from the baseline's
  subscripts (no fusion-preventing dependence between the merged
  nests); the legal merge is replayed on the baseline so the head
  enumeration lines up with what the optimizer saw;
* each applied interchange's ``order_before → order_after`` permutation
  must keep every dependence relation lexicographically non-negative
  (Wolf & Lam), and the transformed program must actually contain the
  claimed order on some nest path;
* each applied skew, re-applied to the baseline with the claimed
  factor, must leave the nest fully permutable — otherwise the tiling
  it was supposed to enable was illegal;
* each applied tiling must have been fully permutable, since tiling
  reorders traversal like an interchange of the controlling loops;
* each applied unroll-and-jam must not reverse any dependence when the
  jammed copies interleave, and the unrolled trip count must divide by
  the factor (no epilogue is generated, so a remainder would drop
  iterations).
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.analysis.deps import (
    Permutation,
    Tiling,
    UnrollJam,
    analyze_nest,
    nest_dependences,
)
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import AffineRef, RegisterRef
from repro.compiler.ir.stmts import Statement
from repro.compiler.verify.diagnostics import (
    WARNING,
    Diagnostic,
    describe_node,
    node_path,
)

__all__ = ["verify_legality"]

_ANALYSIS = "legality"


def verify_legality(
    program: Program,
    report=None,
    baseline: Optional[Program] = None,
) -> list[Diagnostic]:
    """Run the legality audit; return the diagnostics.

    ``report`` is the :class:`~repro.compiler.optimizer
    .OptimizationReport` for ``program``; ``baseline`` is the
    pre-transform program (a fresh instantiation or a clone taken
    before optimizing).  Without them only the program-only scalar
    replacement checks run.
    """
    diagnostics: list[Diagnostic] = []
    _check_scalar_replacement(program, diagnostics)
    if report is not None and baseline is not None:
        _replay_audit(program, report, baseline, diagnostics)
    return diagnostics


# ----------------------------------------------------------------------
# scalar replacement (program-only)


def _check_scalar_replacement(
    program: Program, diagnostics: list[Diagnostic]
) -> None:
    _scan_scalar(program, program.body, [], diagnostics)


def _scan_scalar(
    program: Program,
    nodes: list[Node],
    ancestors: list[Loop],
    diagnostics: list[Diagnostic],
) -> None:
    for position, node in enumerate(nodes):
        if not isinstance(node, Loop):
            continue
        if node.is_innermost:
            _check_promotions(
                program, node, nodes, position, ancestors, diagnostics
            )
        _scan_scalar(
            program, node.body, ancestors + [node], diagnostics
        )


def _check_promotions(
    program: Program,
    inner: Loop,
    siblings: list[Node],
    position: int,
    ancestors: list[Loop],
    diagnostics: list[Diagnostic],
) -> None:
    promoted_reads: dict[AffineRef, None] = {}
    promoted_writes: dict[AffineRef, None] = {}
    for statement in inner.statements():
        for ref in statement.reads:
            if isinstance(ref, RegisterRef):
                _check_invariant(
                    program, ref, inner, ancestors, diagnostics
                )
                if isinstance(ref.original, AffineRef):
                    promoted_reads[ref.original] = None
        for ref in statement.writes:
            if isinstance(ref, RegisterRef):
                _check_invariant(
                    program, ref, inner, ancestors, diagnostics
                )
                if isinstance(ref.original, AffineRef):
                    promoted_writes[ref.original] = None

    before = siblings[:position]
    after = siblings[position + 1:]
    for original in promoted_reads:
        if not _has_plain_access(before, original, want_read=True):
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS,
                    node_path(ancestors, inner)
                    + f" > {describe_node(original)}",
                    "promoted reference is read in registers but never "
                    "loaded before the loop",
                )
            )
    for original in promoted_writes:
        if not _has_plain_access(after, original, want_read=False):
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS,
                    node_path(ancestors, inner)
                    + f" > {describe_node(original)}",
                    "promoted reference is written in registers but never "
                    "stored after the loop",
                )
            )


def _check_invariant(
    program: Program,
    ref: RegisterRef,
    inner: Loop,
    ancestors: list[Loop],
    diagnostics: list[Diagnostic],
) -> None:
    original = ref.original
    if isinstance(original, AffineRef) and original.depends_on(inner.var):
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS,
                node_path(ancestors, inner)
                + f" > {describe_node(ref)}",
                f"scalar-replaced reference varies with the innermost "
                f"loop variable {inner.var!r}: one register cannot hold "
                "every element the original touched",
            )
        )


def _has_plain_access(
    nodes: list[Node], original: AffineRef, want_read: bool
) -> bool:
    for node in nodes:
        if not isinstance(node, Statement):
            continue
        refs = node.reads if want_read else node.writes
        if any(ref == original for ref in refs):
            return True
    return False


# ----------------------------------------------------------------------
# replay audit against the baseline


def _replay_audit(
    program: Program,
    report,
    baseline: Program,
    diagnostics: list[Diagnostic],
) -> None:
    """Replay the pipeline's claims against the baseline.

    The baseline is *mutated*: a head whose interchange claim checks
    out is physically permuted before the tiling/unroll audits, because
    those transforms ran on the interchanged nest and their legality
    conditions are stated in that loop order.  Callers pass a private
    clone or fresh instantiation.
    """
    # Enumerate nest heads exactly as the optimizer did.  Only the
    # *enumeration* is shared with the optimizer; every legality fact
    # below is recomputed from the baseline's subscripts.
    from repro.compiler.optimizer import software_nest_heads
    from repro.compiler.regions.detect import detect_regions

    threshold = (
        report.regions.threshold if report.regions is not None else 0.5
    )
    detect_regions(baseline, threshold)

    # Fusion ran before the optimizer took its head list, so its audit
    # (which replays legal merges on the baseline) must run before ours.
    _audit_fusions(program, report, baseline, diagnostics)

    heads = list(software_nest_heads(baseline))

    transformed_paths = _var_paths(program)

    for name, results in (
        ("interchange", report.interchanges),
        ("skew", getattr(report, "skews", [])),
        ("tiling", report.tilings),
        ("unroll", report.unrolls),
    ):
        if results and len(results) != len(heads):
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS, "<program body>",
                    f"report lists {len(results)} {name} result(s) but "
                    f"the baseline has {len(heads)} software nest "
                    "head(s): report and program are out of sync",
                    severity=WARNING,
                )
            )

    for index, head in enumerate(heads):
        interchange = _result_at(report.interchanges, index)
        if interchange is not None and interchange.applied:
            ok = _audit_interchange(
                program, head, interchange, transformed_paths, diagnostics
            )
            if not ok:
                continue  # nest unrecognizable: later audits would lie
        skew = _result_at(getattr(report, "skews", []), index)
        if skew is not None and skew.applied:
            _audit_skew(program, head, skew, diagnostics)
        tiling = _result_at(report.tilings, index)
        if tiling is not None and tiling.applied:
            _audit_tiling(program, head, tiling, diagnostics)
        unroll = _result_at(report.unrolls, index)
        if unroll is not None and unroll.applied:
            _audit_unroll(program, head, unroll, diagnostics)


def _result_at(results, index: int):
    return results[index] if index < len(results) else None


def _nest_facts(head: Loop, limit: Optional[int] = None):
    """(chain, vars, relations) of the baseline nest under ``head``."""
    chain = head.perfect_nest_loops()
    if limit is not None:
        chain = chain[:limit]
    nest_vars = tuple(loop.var for loop in chain)
    deps = analyze_nest(chain)
    return chain, nest_vars, deps


def _audit_fusions(
    program: Program,
    report,
    baseline: Program,
    diagnostics: list[Diagnostic],
) -> None:
    """Re-prove every applied fusion from the baseline's subscripts and
    replay the merge so later audits see the optimizer's nests."""
    from repro.compiler.optimizer import software_regions
    from repro.compiler.transforms.fusion import fuse_pair

    applied = [
        f for f in getattr(report, "fusions", []) if f.applied
    ]
    if not applied:
        return
    regions = list(software_regions(baseline))
    for claim in applied:
        where = f"fusion {' > '.join(claim.fused_vars)}"
        if not 0 <= claim.region_index < len(regions):
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS, where,
                    f"report claims a fusion in region "
                    f"{claim.region_index} but the baseline has "
                    f"{len(regions)} software region(s)",
                    severity=WARNING,
                )
            )
            continue
        region = regions[claim.region_index]
        site = _locate_fusion(region, claim)
        if site is None:
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS, where,
                    f"report claims a fusion at path {claim.at} but the "
                    "baseline has no adjacent sibling nests there",
                    severity=WARNING,
                )
            )
            continue
        body, index = site
        reason = fuse_pair(
            body[index], body[index + 1], require_profit=False
        )
        if reason is None:
            # Legal: finish the merge (fuse_pair moves the statements,
            # the caller removes the absorbed shell) so the baseline's
            # nests line up with the optimizer's.
            del body[index + 1]
            continue
        if "fusion-preventing" in reason:
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS, where,
                    f"illegal fusion of nests at path {claim.at}: {reason}",
                )
            )
        else:
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS, where,
                    f"fusion claimed at path {claim.at} cannot be "
                    f"replayed on the baseline: {reason}",
                    severity=WARNING,
                )
            )


def _locate_fusion(region: Loop, claim):
    """The (body, index) where ``claim.at`` points at two sibling
    loops: the surviving nest and the one it absorbed."""
    body = region.body
    for index in claim.at[:-1]:
        if index >= len(body) or not isinstance(body[index], Loop):
            return None
        body = body[index].body
    index = claim.at[-1]
    if index + 1 >= len(body):
        return None
    if not isinstance(body[index], Loop) or not isinstance(
        body[index + 1], Loop
    ):
        return None
    return body, index


def _audit_interchange(
    program: Program,
    head: Loop,
    result,
    transformed_paths: list[tuple[str, ...]],
    diagnostics: list[Diagnostic],
) -> bool:
    """Audit one interchange claim; on success, permute the baseline
    chain so tiling/unroll audits see the order those transforms saw.
    Returns False when the nest could not even be matched."""
    where = f"nest {' > '.join(result.order_before)}"
    chain, nest_vars, deps = _nest_facts(
        head, limit=len(result.order_before)
    )
    if nest_vars != tuple(result.order_before):
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"report claims original order {result.order_before} but "
                f"the baseline nest is {nest_vars}",
                severity=WARNING,
            )
        )
        return False
    try:
        permutation = tuple(
            result.order_before.index(var) for var in result.order_after
        )
    except ValueError:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"order_after {result.order_after} is not a permutation "
                f"of order_before {result.order_before}",
            )
        )
        return False
    verdict = deps.legal(Permutation(permutation))
    if not verdict:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"illegal interchange {result.order_before} -> "
                f"{result.order_after}: a dependence direction vector "
                "becomes lexicographically negative "
                f"({verdict.reason})",
            )
        )
    if not any(
        _subsequence(result.order_after, path)
        for path in transformed_paths
    ):
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"report claims loop order {result.order_after} but no "
                "nest path in the transformed program matches it",
                severity=WARNING,
            )
        )
    _apply_permutation(chain, permutation)
    return True


def _apply_permutation(chain: list[Loop], permutation: tuple[int, ...]) -> None:
    """Re-seat the chain's control fields per ``permutation`` — the
    same mechanics interchange uses, applied to our private baseline so
    the tiling/unroll audits replay in the right loop order."""
    controls = [
        (loop.var, loop.lower, loop.upper, loop.step) for loop in chain
    ]
    for level, source in enumerate(permutation):
        variable, lower, upper, step = controls[source]
        chain[level].var = variable
        chain[level].lower = lower
        chain[level].upper = upper
        chain[level].step = step


def _audit_skew(
    program: Program, head: Loop, result, diagnostics: list[Diagnostic]
) -> None:
    """Re-apply the claimed skew to the baseline and demand the result
    be fully permutable — skewing never reorders iterations, so the
    only thing that can be wrong is the factor failing to unblock the
    tiling that followed it."""
    from repro.compiler.transforms.skew import skew_chain

    chain, nest_vars, _ = _nest_facts(head)
    where = f"nest {' > '.join(nest_vars)}"
    if (
        len(chain) != 2
        or result.wrt_var != chain[0].var
        or result.skewed_var != chain[1].var
    ):
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"report claims a skew of {result.skewed_var!r} with "
                f"respect to {result.wrt_var!r} but the baseline nest "
                f"is {nest_vars}",
                severity=WARNING,
            )
        )
        return
    skew_chain(chain, result.factor)
    verdict = nest_dependences(head).legal(Tiling())
    if not verdict:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"skew of {result.skewed_var!r} by factor "
                f"{result.factor} does not make the nest fully "
                f"permutable ({verdict.reason})",
            )
        )


def _audit_tiling(
    program: Program, head: Loop, result, diagnostics: list[Diagnostic]
) -> None:
    chain, nest_vars, deps = _nest_facts(head)
    where = f"nest {' > '.join(nest_vars)}"
    verdict = deps.legal(Tiling())
    if not verdict:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"tiling (tile {result.tile_size}) applied to a nest "
                "that is not fully permutable "
                f"({verdict.reason})",
            )
        )


def _audit_unroll(
    program: Program, head: Loop, result, diagnostics: list[Diagnostic]
) -> None:
    chain, nest_vars, _ = _nest_facts(head)
    where = f"nest {' > '.join(nest_vars)}"
    if result.variable not in nest_vars:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"report claims unroll of {result.variable!r} but the "
                f"baseline nest is {nest_vars}",
                severity=WARNING,
            )
        )
        return
    position = nest_vars.index(result.variable)
    unrolled = chain[position]
    statements = list(unrolled.all_statements())
    deps = analyze_nest(chain[position:], statements)
    verdict = deps.legal(UnrollJam(level=0))
    if not verdict:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"unroll-and-jam of {result.variable!r} by "
                f"{result.factor} carries a dependence on the unrolled "
                f"variable ({verdict.reason})",
            )
        )
    trip = unrolled.trip_count_estimate()
    if result.factor and trip % result.factor:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, where,
                f"unroll factor {result.factor} does not divide the "
                f"trip count {trip}: iterations would be dropped "
                "(no epilogue is generated)",
            )
        )


# ----------------------------------------------------------------------
# helpers


def _var_paths(program: Program) -> list[tuple[str, ...]]:
    """Every root-to-innermost loop-variable path of ``program``."""
    paths: list[tuple[str, ...]] = []

    def visit(nodes: list[Node], prefix: tuple[str, ...]) -> None:
        for node in nodes:
            if not isinstance(node, Loop):
                continue
            path = prefix + (node.var,)
            if node.is_innermost:
                paths.append(path)
            else:
                visit(node.body, path)

    visit(program.body, ())
    return paths


def _subsequence(needle: tuple[str, ...], haystack: tuple[str, ...]) -> bool:
    iterator = iter(haystack)
    return all(var in iterator for var in needle)

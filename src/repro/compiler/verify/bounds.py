"""Analysis 3: interval-based in-bounds proof for affine accesses.

Propagates loop-bound intervals through the nest and proves every
affine subscript stays inside the array's logical extents — including
the shapes transforms create: ``MinExpr`` uppers from tiling, the
``i+k`` shifted copies unroll-and-jam jams into the inner body, and
padded/permuted storage layouts (checked separately via the allocated
footprint, since logical in-bounds only implies storage in-bounds when
the layout arithmetic is itself consistent).

The loop-variable interval is deliberately sharper than
``[lower, upper-1]`` when the step exceeds one: an unrolled loop with
constant lower bound and ``step == factor`` only reaches
``lower + floor((upper-1-lower)/step)*step``, and the jammed copies
``i+1 .. i+factor-1`` are in bounds only because of that gap.

Zero-trip reasoning is shared with the marker verifier
(:func:`definitely_executes`): for affine bounds the trip count is
evaluated as the interval of the *difference* ``upper - lower``, which
keeps correlated bounds exact — ``min(N, tt+T) - tt`` is at least
``min(N - tt, T)``, not the uncorrelated interval difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.compiler.ir.expr import AffineExpr, MaxExpr, MinExpr
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import AffineRef, ArrayDecl, IndexedRef, RegisterRef
from repro.compiler.ir.stmts import Statement
from repro.compiler.verify.diagnostics import (
    WARNING,
    Diagnostic,
    describe_node,
    node_path,
)

__all__ = [
    "Interval",
    "verify_bounds",
    "eval_interval",
    "loop_var_interval",
    "definitely_executes",
]

_ANALYSIS = "bounds"


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def shift(self, offset: int) -> "Interval":
        return Interval(self.lo + offset, self.hi + offset)

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


Env = Mapping[str, Interval]


def eval_interval(expr: AffineExpr, env: Env) -> Optional[Interval]:
    """Interval of an affine expression, or None if a variable is
    unbound (a scope error the structure pass reports separately)."""
    lo = hi = expr.const
    for name, coeff in expr.terms.items():
        bound = env.get(name)
        if bound is None:
            return None
        if coeff >= 0:
            lo += coeff * bound.lo
            hi += coeff * bound.hi
        else:
            lo += coeff * bound.hi
            hi += coeff * bound.lo
    return Interval(lo, hi)


def _upper_interval(loop: Loop, env: Env) -> Optional[Interval]:
    if isinstance(loop.upper, MinExpr):
        operands = [eval_interval(op, env) for op in loop.upper.operands]
        if any(op is None for op in operands):
            return None
        return Interval(
            min(op.lo for op in operands), min(op.hi for op in operands)
        )
    return eval_interval(loop.upper, env)


def _lower_interval(loop: Loop, env: Env) -> Optional[Interval]:
    if isinstance(loop.lower, MaxExpr):
        operands = [eval_interval(op, env) for op in loop.lower.operands]
        if any(op is None for op in operands):
            return None
        return Interval(
            max(op.lo for op in operands), max(op.hi for op in operands)
        )
    return eval_interval(loop.lower, env)


def trip_interval_lo(loop: Loop, env: Env) -> Optional[int]:
    """A lower bound on ``upper - lower`` that keeps correlated
    variables exact by subtracting *symbolically* first.

    ``min(..) - max(..)`` distributes into pairwise differences:
    the trip count is at least ``min over (U_i - L_j)``.
    """
    uppers = (
        loop.upper.operands
        if isinstance(loop.upper, MinExpr)
        else (loop.upper,)
    )
    lowers = (
        loop.lower.operands
        if isinstance(loop.lower, MaxExpr)
        else (loop.lower,)
    )
    lows = []
    for up in uppers:
        for low in lowers:
            diff = eval_interval(up - low, env)
            if diff is None:
                return None
            lows.append(diff.lo)
    return min(lows)


def definitely_executes(loop: Loop, env: Env) -> bool:
    """Provably at least one iteration under every binding in ``env``."""
    lo = trip_interval_lo(loop, env)
    return lo is not None and lo >= 1


def loop_var_interval(loop: Loop, env: Env) -> Optional[Interval]:
    """Interval of the loop variable's iterates, or None when the
    bounds are unanalyzable or the loop provably never runs."""
    lower = _lower_interval(loop, env)
    upper = _upper_interval(loop, env)
    if lower is None or upper is None:
        return None
    if upper.hi <= lower.lo:
        return None  # provably zero-trip: body unreachable
    if loop.step == 1 or lower.lo != lower.hi:
        hi = upper.hi - 1
    else:
        # Constant lower bound: the last iterate is exactly
        # lower + floor((upper-1-lower)/step)*step (the unroll case).
        hi = lower.lo + ((upper.hi - 1 - lower.lo) // loop.step) * loop.step
    return Interval(lower.lo, max(hi, lower.lo))


#: Per-variable symbolic loop bounds: (inclusive lower candidates,
#: exclusive upper candidates).  Max lowers / Min uppers contribute one
#: candidate per operand; any single candidate is a sound bound.
SymBounds = Mapping[str, tuple[tuple[AffineExpr, ...], tuple[AffineExpr, ...]]]


def verify_bounds(program: Program) -> list[Diagnostic]:
    """Prove every affine access in bounds; return the diagnostics."""
    diagnostics: list[Diagnostic] = []
    for decl in program.arrays.values():
        _check_footprint(program, decl, diagnostics)
    _walk(program, program.body, [], {}, {}, diagnostics)
    return diagnostics


def _check_footprint(
    program: Program, decl: ArrayDecl, diagnostics: list[Diagnostic]
) -> None:
    """The max-index corner must address inside the allocation —
    the layout/padding arithmetic invariant behind every other proof."""
    try:
        corner = decl.offset_of([extent - 1 for extent in decl.shape])
        allocated = decl.footprint_bytes // decl.element_size
    except (ValueError, IndexError) as exc:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, f"array {decl.name}",
                f"layout arithmetic failed: {exc}",
            )
        )
        return
    if corner >= allocated:
        diagnostics.append(
            Diagnostic(
                program.name, _ANALYSIS, f"array {decl.name}",
                f"max-index corner offsets to element {corner} but only "
                f"{allocated} elements are allocated (dim_order "
                f"{decl.dim_order}, pad {decl.pad})",
            )
        )


def _bound_operands(
    loop: Loop,
) -> tuple[tuple[AffineExpr, ...], tuple[AffineExpr, ...]]:
    lowers = (
        loop.lower.operands
        if isinstance(loop.lower, MaxExpr)
        else (loop.lower,)
    )
    uppers = (
        loop.upper.operands
        if isinstance(loop.upper, MinExpr)
        else (loop.upper,)
    )
    return lowers, uppers


def _walk(
    program: Program,
    nodes: list[Node],
    ancestors: list[Loop],
    env: dict[str, Interval],
    symbolic: dict[str, tuple[tuple[AffineExpr, ...], tuple[AffineExpr, ...]]],
    diagnostics: list[Diagnostic],
) -> None:
    for node in nodes:
        if isinstance(node, Loop):
            iterates = loop_var_interval(node, env)
            if iterates is None:
                lower = _lower_interval(node, env)
                upper = _upper_interval(node, env)
                if lower is not None and upper is not None:
                    diagnostics.append(
                        Diagnostic(
                            program.name, _ANALYSIS,
                            node_path(ancestors, node),
                            f"loop provably never executes (lower "
                            f"{lower!r}, upper {upper!r})",
                            severity=WARNING,
                        )
                    )
                continue  # unanalyzable or unreachable body
            if node.var in env:
                continue  # shadowing: structure pass reports it
            env[node.var] = iterates
            symbolic[node.var] = _bound_operands(node)
            _walk(
                program, node.body, ancestors + [node], env, symbolic,
                diagnostics,
            )
            del env[node.var]
            del symbolic[node.var]
        elif isinstance(node, Statement):
            for ref in node.references:
                _check_reference(
                    program, ref, node, ancestors, env, symbolic,
                    diagnostics,
                )


def _check_reference(
    program: Program,
    ref,
    statement: Statement,
    ancestors: list[Loop],
    env: Env,
    symbolic: SymBounds,
    diagnostics: list[Diagnostic],
) -> None:
    if isinstance(ref, RegisterRef):
        ref = ref.original
    if isinstance(ref, IndexedRef):
        # The index load is an affine access we can prove; the data
        # access depends on run-time values (that is what makes the
        # reference non-analyzable) and is range-checked dynamically.
        _check_affine(
            program, ref.index, statement, ancestors, env, symbolic,
            diagnostics,
        )
        return
    if isinstance(ref, AffineRef):
        _check_affine(
            program, ref, statement, ancestors, env, symbolic, diagnostics
        )


_SUBST_DEPTH = 4


def _symbolic_side(
    expr: AffineExpr,
    side: str,
    env: Env,
    symbolic: SymBounds,
    depth: int = 0,
) -> Optional[int]:
    """Sharpest provable ``lo``/``hi`` of ``expr``, substituting loop
    variables by their *symbolic* bounds so correlated variables cancel
    (a skewed subscript ``i - f*t`` with ``i in [f*t, n+f*t)`` is exact
    even though the plain interval product is not)."""
    value = eval_interval(expr, env)
    best = None if value is None else (
        value.lo if side == "lo" else value.hi
    )
    if depth >= _SUBST_DEPTH:
        return best
    for name in sorted(expr.variables):
        bounds = symbolic.get(name)
        if bounds is None:
            continue
        lowers, uppers = bounds
        if all(low.is_constant for low in lowers) and all(
            up.is_constant for up in uppers
        ):
            continue  # plain interval already exact for this variable
        coeff = expr.coefficient(name)
        if (coeff > 0) == (side == "lo"):
            candidates = lowers
        else:
            candidates = tuple(up - 1 for up in uppers)
        for candidate in candidates:
            bound = _symbolic_side(
                expr.substitute(name, candidate), side, env, symbolic,
                depth + 1,
            )
            if bound is None:
                continue
            if best is None:
                best = bound
            else:
                best = max(best, bound) if side == "lo" else min(best, bound)
    return best


def _check_affine(
    program: Program,
    ref: AffineRef,
    statement: Statement,
    ancestors: list[Loop],
    env: Env,
    symbolic: SymBounds,
    diagnostics: list[Diagnostic],
) -> None:
    if len(ref.subscripts) != ref.array.rank:
        return  # structure pass reports the rank mismatch
    for dim, subscript in enumerate(ref.subscripts):
        value = eval_interval(subscript, env)
        if value is None:
            continue  # out-of-scope variable: structure pass reports it
        extent = ref.array.shape[dim]
        lo: Optional[int] = value.lo
        hi: Optional[int] = value.hi
        if value.lo < 0:
            lo = _symbolic_side(subscript, "lo", env, symbolic)
        if value.hi > extent - 1:
            hi = _symbolic_side(subscript, "hi", env, symbolic)
        if lo is None or hi is None or lo < 0 or hi > extent - 1:
            diagnostics.append(
                Diagnostic(
                    program.name, _ANALYSIS,
                    node_path(ancestors, statement)
                    + f" > {describe_node(ref)}",
                    f"subscript {dim} ({subscript!r}) spans {value!r} "
                    f"but dimension extent is {extent}",
                )
            )

"""Registry-wide lint driver behind ``python -m repro lint``.

For every benchmark two variants are verified:

* **base** — the program exactly as the workload builder wrote it
  (structure and bounds must hold before any tool touches it);
* **selective** — the program after marker insertion *and* the full
  locality-optimization pipeline, the order the experiment drivers use
  (:func:`repro.core.versions.prepare_codes`), verified with all four
  analyses including the legality replay against a pristine baseline.

Lint is purely static: no traces are generated and no simulation runs,
so linting the whole suite costs a fraction of a single benchmark run
(tracked as the ``verify`` entry of ``BENCH_sweep.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.compiler.optimizer import LocalityOptimizer
from repro.compiler.regions.markers import insert_markers
from repro.compiler.verify.program import verify_program
from repro.compiler.verify.diagnostics import Diagnostic, VerifyReport
from repro.params import base_config
from repro.workloads.base import Scale
from repro.workloads.registry import all_specs, get_spec

__all__ = ["LintRow", "lint_registry", "render_lint"]


@dataclass
class LintRow:
    """Verification outcome of one benchmark variant."""

    benchmark: str
    variant: str  # "base" | "selective"
    report: VerifyReport
    markers: int = 0

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return self.report.diagnostics

    def status(self, strict: bool = False) -> str:
        if self.report.ok(strict=True):
            return "ok"
        if self.report.ok(strict=strict):
            return "warn"
        return "FAIL"


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    rows: list[LintRow] = field(default_factory=list)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for row in self.rows for d in row.diagnostics]

    def ok(self, strict: bool = False) -> bool:
        return all(row.report.ok(strict) for row in self.rows)


def lint_benchmark(name: str, scale: Scale) -> list[LintRow]:
    """Verify the base and optimized+marked variants of one benchmark."""
    spec = get_spec(name)
    machine = base_config().scaled(scale.machine_divisor)

    base_program = spec.instantiate(scale)
    base_report = verify_program(base_program)
    rows = [LintRow(name, "base", base_report)]

    selective = spec.instantiate(scale)
    insert_markers(selective)
    baseline = selective.clone()
    optimization = LocalityOptimizer(machine).optimize(selective)
    selective_report = verify_program(
        selective, report=optimization, baseline=baseline
    )
    rows.append(
        LintRow(
            name,
            "selective",
            selective_report,
            markers=len(selective.markers()),
        )
    )
    return rows


def lint_registry(
    scale: Scale, names: Optional[Sequence[str]] = None
) -> LintResult:
    """Lint every benchmark (or the given subset) at ``scale``."""
    result = LintResult()
    for name in names or [spec.name for spec in all_specs()]:
        result.rows.extend(lint_benchmark(name, scale))
    return result


def render_lint(result: LintResult, strict: bool = False) -> str:
    """Human-readable lint table plus every diagnostic."""
    lines = [
        f"{'benchmark':<10} {'variant':<10} {'status':<7} "
        f"{'refs':>6} {'markers':>8} {'nests':>6}  findings"
    ]
    for row in result.rows:
        report = row.report
        findings = (
            ", ".join(
                f"{count} {analysis}"
                for analysis, count in sorted(report.by_analysis().items())
            )
            or "-"
        )
        lines.append(
            f"{row.benchmark:<10} {row.variant:<10} "
            f"{row.status(strict):<7} {report.refs_checked:>6} "
            f"{row.markers:>8} {report.nests_audited:>6}  {findings}"
        )
    for diagnostic in result.diagnostics:
        lines.append(str(diagnostic))
    checked = len(result.rows)
    verdict = "clean" if result.ok(strict) else "FAILED"
    mode = " (strict)" if strict else ""
    lines.append(
        f"{checked} program variant(s) verified{mode}: {verdict}, "
        f"{len(result.diagnostics)} diagnostic(s)"
    )
    return "\n".join(lines)

"""Diagnostics shared by every verifier pass.

A :class:`Diagnostic` names the program, the analysis that fired, the
offending node (as a human-readable path through the loop nest), and
what went wrong — enough for a developer to find and fix the bug
without re-running anything.  :class:`VerifyReport` aggregates the
diagnostics of all passes over one program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.pretty import format_reference
from repro.compiler.ir.refs import Reference
from repro.compiler.ir.stmts import MarkerStmt, Statement

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "VerificationError",
    "VerifyReport",
    "describe_node",
    "node_path",
]

#: Severities.  Errors are correctness violations; warnings are
#: efficiency or consistency findings (e.g. a removable marker) that
#: only fail a run under ``--strict``.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis on one node."""

    program: str
    analysis: str  # "structure" | "markers" | "bounds" | "legality"
    node: str  # human-readable path, e.g. "loop j > loop i > stmt cu"
    message: str
    severity: str = ERROR

    def __str__(self) -> str:
        return (
            f"{self.program}: [{self.analysis}] {self.severity} at "
            f"{self.node}: {self.message}"
        )


@dataclass
class VerifyReport:
    """Everything the verifier found in one program."""

    program_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Cheap coverage stats, filled by ``verify_program``.
    refs_checked: int = 0
    markers_checked: int = 0
    nests_audited: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    def ok(self, strict: bool = False) -> bool:
        """No errors (and, under ``strict``, no warnings either)."""
        if strict:
            return not self.diagnostics
        return not self.errors

    def by_analysis(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.analysis] = (
                counts.get(diagnostic.analysis, 0) + 1
            )
        return counts

    def summary(self) -> str:
        if not self.diagnostics:
            return (
                f"{self.program_name}: clean ({self.refs_checked} refs, "
                f"{self.markers_checked} markers, "
                f"{self.nests_audited} nests audited)"
            )
        parts = ", ".join(
            f"{count} {name}" for name, count in sorted(self.by_analysis().items())
        )
        return (
            f"{self.program_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) ({parts})"
        )


class VerificationError(Exception):
    """Raised by ``LocalityOptimizer.optimize(verify=True)`` on errors."""

    def __init__(self, report: VerifyReport):
        self.report = report
        lines = [report.summary()]
        lines.extend(str(d) for d in report.errors[:10])
        super().__init__("\n".join(lines))


def describe_node(node: Node | Reference) -> str:
    """A short stable description of one IR node."""
    if isinstance(node, Loop):
        return f"loop {node.var}"
    if isinstance(node, Statement):
        return f"stmt {node.label or 'stmt'}"
    if isinstance(node, MarkerStmt):
        return f"marker HW_{node.kind.upper()}"
    if isinstance(node, Reference):
        return f"ref {format_reference(node)}"
    return repr(node)


def node_path(ancestors: list[Loop], node: Node | Reference | None = None) -> str:
    """``loop j > loop i > stmt cu`` — the path from the program root."""
    parts = [f"loop {loop.var}" for loop in ancestors]
    if node is not None:
        described = describe_node(node)
        if not (parts and parts[-1] == described):
            parts.append(described)
    return " > ".join(parts) if parts else "<program body>"

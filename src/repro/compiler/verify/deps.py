"""The ``deps`` lint pass: per-nest dependence-relation summaries.

``repro lint --deps`` renders, for every software nest the optimizer
would transform, what the dependence engine in
:mod:`repro.compiler.analysis.deps` proved about it *before* any loop
transform ran: how many (source, sink) relations there are, their kind
mix (flow/anti/output), how many carry a ``*`` direction (feasible
directions that disagree between expanded relations), and every
reference the engine refused to analyze, with the reason.

The pass also cross-references the optimizer's decisions: a nest that
received a transform while its merged relation set still contains a
``*`` level is flagged — the transform was proven legal on the
*expanded* relations, so it is sound, but the ``*`` marks exactly the
nests where the merged (human-readable) view under-constrains the
engine's real reasoning and deserves a second look.

The nests summarized here are the ones the optimizer actually saw: the
pre-head phases (region detection and fusion) are replayed on a private
instantiation so the head list lines up index-by-index with the
per-head result lists in the :class:`OptimizationReport`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.compiler.analysis.deps import ANY, NestDependences, nest_dependences

if False:  # typing only; runtime imports are lazy (import-cycle hygiene)
    from repro.workloads.base import Scale

__all__ = [
    "NestDepsSummary",
    "deps_summaries",
    "render_deps",
]


@dataclass
class NestDepsSummary:
    """What the engine knows about one optimizer-visible nest."""

    benchmark: str
    nest_vars: tuple[str, ...]
    relations: int  # merged (per source/sink pair) relation count
    kinds: Counter = field(default_factory=Counter)
    star_relations: int = 0  # merged relations with a '*' level
    unanalyzable: tuple = ()  # UnanalyzableRef, from the engine
    transforms: tuple[str, ...] = ()  # applied to this nest, in order
    fused: bool = False  # the nest is the product of a legal fusion

    @property
    def analyzable(self) -> bool:
        return not self.unanalyzable

    @property
    def flagged(self) -> bool:
        """A transform ran while merged relations still show ``*``."""
        return bool(self.star_relations) and bool(self.transforms)


def _summarize_nest(
    benchmark: str, nest_vars: tuple[str, ...], deps: NestDependences
) -> NestDepsSummary:
    merged = deps.merged()
    return NestDepsSummary(
        benchmark=benchmark,
        nest_vars=nest_vars,
        relations=len(merged),
        kinds=Counter(rel.kind for rel in merged),
        star_relations=sum(
            1 for rel in merged if ANY in rel.directions
        ),
        unanalyzable=tuple(deps.unanalyzable),
    )


def deps_summaries(
    scale: "Scale", names: Optional[Sequence[str]] = None
) -> list[NestDepsSummary]:
    """Engine summaries for every software nest of each benchmark."""
    # Imported here, not at module level: the verify facade loads this
    # module, and the optimizer/workload layers import the facade.
    from repro.compiler.optimizer import (
        LocalityOptimizer,
        software_nest_heads,
        software_regions,
    )
    from repro.compiler.regions.detect import detect_regions
    from repro.compiler.regions.markers import insert_markers
    from repro.compiler.transforms.fusion import fuse_region
    from repro.params import base_config
    from repro.workloads.registry import all_specs, get_spec

    machine = base_config().scaled(scale.machine_divisor)
    out: list[NestDepsSummary] = []
    for name in names or [spec.name for spec in all_specs()]:
        spec = get_spec(name)

        # Replay the optimizer's pre-head phases on a private copy so
        # the head enumeration matches the report's per-head lists.
        program = spec.instantiate(scale)
        insert_markers(program)
        optimizer = LocalityOptimizer(machine)
        detect_regions(program, optimizer.threshold)
        if optimizer.enable_fusion:
            for index, region in enumerate(software_regions(program)):
                fuse_region(region, index)
        heads = list(software_nest_heads(program))

        # The decisions, from an identical (deterministic) pipeline run.
        run = spec.instantiate(scale)
        insert_markers(run)
        report = optimizer.optimize(run)

        fused_vars = {
            f.fused_vars for f in report.fusions if f.applied
        }
        for index, head in enumerate(heads):
            chain = head.perfect_nest_loops()
            nest_vars = tuple(loop.var for loop in chain)
            summary = _summarize_nest(
                name, nest_vars, nest_dependences(head)
            )
            summary.fused = any(
                vars_ and set(vars_) <= set(nest_vars)
                for vars_ in fused_vars
            )
            applied = []
            for label, results in (
                ("interchange", report.interchanges),
                ("skew", report.skews),
                ("tile", report.tilings),
                ("unroll", report.unrolls),
            ):
                result = (
                    results[index] if index < len(results) else None
                )
                if result is not None and result.applied:
                    applied.append(label)
            summary.transforms = tuple(applied)
            out.append(summary)
    return out


def render_deps(summaries: list[NestDepsSummary]) -> str:
    """Human-readable per-nest dependence table plus detail lines."""
    lines = [
        f"{'benchmark':<10} {'nest':<16} {'rel':>4} {'flow':>5} "
        f"{'anti':>5} {'out':>4} {'star':>5}  transforms"
    ]
    details: list[str] = []
    for s in summaries:
        nest = " > ".join(s.nest_vars)
        applied = ", ".join(s.transforms) or "-"
        if s.fused:
            applied = "fused" + ("" if applied == "-" else ", " + applied)
        flag = " !" if s.flagged else ""
        mark = "" if s.analyzable else " ?"
        lines.append(
            f"{s.benchmark:<10} {nest:<16} {s.relations:>4} "
            f"{s.kinds.get('flow', 0):>5} {s.kinds.get('anti', 0):>5} "
            f"{s.kinds.get('output', 0):>4} {s.star_relations:>5}  "
            f"{applied}{flag}{mark}"
        )
        for bad in s.unanalyzable:
            details.append(
                f"{s.benchmark}: nest {nest}: unanalyzable "
                f"{bad.description}: {bad.reason}"
            )
        if s.flagged:
            details.append(
                f"{s.benchmark}: nest {nest}: transforms "
                f"({', '.join(s.transforms)}) applied while merged "
                "relations carry a '*' direction — legality was proven "
                "on the expanded relation set"
            )
    lines.extend(details)
    nests = len(summaries)
    analyzable = sum(1 for s in summaries if s.analyzable)
    relations = sum(s.relations for s in summaries)
    lines.append(
        f"{nests} nest(s): {relations} relation(s), "
        f"{analyzable}/{nests} fully analyzable, "
        f"{sum(1 for s in summaries if s.flagged)} flagged"
    )
    return "\n".join(lines)

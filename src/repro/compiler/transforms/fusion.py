"""Loop fusion and fission (loop distribution).

Fusion merges adjacent sibling perfect nests with identical bounds
into one nest, so values shared between their bodies are reused while
still cache-hot instead of after a full sweep — and the loop overhead
of the second nest disappears.  Legality comes from the cross-nest
question :func:`repro.compiler.analysis.deps.fusion_preventing`: the
merge is illegal exactly when some dependence from a first-nest
instance to a second-nest instance would have to flow backwards in the
fused iteration space.  Profitability is the paper's reuse argument:
the nests must share at least one array.

Only *whole* nests fuse (every level down to the statements), so the
perfect-nest shape downstream passes rely on — interchange, tiling,
unroll-and-jam all start from ``perfect_nest_loops`` — is preserved,
never torn into an imperfect nest that would rob them of depth.

Fission is the inverse: splitting one nest's statement list into two
sibling nests.  It breaks the dependences from a later statement to an
earlier one carried across iterations (a strictly positive direction
with the groups reversed), and is provided for completeness and as the
escape hatch a failed fusion experiment needs; the optimizer pipeline
does not apply it by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compiler.analysis.deps import (
    fission_preventing,
    fusion_preventing,
)
from repro.compiler.ir.expr import AffineExpr, var
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.refs import AffineRef, RegisterRef
from repro.compiler.ir.stmts import Statement

__all__ = [
    "FusionResult",
    "FissionResult",
    "fuse_region",
    "fuse_pair",
    "apply_fission",
]


@dataclass(frozen=True)
class FusionResult:
    """One attempted pairwise merge of adjacent sibling nests.

    ``at`` is the child-index path from the region head's body to the
    surviving (first) loop; the absorbed loop was its next sibling.
    The legality replay navigates the same path on the baseline, so
    results must be applied in emission order.
    """

    applied: bool
    region_index: int = -1
    at: tuple[int, ...] = ()
    fused_vars: tuple[str, ...] = ()
    depth: int = 0
    reason: str = ""


@dataclass(frozen=True)
class FissionResult:
    applied: bool
    split_vars: tuple[str, ...] = ()
    reason: str = ""


def fuse_region(region: Loop, region_index: int) -> list[FusionResult]:
    """Fuse what can be fused anywhere inside ``region``, in place."""
    results: list[FusionResult] = []
    _fuse_body(region.body, [], region_index, results)
    return results


def _fuse_body(
    body: list[Node],
    path: list[int],
    region_index: int,
    results: list[FusionResult],
) -> None:
    index = 0
    while index < len(body):
        node = body[index]
        if isinstance(node, Loop):
            while index + 1 < len(body) and isinstance(
                body[index + 1], Loop
            ):
                reason = fuse_pair(node, body[index + 1])
                chain_vars = tuple(
                    loop.var for loop in node.perfect_nest_loops()
                )
                results.append(
                    FusionResult(
                        reason is None,
                        region_index,
                        tuple(path + [index]),
                        chain_vars,
                        len(chain_vars),
                        reason or "fused",
                    )
                )
                if reason is not None:
                    break
                del body[index + 1]
            _fuse_body(node.body, path + [index], region_index, results)
        index += 1


def fusion_compatible(first: Loop, second: Loop) -> Optional[str]:
    """Structural reasons the nests cannot share one iteration space."""
    if not first.is_perfect_nest() or not second.is_perfect_nest():
        return "imperfect nest"
    chain1 = first.perfect_nest_loops()
    chain2 = second.perfect_nest_loops()
    if len(chain1) != len(chain2):
        return "mismatched nest depth"
    rename = {
        b.var: a.var
        for a, b in zip(chain1, chain2)
        if a.var != b.var
    }
    if set(rename) & set(rename.values()):
        # A source name is also a target (e.g. swapped (i,j)/(j,i)):
        # sequential substitution would cascade, so refuse.
        return "variable collision"
    for a, b in zip(chain1, chain2):
        if a.step != b.step:
            return "mismatched step"
        if a.preference != b.preference:
            return "mismatched region preference"
        if not isinstance(a.lower, AffineExpr) or not isinstance(
            a.upper, AffineExpr
        ):
            return "non-affine bounds"
        if not isinstance(b.lower, AffineExpr) or not isinstance(
            b.upper, AffineExpr
        ):
            return "non-affine bounds"
        if _renamed(b.lower, rename) != a.lower or _renamed(
            b.upper, rename
        ) != a.upper:
            return "mismatched bounds"
    return None


def fuse_pair(
    first: Loop, second: Loop, require_profit: bool = True
) -> Optional[str]:
    """Fuse ``second`` into ``first`` in place; reason string if not.

    The legality replay re-runs this on the baseline with
    ``require_profit=False`` — profitability is the optimizer's
    business, legality is the only thing the audit re-proves.
    """
    reason = fusion_compatible(first, second)
    if reason is not None:
        return reason
    chain1 = first.perfect_nest_loops()
    chain2 = second.perfect_nest_loops()
    rename = {
        b.var: a.var
        for a, b in zip(chain1, chain2)
        if a.var != b.var
    }
    stmts1 = list(chain1[-1].all_statements())
    stmts2 = list(chain2[-1].all_statements())
    reason = fusion_preventing(chain1, chain2, stmts1, stmts2, rename)
    if reason is not None:
        return reason
    arrays1 = _array_names(stmts1)
    arrays2 = _array_names(stmts2)
    if require_profit and not arrays1 & arrays2:
        return "no shared arrays (fusion not profitable)"
    for statement in stmts2:
        statement.reads = [
            _rename_ref(ref, rename) for ref in statement.reads
        ]
        statement.writes = [
            _rename_ref(ref, rename) for ref in statement.writes
        ]
    chain1[-1].body.extend(chain2[-1].body)
    return None


def _array_names(statements: list[Statement]) -> set[str]:
    names: set[str] = set()
    for statement in statements:
        for ref in statement.references:
            base = ref.original if isinstance(ref, RegisterRef) else ref
            name = base.array_name
            if name is not None:
                names.add(name)
    return names


def _renamed(expr: AffineExpr, rename: dict[str, str]) -> AffineExpr:
    for old, new in rename.items():
        expr = expr.substitute(old, var(new))
    return expr


def _rename_ref(ref, rename: dict[str, str]):
    if not rename:
        return ref
    if isinstance(ref, RegisterRef):
        original = _rename_ref(ref.original, rename)
        if original is ref.original:
            return ref
        return RegisterRef(original=original)
    if isinstance(ref, AffineRef) and any(
        ref.depends_on(old) for old in rename
    ):
        return AffineRef(
            ref.array,
            tuple(
                _renamed(subscript, rename)
                for subscript in ref.subscripts
            ),
        )
    return ref


def apply_fission(
    parent_body: list[Node], index: int, split: int
) -> FissionResult:
    """Split the nest at ``parent_body[index]`` after its ``split``-th
    innermost statement into two sibling nests, in place."""
    head = parent_body[index]
    if not isinstance(head, Loop) or not head.is_perfect_nest():
        return FissionResult(False, reason="not a perfect nest")
    chain = head.perfect_nest_loops()
    statements = chain[-1].statements()
    if not 0 < split < len(statements):
        return FissionResult(False, reason="split point out of range")
    first_group = statements[:split]
    second_group = statements[split:]
    reason = fission_preventing(chain, first_group, second_group)
    if reason is not None:
        return FissionResult(False, reason=reason)
    second: Node = None  # type: ignore[assignment]
    for loop in reversed(chain):
        body = list(second_group) if loop is chain[-1] else [second]
        second = Loop(
            var=loop.var,
            lower=loop.lower,
            upper=loop.upper,
            body=body,
            step=loop.step,
            preference=loop.preference,
        )
    chain[-1].body = list(first_group)
    parent_body.insert(index + 1, second)
    return FissionResult(
        True, tuple(loop.var for loop in chain)
    )

"""Loop skewing (Wolfe; Wolf & Lam [13]).

Skewing remaps the inner variable of a depth-2 nest as
``j' = j + f * t``: bounds become ``[lower + f*t, upper + f*t)`` and
every subscript substitutes ``j -> j' - f*t``.  The traversal order is
*unchanged* — skewing is always legal — but the dependence distances
transform as ``(d_t, d_j) -> (d_t, d_j + f * d_t)``, so a factor
``f >= max(-d_j / d_t)`` turns every backward inner component
non-negative and makes the nest fully permutable.  That is exactly
what time-iterated stencils need before tiling: the classic
``(1, -1)`` recurrence of a Gauss-Seidel sweep blocks tiling until a
skew of factor 1 rotates it to ``(1, 0)``.

Skewing is only applied when it *enables* a tiling that was otherwise
illegal: the nest must pass every profitability precondition of
:func:`repro.compiler.transforms.tiling.apply_tiling` (footprint,
reuse, trip counts), must not already be fully permutable, and the
engine must find a finite factor.  The skewed bounds are affine in the
outer variable; the tiling pass strips them over their bounding box.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.analysis.deps import nest_dependences
from repro.compiler.ir.expr import var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef, RegisterRef

__all__ = ["apply_skew", "SkewResult", "skew_chain", "MAX_SKEW_FACTOR"]

#: Beyond this the skewed bounding box (and the wasted empty tile
#: intersections) grow out of proportion to the locality win.
MAX_SKEW_FACTOR = 4


@dataclass(frozen=True)
class SkewResult:
    applied: bool
    factor: int = 0
    skewed_var: str = ""
    wrt_var: str = ""
    reason: str = ""


def skew_chain(chain: list[Loop], factor: int) -> None:
    """Skew ``chain[1]`` by ``factor`` with respect to ``chain[0]``,
    in place: mechanical part only, no legality or profit checks.

    Shared with the legality replay, which re-applies the claimed skew
    to the baseline and re-derives everything from the result.
    """
    outer, inner = chain[0], chain[1]
    shift = var(outer.var) * factor
    inner.lower = inner.lower + shift
    inner.upper = inner.upper + shift
    replacement = var(inner.var) - shift
    for statement in inner.all_statements():
        statement.reads = [
            _substitute(ref, inner.var, replacement)
            for ref in statement.reads
        ]
        statement.writes = [
            _substitute(ref, inner.var, replacement)
            for ref in statement.writes
        ]


def _substitute(ref, variable: str, replacement):
    if isinstance(ref, RegisterRef):
        original = _substitute(ref.original, variable, replacement)
        if original is ref.original:
            return ref
        return RegisterRef(original=original)
    if isinstance(ref, AffineRef) and ref.depends_on(variable):
        return AffineRef(
            ref.array,
            tuple(
                subscript.substitute(variable, replacement)
                for subscript in ref.subscripts
            ),
        )
    return ref


def apply_skew(nest_head: Loop, l1_bytes: int) -> SkewResult:
    """Skew the nest at ``nest_head`` in place when that makes an
    otherwise-illegal, otherwise-profitable tiling legal."""
    from repro.compiler.transforms.tiling import tiling_blockers

    chain = nest_head.perfect_nest_loops()
    if len(chain) != 2:
        return SkewResult(False, reason="only depth-2 nests are skewed")
    blocker = tiling_blockers(nest_head, l1_bytes)
    if blocker is not None:
        return SkewResult(
            False, reason=f"tiling would not pay off: {blocker}"
        )
    deps = nest_dependences(nest_head)
    if not deps.analyzable:
        bad = deps.unanalyzable[0]
        return SkewResult(
            False,
            reason=f"unanalyzable reference {bad.description}: "
            f"{bad.reason}",
        )
    if deps.fully_permutable():
        return SkewResult(
            False, reason="already fully permutable (tiling needs no skew)"
        )
    factor = deps.skew_factor(wrt=0, level=1)
    if factor is None or factor == 0:
        return SkewResult(
            False, reason="no skew factor restores full permutability"
        )
    if factor > MAX_SKEW_FACTOR:
        return SkewResult(
            False, reason=f"skew factor {factor} too large"
        )
    skew_chain(chain, factor)
    return SkewResult(
        True,
        factor=factor,
        skewed_var=chain[1].var,
        wrt_var=chain[0].var,
    )

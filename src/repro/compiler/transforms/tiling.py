"""Iteration-space tiling (Wolf & Lam [13]).

Tiles a perfect nest whose data footprint exceeds the L1 capacity so
the reused working set fits in cache.  Strip-mine-and-interchange: the
tiled levels get controlling loops of step ``tile`` outside the nest,
and the original loops shrink to ``[tt, min(upper, tt + tile))``.

Tiling is applied only when it can pay off: nest depth at least two,
constant bounds, a legal full permutation (tiling reorders traversal
like interchange does), and at least one reference with *temporal*
reuse carried by a non-innermost loop — without such reuse tiling only
adds loop overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.compiler.analysis.dependence import (
    distance_vectors,
    permutation_legal,
)
from repro.compiler.analysis.footprint import nest_footprint_bytes
from repro.compiler.ir.expr import MinExpr, var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef
from repro.compiler.ir.stmts import Statement

__all__ = ["apply_tiling", "TilingResult", "select_tile_size"]


@dataclass(frozen=True)
class TilingResult:
    applied: bool
    tile_size: int = 0
    tiled_vars: tuple[str, ...] = ()
    reason: str = ""


def select_tile_size(
    l1_bytes: int, statements: list[Statement], depth: int
) -> int:
    """Tile edge so the tile-local working set fits in a fraction of L1.

    For a depth-2 tile the working set is roughly
    ``arrays * tile^2 * element_size``; a safety factor of 2 leaves room
    for conflict misses within the tile.
    """
    arrays = {
        ref.array.name
        for statement in statements
        for ref in statement.references
        if isinstance(ref, AffineRef)
    }
    element = 8
    count = max(len(arrays), 1)
    budget = l1_bytes / (2 * count * element)
    tile = int(math.sqrt(budget)) if depth >= 2 else int(budget)
    # Round down to a power of two for friendly alignment; clamp.
    if tile < 4:
        return 4
    return 1 << (tile.bit_length() - 1)


def apply_tiling(nest_head: Loop, l1_bytes: int) -> TilingResult:
    """Tile the perfect nest rooted at ``nest_head`` in place."""
    chain = nest_head.perfect_nest_loops()
    if len(chain) < 2:
        return TilingResult(False, reason="nest depth < 2")
    innermost = chain[-1]
    if not innermost.is_innermost:
        return TilingResult(False, reason="imperfect nest")
    if any(
        not loop.lower.is_constant
        or isinstance(loop.upper, MinExpr)
        or not loop.upper.is_constant
        for loop in chain
    ):
        return TilingResult(False, reason="non-constant bounds")

    statements = list(innermost.all_statements())
    footprint = nest_footprint_bytes(chain, statements)
    if footprint <= l1_bytes:
        return TilingResult(False, reason="footprint fits in L1")
    if not _has_outer_temporal_reuse(chain, statements):
        return TilingResult(False, reason="no outer-carried reuse")

    nest_vars = [loop.var for loop in chain]
    vectors = distance_vectors(nest_vars, statements)
    # Tiling reorders iterations like a permutation that brings tile
    # loops outward; require full permutability (all-zero or
    # all-non-negative distance vectors in every order).
    if vectors is None or not all(
        permutation_legal(vectors, perm)
        for perm in _rotations(len(chain))
    ):
        return TilingResult(False, reason="not fully permutable")

    tile = select_tile_size(l1_bytes, statements, len(chain))
    for loop in chain:
        if loop.trip_count_estimate() <= tile:
            return TilingResult(
                False, tile, reason="trip count not larger than tile"
            )

    # Strip-mine each level: collect controlling loops, innermost last.
    tile_loops = []
    for loop in chain:
        tile_var = loop.var + "__t"
        tile_loops.append(
            Loop(
                var=tile_var,
                lower=loop.lower,
                upper=loop.upper,
                body=[],
                step=tile,
            )
        )
        loop.lower = var(tile_var)
        loop.upper = MinExpr(loop.upper, var(tile_var) + tile)

    # Wire the tile loops around the original nest head by *re-seating*
    # the head: the outermost original loop object must stay in its
    # parent's body list, so it becomes the outermost tile loop and the
    # displaced control moves into a fresh Loop object.
    head = chain[0]
    inner_clone = Loop(
        var=head.var,
        lower=head.lower,
        upper=head.upper,
        body=head.body,
        step=head.step,
        preference=head.preference,
    )
    chain[0] = inner_clone
    outer = tile_loops[0]
    head.var = outer.var
    head.lower = outer.lower
    head.upper = outer.upper
    head.step = outer.step
    current = head
    for tile_loop in tile_loops[1:]:
        current.body = [tile_loop]
        current = tile_loop
    current.body = [inner_clone]

    return TilingResult(
        True,
        tile,
        tuple(loop.var for loop in chain),
        "tiled",
    )


def _has_outer_temporal_reuse(
    chain: list[Loop], statements: list[Statement]
) -> bool:
    """Some reference is invariant in a non-innermost loop variable."""
    outer_vars = [loop.var for loop in chain[:-1]]
    for statement in statements:
        for ref in statement.references:
            if isinstance(ref, AffineRef):
                for outer in outer_vars:
                    if not ref.depends_on(outer):
                        return True
    return False


def _rotations(count: int):
    """All rotations of the identity — a cheap full-permutability probe."""
    identity = tuple(range(count))
    for shift in range(count):
        yield identity[shift:] + identity[:shift]

"""Iteration-space tiling (Wolf & Lam [13]).

Tiles a perfect nest whose data footprint exceeds the L1 capacity so
the reused working set fits in cache.  Strip-mine-and-interchange: the
tiled levels get controlling loops of step ``tile`` outside the nest,
and the original loops shrink to ``[tt, min(upper, tt + tile))``.

Bounds may be affine in outer chain variables (the shape skewing
creates: ``i in [f*t, n + f*t)``): such a level is strip-mined over
its constant *bounding box*, and the inner loop clamps with
``max(lower, tt)`` / ``min(upper, tt + tile)``; empty tile/loop
intersections simply run zero iterations.

Tiling is applied only when it can pay off: nest depth at least two, a
legal full permutation of the relation set from
:mod:`repro.compiler.analysis.deps` (tiling reorders traversal like
interchange does), and at least one reference whose subscript matrix
is rank-deficient along a non-innermost direction — the generalized
"temporal reuse carried by an outer loop" test that also recognizes
skewed references like ``a[i - f*t]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compiler.analysis.deps import Tiling, nest_dependences
from repro.compiler.analysis.footprint import nest_footprint_bytes
from repro.compiler.ir.expr import AffineExpr, MaxExpr, MinExpr, var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef
from repro.compiler.ir.stmts import Statement
from repro.compiler.verify.bounds import Interval, loop_var_interval

__all__ = [
    "apply_tiling",
    "TilingResult",
    "select_tile_size",
    "tiling_blockers",
]


@dataclass(frozen=True)
class TilingResult:
    applied: bool
    tile_size: int = 0
    tiled_vars: tuple[str, ...] = ()
    reason: str = ""


def select_tile_size(
    l1_bytes: int, statements: list[Statement], depth: int
) -> int:
    """Tile edge so the tile-local working set fits in a fraction of L1.

    For a depth-2 tile the working set is roughly
    ``arrays * tile^2 * element_size``; a safety factor of 2 leaves room
    for conflict misses within the tile.
    """
    arrays = {
        ref.array.name
        for statement in statements
        for ref in statement.references
        if isinstance(ref, AffineRef)
    }
    element = 8
    count = max(len(arrays), 1)
    budget = l1_bytes / (2 * count * element)
    tile = int(math.sqrt(budget)) if depth >= 2 else int(budget)
    # Round down to a power of two for friendly alignment; clamp.
    if tile < 4:
        return 4
    return 1 << (tile.bit_length() - 1)


def _affine_bounds(chain: list[Loop]) -> bool:
    """Every bound a plain affine expression over outer chain vars."""
    seen: set[str] = set()
    for loop in chain:
        for bound in (loop.lower, loop.upper):
            if not isinstance(bound, AffineExpr):
                return False  # already tiled (Min/Max bounds)
            if bound.variables - seen:
                return False  # depends on a non-chain variable
        seen.add(loop.var)
    return True


def tiling_blockers(
    nest_head: Loop,
    l1_bytes: int,
    statements: Optional[list] = None,
    tile_size: Optional[int] = None,
) -> Optional[str]:
    """Why tiling cannot pay off here, ignoring legality — shared with
    the skewing gate (skewing is only worth it when the tiling it
    enables would be applied).  Returns None when no blocker.
    ``tile_size`` overrides the heuristic edge for the trip-count
    check (the model-driven search supplies its candidate here)."""
    chain = nest_head.perfect_nest_loops()
    if len(chain) < 2:
        return "nest depth < 2"
    innermost = chain[-1]
    if not innermost.is_innermost:
        return "imperfect nest"
    if not _affine_bounds(chain):
        return "non-constant bounds"
    if statements is None:
        statements = list(innermost.all_statements())
    footprint = nest_footprint_bytes(chain, statements)
    if footprint <= l1_bytes:
        return "footprint fits in L1"
    if not _has_outer_temporal_reuse(chain, statements):
        return "no outer-carried reuse"
    tile = tile_size or select_tile_size(l1_bytes, statements, len(chain))
    for loop in chain:
        if loop.trip_count_estimate() <= tile:
            return "trip count not larger than tile"
    return None


def apply_tiling(
    nest_head: Loop, l1_bytes: int, tile_size: Optional[int] = None
) -> TilingResult:
    """Tile the perfect nest rooted at ``nest_head`` in place.

    ``tile_size`` overrides the capacity heuristic of
    :func:`select_tile_size`; the model-driven search of
    :mod:`repro.analytic.tiles` passes its per-geometry choice here.
    Legality (full permutability of the dependence relations) is
    checked either way.
    """
    if tile_size is not None and tile_size < 2:
        raise ValueError(f"tile_size must be >= 2, got {tile_size}")
    chain = nest_head.perfect_nest_loops()
    statements = (
        list(chain[-1].all_statements()) if len(chain) >= 2 else []
    )
    blocker = tiling_blockers(nest_head, l1_bytes, statements, tile_size)
    if blocker is not None:
        tile = (
            tile_size
            or select_tile_size(l1_bytes, statements, len(chain))
            if blocker == "trip count not larger than tile"
            else 0
        )
        return TilingResult(False, tile, reason=blocker)

    # Tiling reorders iterations like a permutation that brings tile
    # loops outward; require full permutability of the relation set.
    verdict = nest_dependences(nest_head).legal(Tiling())
    if not verdict:
        return TilingResult(
            False, reason=f"not fully permutable: {verdict.reason}"
        )

    tile = tile_size or select_tile_size(l1_bytes, statements, len(chain))

    # Bounding boxes must be computed before any bound is rewritten.
    env: dict[str, Interval] = {}
    boxes: list[Interval] = []
    for loop in chain:
        interval = loop_var_interval(loop, env)
        if interval is None:
            return TilingResult(False, reason="unbounded iteration space")
        boxes.append(interval)
        env[loop.var] = interval

    # Strip-mine each level: collect controlling loops, innermost last.
    tile_loops = []
    for loop, box in zip(chain, boxes):
        tile_var = loop.var + "__t"
        constant = loop.lower.is_constant and loop.upper.is_constant
        tile_loops.append(
            Loop(
                var=tile_var,
                lower=loop.lower if constant else box.lo,
                upper=loop.upper if constant else box.hi + 1,
                body=[],
                step=tile,
            )
        )
        if constant:
            loop.lower = var(tile_var)
        else:
            loop.lower = MaxExpr(loop.lower, var(tile_var))
        loop.upper = MinExpr(loop.upper, var(tile_var) + tile)

    # Wire the tile loops around the original nest head by *re-seating*
    # the head: the outermost original loop object must stay in its
    # parent's body list, so it becomes the outermost tile loop and the
    # displaced control moves into a fresh Loop object.
    head = chain[0]
    inner_clone = Loop(
        var=head.var,
        lower=head.lower,
        upper=head.upper,
        body=head.body,
        step=head.step,
        preference=head.preference,
    )
    chain[0] = inner_clone
    outer = tile_loops[0]
    head.var = outer.var
    head.lower = outer.lower
    head.upper = outer.upper
    head.step = outer.step
    current = head
    for tile_loop in tile_loops[1:]:
        current.body = [tile_loop]
        current = tile_loop
    current.body = [inner_clone]

    return TilingResult(
        True,
        tile,
        tuple(loop.var for loop in chain),
        "tiled",
    )


def _has_outer_temporal_reuse(
    chain: list[Loop], statements: list[Statement]
) -> bool:
    """Some reference revisits elements along a non-innermost direction.

    A reference's subscript matrix M (rows = array dimensions, columns
    = nest variables) has temporal reuse exactly when its null space is
    non-trivial; the reuse is *outer-carried* when the null space is
    not confined to the innermost axis — i.e. some reuse direction
    moves an outer loop.  This generalizes "invariant in an outer
    variable" to skewed references like ``a[i - f*t]``.
    """
    nest_vars = [loop.var for loop in chain]
    depth = len(nest_vars)
    for statement in statements:
        for ref in statement.references:
            if not isinstance(ref, AffineRef):
                continue
            matrix = np.array(
                [
                    [subscript.coefficient(v) for v in nest_vars]
                    for subscript in ref.subscripts
                ],
                dtype=float,
            )
            rank = (
                int(np.linalg.matrix_rank(matrix)) if matrix.size else 0
            )
            if rank >= depth:
                continue  # injective: every iteration a fresh element
            if rank < depth - 1:
                return True  # kernel too big to fit the innermost axis
            # Kernel is one-dimensional: it lies along the innermost
            # axis iff the innermost column is entirely zero.
            if matrix.size and np.any(matrix[:, -1]):
                return True
    return False

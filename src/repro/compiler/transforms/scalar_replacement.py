"""Scalar replacement of inner-loop-invariant array references [4].

A reference whose subscripts do not involve the innermost loop variable
is loaded once before the loop (and, if written, stored once after it)
and lives in a register in between — the classic transformation for
reductions like the paper's example ``U[j] += V[j][i] * W[i][j]`` after
interchange, where ``U[j]`` is invariant in the new innermost ``i``.

IR mechanics: a prologue :class:`Statement` reading the reference is
inserted before the innermost loop, an epilogue store after it, and the
occurrences inside become :class:`RegisterRef` wrappers that execute to
no memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.refs import AffineRef, Reference, RegisterRef
from repro.compiler.ir.stmts import Statement

__all__ = ["apply_scalar_replacement", "ScalarReplacementResult"]

#: Registers available for promoted values (beyond normal allocation).
DEFAULT_REGISTER_BUDGET = 8


@dataclass
class ScalarReplacementResult:
    promoted: int = 0
    loops_transformed: int = 0


def apply_scalar_replacement(
    region: Loop, register_budget: int = DEFAULT_REGISTER_BUDGET
) -> ScalarReplacementResult:
    """Promote invariant references in every innermost loop of ``region``."""
    result = ScalarReplacementResult()
    _visit(region, result, register_budget)
    return result


def _visit(
    loop: Loop, result: ScalarReplacementResult, budget: int
) -> None:
    new_body: list[Node] = []
    for child in loop.body:
        if isinstance(child, Loop):
            if child.is_innermost:
                prologue, epilogue, promoted = _promote(child, budget)
                if promoted:
                    result.promoted += promoted
                    result.loops_transformed += 1
                new_body.extend(prologue)
                new_body.append(child)
                new_body.extend(epilogue)
                continue
            _visit(child, result, budget)
        new_body.append(child)
    loop.body = new_body


def _promote(
    inner: Loop, budget: int
) -> tuple[list[Statement], list[Statement], int]:
    """Compute prologue/epilogue and rewrite ``inner`` in place."""
    variable = inner.var
    candidates: dict[AffineRef, dict[str, bool]] = {}
    for statement in inner.statements():
        for ref in statement.reads:
            if _invariant_affine(ref, variable):
                candidates.setdefault(ref, {})["read"] = True
        for ref in statement.writes:
            if _invariant_affine(ref, variable):
                candidates.setdefault(ref, {})["written"] = True
    if not candidates:
        return [], [], 0

    # Deterministic order, bounded by the register budget.
    chosen = list(candidates.items())[:budget]
    replacement = {ref: RegisterRef(ref) for ref, _usage in chosen}

    for statement in inner.statements():
        statement.reads = [replacement.get(r, r) for r in statement.reads]
        statement.writes = [replacement.get(w, w) for w in statement.writes]

    prologue = []
    epilogue = []
    for ref, usage in chosen:
        if usage.get("read"):
            prologue.append(
                Statement(reads=[ref], work=0, label=f"load.{ref.array.name}")
            )
        if usage.get("written"):
            epilogue.append(
                Statement(
                    writes=[ref], work=0, label=f"store.{ref.array.name}"
                )
            )
    return prologue, epilogue, len(chosen)


def _invariant_affine(ref: Reference, variable: str) -> bool:
    return isinstance(ref, AffineRef) and not ref.depends_on(variable)

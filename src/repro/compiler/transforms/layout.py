"""Data (memory-layout) transformations (O'Boyle & Knijnenburg [12],
Kandemir et al. [5]) and array padding.

After interchange fixes the loop order, each array votes for the
storage order that makes its innermost-swept logical dimension the
fastest-varying one — the paper's Section 3.2 example assigns array
``V`` row-major and ``W`` column-major this way.  Votes are weighted by
the estimated iteration count of the voting nest; the winning dimension
is moved to the end of the array's ``dim_order``.

A reference abstains when it already has *effective* spatial locality
at the current layout: some enclosing loop sweeps it with a
sub-line stride **and** the data touched between consecutive iterations
of that loop fits comfortably in L1, so the line is still resident when
the reuse arrives.  (A component array ``V[d, n]`` swept by a short
inner ``d`` loop is the canonical case: its rows are consumed a few
bytes per ``n`` step and changing the layout cannot reduce line
traffic.)  Without this test the transformation "fixes" strides that
were never costing misses.

Layout is a *global* property of an array: all references everywhere
see the new addressing, which is always legal (only addresses change,
never values), but only software-analyzable nests get a vote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.analysis.classify import SOFTWARE
from repro.compiler.analysis.reuse import address_stride, preferred_fastest_dim
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import AffineRef

__all__ = [
    "choose_layouts",
    "apply_layouts",
    "apply_padding",
    "LayoutResult",
]


@dataclass
class LayoutResult:
    """Chosen storage orders and the votes that produced them."""

    chosen: dict[str, tuple[int, ...]] = field(default_factory=dict)
    votes: dict[str, dict[int, float]] = field(default_factory=dict)
    changed: list[str] = field(default_factory=list)


def choose_layouts(
    program: Program,
    line_size: int = 32,
    l1_size: int = 32 * 1024,
) -> LayoutResult:
    """Collect per-array fastest-dimension votes from software nests.

    Every *innermost* loop inside a software region votes exactly once
    (innermost loops inherit the region's preference from detection).
    """
    result = LayoutResult()
    l1_lines = max(l1_size // line_size, 1)

    def walk(nodes, ancestors: list[Loop]) -> None:
        for node in nodes:
            if not isinstance(node, Loop):
                continue
            chain = ancestors + [node]
            if node.preference == SOFTWARE and node.is_innermost:
                _vote_from_innermost(node, chain, line_size, l1_lines, result)
            walk(node.body, chain)

    walk(program.body, [])
    for name, votes in result.votes.items():
        array = program.arrays[name]
        if array.rank < 2 or not votes:
            continue
        winner = max(votes.items(), key=lambda item: item[1])[0]
        order = tuple(d for d in array.dim_order if d != winner) + (winner,)
        result.chosen[name] = order
    return result


def _vote_from_innermost(
    loop: Loop,
    chain: list[Loop],
    line_size: int,
    l1_lines: int,
    result: LayoutResult,
) -> None:
    """One innermost loop's votes, weighted by its trip count."""
    weight = float(max(loop.trip_count_estimate(), 1))
    statements = loop.statements()
    bytes_per_iter = sum(
        len(statement.references) * 8 for statement in statements
    )
    for statement in statements:
        for ref in statement.references:
            if not isinstance(ref, AffineRef) or ref.array.rank < 2:
                continue
            if _effective_spatial(
                ref, chain, bytes_per_iter, line_size, l1_lines
            ):
                continue  # current layout already serves this reference
            dim = preferred_fastest_dim(ref, loop.var)
            if dim is None:
                # The innermost loop does not move this reference; see
                # whether an enclosing loop does, and if so prefer that
                # dimension (the vpenta case: X[k, j] under innermost k
                # votes for dim 0 through k itself, handled above).
                continue
            votes = result.votes.setdefault(ref.array.name, {})
            votes[dim] = votes.get(dim, 0.0) + weight


def _effective_spatial(
    ref: AffineRef,
    chain: list[Loop],
    bytes_per_iter: int,
    line_size: int,
    l1_lines: int,
) -> bool:
    """Does ``ref`` already enjoy usable spatial locality?

    Walks the enclosing loops from innermost outwards.  A sub-line
    stride under loop v is *usable* when the data all references touch
    between two consecutive v-iterations (its reuse distance) occupies
    at most half of L1 — otherwise the line is gone before the next
    sliver is wanted.
    """
    inner_trip_product = 1
    lines_per_inner_iter = max(bytes_per_iter / line_size, 1.0)
    for loop in reversed(chain):
        stride = abs(address_stride(ref, loop.var))
        if 0 < stride < line_size:
            reuse_distance_lines = lines_per_inner_iter * inner_trip_product
            if reuse_distance_lines <= l1_lines / 2:
                return True
        inner_trip_product *= max(loop.trip_count_estimate(), 1)
    return False


def apply_padding(
    program: Program,
    line_size: int,
    l2_block_size: int = 128,
    element_size: int = 8,
    candidates: set[str] | None = None,
) -> list[str]:
    """Array padding for software-region arrays (intra- and inter-array).

    The "aggressive array padding" the paper's compiler applies, in two
    parts — both pure addressing changes, always legal:

    * **intra-array**: one cache line of extra elements on the
      fastest-varying extent, staggering successive rows/columns across
      cache sets.  Skipped when the fastest extent is small (a 3-wide
      component array would waste most of every line on pad).
    * **inter-array** (``base_skew``): dummy bytes between consecutive
      arrays so same-index elements of different arrays — which an
      aligned allocator would put in the same set of every cache level
      — are staggered by a few lines each.  This is what removes the
      cross-array conflict misses that loop and layout transformations
      cannot reach.

    ``candidates`` narrows the target set; the optimizer passes the
    arrays that collected layout votes, because a reference that
    abstained from layout voting (it already has effective spatial
    locality) is capacity- or compulsory-bound and padding cannot help
    it.  With ``candidates=None`` every rank >= 2 array referenced from
    a software region is considered.
    """
    pad_elements = max(line_size // element_size, 1)
    # The per-array skew must displace whole blocks of *every* cache
    # level: a skew smaller than an L2 block would leave same-index
    # elements of different arrays in the same L2 set even though their
    # L1 sets differ.  Three L1 lines plus one L2 block per array works
    # at both granularities.
    skew_unit = 3 * line_size + l2_block_size
    if candidates is not None:
        touched = set(candidates)
    else:
        touched = set()
        for loop in program.loops():
            if loop.preference != SOFTWARE:
                continue
            for statement in loop.all_statements():
                for ref in statement.references:
                    if isinstance(ref, AffineRef) and ref.array.rank >= 2:
                        touched.add(ref.array.name)
    padded: list[str] = []
    # Declaration order keeps the skews deterministic.
    skew_index = 0
    for name, array in program.arrays.items():
        if name not in touched:
            continue
        skew_index += 1
        changed = False
        if array.base_skew == 0:
            array.base_skew = skew_index * skew_unit
            changed = True
        fastest_extent = array.shape[array.dim_order[-1]]
        if array.pad == 0 and fastest_extent >= 8 * pad_elements:
            array.pad = pad_elements
            changed = True
        if changed:
            padded.append(name)
    return sorted(padded)


def apply_layouts(program: Program, result: LayoutResult) -> list[str]:
    """Mutate array declarations to the chosen orders; return changed names.

    In-place mutation is deliberate: every reference aliases the
    declaration object, so the whole program (hardware regions
    included) switches addressing consistently.
    """
    changed = []
    for name, order in result.chosen.items():
        array = program.arrays[name]
        if tuple(array.dim_order) != order:
            array.dim_order = order
            changed.append(name)
    result.changed = changed
    return changed

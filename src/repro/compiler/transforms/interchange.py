"""Loop interchange (Wolf & Lam [13]).

Chooses the loop permutation that minimizes cache lines touched per
innermost traversal, with temporal reuse weighted first — reproducing
the paper's Section 3.2 example where the ``i`` loop (carrying temporal
reuse of ``U[j]``) is moved innermost.

The ranking uses a *layout-agnostic* potential cost, because the data
transformation runs after interchange and will give stride-1 storage to
whatever dimension the chosen innermost variable sweeps:

* invariant reference → cost 1 (temporal reuse, a register-resident line);
* variable appears in exactly one subscript with a unit coefficient →
  cost ``trip * element / line`` (can be made spatial by layout);
* otherwise → cost ``trip`` (a new line every iteration).

Legality comes from the dependence-relation engine
(:mod:`repro.compiler.analysis.deps`): a permutation is applied only
when every relation's direction vector stays lexicographically
positive under it.  Only perfect nests with constant bounds are
considered (triangular nests would need bound rewriting, which the
paper's kernels do not require).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.compiler.analysis.deps import Permutation, nest_dependences
from repro.compiler.analysis.reuse import address_stride
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef
from repro.compiler.ir.stmts import Statement

__all__ = ["apply_interchange", "InterchangeResult", "potential_cost"]

_MAX_NEST_DEPTH = 4  # permutations enumerated exhaustively below this


@dataclass(frozen=True)
class InterchangeResult:
    """What interchange did to one nest."""

    applied: bool
    order_before: tuple[str, ...]
    order_after: tuple[str, ...]
    reason: str = ""


def potential_cost(
    statements: list[Statement],
    variable: str,
    trip: int,
    line_size: int,
) -> float:
    """Layout-agnostic lines-per-*iteration* estimate for ``variable``.

    Per-iteration (not per-traversal) costs keep the comparison about
    access structure: a 71- vs 72-trip difference between two loops
    must not decide the permutation.

    * invariant reference → ``1/trip`` (one line for the whole
      traversal — temporal reuse);
    * appears in exactly one subscript with a unit coefficient →
      ``element/line`` (layout can make it stride-1 spatial);
    * anything else → 1 line per iteration.
    """
    cost = 0.0
    trip = max(trip, 1)
    for statement in statements:
        for ref in statement.references:
            if isinstance(ref, AffineRef):
                dims = [
                    s.coefficient(variable)
                    for s in ref.subscripts
                    if s.coefficient(variable)
                ]
                if not dims:
                    cost += 1.0 / trip
                elif len(dims) == 1 and abs(dims[0]) == 1:
                    cost += ref.array.element_size / line_size
                else:
                    cost += 1.0
            elif not ref.analyzable:
                cost += 1.0
    return cost


def current_cost(
    statements: list[Statement],
    variable: str,
    trip: int,
    line_size: int,
) -> float:
    """Lines-per-iteration under the *current* layouts (the tiebreak)."""
    cost = 0.0
    trip = max(trip, 1)
    for statement in statements:
        for ref in statement.references:
            if isinstance(ref, AffineRef):
                stride = abs(address_stride(ref, variable))
                if stride == 0:
                    cost += 1.0 / trip
                elif stride < line_size:
                    cost += stride / line_size
                else:
                    cost += 1.0
            elif not ref.analyzable:
                cost += 1.0
    return cost


def apply_interchange(nest_head: Loop, line_size: int) -> InterchangeResult:
    """Permute the perfect nest rooted at ``nest_head`` in place."""
    chain = nest_head.perfect_nest_loops()
    original = tuple(loop.var for loop in chain)
    if len(chain) < 2:
        return InterchangeResult(False, original, original, "nest depth < 2")
    if len(chain) > _MAX_NEST_DEPTH:
        chain = chain[:_MAX_NEST_DEPTH]
        original = tuple(loop.var for loop in chain)
    if not _constant_bounds(chain):
        return InterchangeResult(
            False, original, original, "non-constant bounds"
        )
    innermost = chain[-1]
    statements = list(innermost.all_statements())
    if not statements:
        return InterchangeResult(False, original, original, "empty nest")

    nest_vars = [loop.var for loop in chain]
    deps = nest_dependences(nest_head, limit=len(chain))
    if not deps.analyzable:
        bad = deps.unanalyzable[0]
        return InterchangeResult(
            False,
            original,
            original,
            f"dependences not analyzable ({bad.description}: {bad.reason})",
        )

    # Primary key: layout-agnostic potential cost.  Tie-break: the cost
    # under the *current* layout — when layout could fix either
    # orientation, prefer the one that is already cheap, leaving the
    # data transformation free to serve other nests (this is what makes
    # the ADI column sweep interchange rather than fight the row sweep
    # over the array's layout).
    costs = {}
    for loop in chain:
        trip = max(loop.trip_count_estimate(), 1)
        costs[loop.var] = (
            potential_cost(statements, loop.var, trip, line_size),
            current_cost(statements, loop.var, trip, line_size),
        )

    best_perm: Optional[tuple[int, ...]] = None
    best_key: Optional[tuple] = None
    for perm in itertools.permutations(range(len(chain))):
        if not deps.legal(Permutation(perm)):
            continue
        # Innermost position dominates, then outward: lexicographic key.
        key = tuple(costs[nest_vars[perm[level]]] for level in
                    reversed(range(len(perm))))
        if best_key is None or key < best_key:
            best_key = key
            best_perm = perm
    if best_perm is None:
        return InterchangeResult(
            False, original, original, "no legal permutation"
        )
    identity = tuple(range(len(chain)))
    if best_perm == identity:
        return InterchangeResult(
            False, original, original, "already optimal"
        )

    _permute_chain(chain, best_perm)
    return InterchangeResult(
        True, original, tuple(loop.var for loop in chain), "interchanged"
    )


def _constant_bounds(chain: list[Loop]) -> bool:
    for loop in chain:
        if not loop.lower.is_constant:
            return False
        upper = loop.upper
        if not (hasattr(upper, "is_constant") and upper.is_constant):
            return False
    return True


def _permute_chain(chain: list[Loop], perm: tuple[int, ...]) -> None:
    """Re-seat (var, bounds, step) along the chain per ``perm``.

    The loop *objects* stay where they are (so parent links hold); only
    their control fields move, which is exactly what interchange means
    for a perfect nest.
    """
    controls = [
        (lp.var, lp.lower, lp.upper, lp.step) for lp in chain
    ]
    for level, source in enumerate(perm):
        var, lower, upper, step = controls[source]
        chain[level].var = var
        chain[level].lower = lower
        chain[level].upper = upper
        chain[level].step = step

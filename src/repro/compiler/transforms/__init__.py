"""Loop and data transformations (paper Section 3.2)."""

from repro.compiler.transforms.interchange import apply_interchange
from repro.compiler.transforms.layout import choose_layouts, apply_layouts
from repro.compiler.transforms.scalar_replacement import apply_scalar_replacement
from repro.compiler.transforms.tiling import apply_tiling
from repro.compiler.transforms.unroll import apply_unroll_and_jam

__all__ = [
    "apply_interchange",
    "apply_layouts",
    "apply_scalar_replacement",
    "apply_tiling",
    "apply_unroll_and_jam",
    "choose_layouts",
]

"""Unroll-and-jam (Callahan, Carr & Kennedy [4]).

Unrolls a non-innermost loop by a small factor and jams the copies into
the inner body: the inner loop then carries several consecutive outer
iterations per pass, exposing register reuse that scalar replacement
harvests and amortizing branch overhead.

Applied conservatively: constant bounds, trip count divisible by the
factor, and no loop-carried dependence on the unrolled variable (the
dependence-relation engine must prove every relation ``=`` at that
level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.analysis.deps import UnrollJam, analyze_nest
from repro.compiler.ir.expr import MinExpr, var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef, Reference
from repro.compiler.ir.stmts import Statement

__all__ = ["apply_unroll_and_jam", "UnrollResult"]

DEFAULT_FACTOR = 2


@dataclass(frozen=True)
class UnrollResult:
    applied: bool
    variable: str = ""
    factor: int = 0
    reason: str = ""


def apply_unroll_and_jam(
    nest_head: Loop, factor: int = DEFAULT_FACTOR
) -> UnrollResult:
    """Unroll ``nest_head`` by ``factor`` and jam into its inner loop."""
    if factor < 2:
        return UnrollResult(False, reason="factor < 2")
    inner_loops = nest_head.inner_loops
    if len(inner_loops) != 1 or nest_head.statements():
        return UnrollResult(False, reason="not a 2-level perfect prefix")
    inner = inner_loops[0]
    if not inner.is_innermost:
        # Jam at the deepest level instead: recurse one level down.
        return apply_unroll_and_jam(inner, factor)

    outer_var = nest_head.var
    if not nest_head.lower.is_constant or isinstance(
        nest_head.upper, MinExpr
    ) or not nest_head.upper.is_constant:
        return UnrollResult(False, reason="non-constant outer bounds")
    trip = nest_head.trip_count_estimate()
    if trip % factor:
        return UnrollResult(False, reason="trip not divisible by factor")
    if _bounds_depend_on(inner, outer_var):
        return UnrollResult(False, reason="inner bounds use outer var")

    statements = list(inner.all_statements())
    if not statements or not all(
        _unrollable_statement(s) for s in statements
    ):
        return UnrollResult(False, reason="body not unrollable")
    deps = analyze_nest([nest_head, inner], statements)
    if not deps.legal(UnrollJam(level=0)):
        return UnrollResult(False, reason="carried dependence on outer var")

    new_body: list = []
    for statement in inner.body:
        if not isinstance(statement, Statement):
            return UnrollResult(False, reason="non-statement in inner body")
        for copy_index in range(factor):
            new_body.append(_shift_statement(statement, outer_var, copy_index))
    inner.body = new_body
    nest_head.step *= factor
    return UnrollResult(True, outer_var, factor, "unrolled and jammed")


def _bounds_depend_on(loop: Loop, variable: str) -> bool:
    upper_vars = loop.upper.variables
    return variable in loop.lower.variables or variable in upper_vars


def _unrollable_statement(statement: Statement) -> bool:
    """Only affine/scalar references can be shifted symbolically."""
    return all(
        isinstance(ref, AffineRef) or ref.analyzable
        for ref in statement.references
    )


def _shift_statement(
    statement: Statement, variable: str, offset: int
) -> Statement:
    if offset == 0:
        return statement
    return Statement(
        reads=[_shift_ref(r, variable, offset) for r in statement.reads],
        writes=[_shift_ref(w, variable, offset) for w in statement.writes],
        work=statement.work,
        label=statement.label,
        preference=statement.preference,
    )


def _shift_ref(ref: Reference, variable: str, offset: int) -> Reference:
    if isinstance(ref, AffineRef):
        shifted = tuple(
            subscript.substitute(variable, var(variable) + offset)
            for subscript in ref.subscripts
        )
        return AffineRef(ref.array, shifted)
    return ref

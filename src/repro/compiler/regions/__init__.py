"""Region detection and ON/OFF marker placement (paper Section 2)."""

from repro.compiler.regions.detect import RegionReport, detect_regions
from repro.compiler.regions.markers import MarkerReport, insert_markers

__all__ = ["RegionReport", "MarkerReport", "detect_regions", "insert_markers"]

"""ON/OFF marker insertion with redundant-marker elimination.

Conceptually two passes, as in paper Figure 1/Figure 2: every uniform
region wants an activate (hw region) or deactivate (sw region)
instruction at its header, and a second pass removes the redundant
ones.  The implementation fuses the passes: it walks the program in
execution order simulating the hardware state (initially OFF — "we
start with a compiler approach", Section 2.2) and materializes a
:class:`~repro.compiler.ir.stmts.MarkerStmt` only where the state must
change.

Loops need care: the state on entering iteration 2 of a mixed loop's
body is the state at the *end* of the body, not the state before the
loop.  When those differ, the body is re-emitted assuming an unknown
entry state, which forces a marker before the first region inside —
exactly the "reactivate it just above the loop at level 2 at the
bottom" placement of Figure 2(c).

The emitter grades its own homework only as far as the counters below;
the *independent* checker is :mod:`repro.compiler.verify.markers`,
which recomputes the hardware state at every node by a fixed-point
abstract interpretation and additionally proves the emitted marker set
minimal (no single marker can be deleted).  ``python -m repro lint``
runs it over the whole benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.analysis.classify import (
    DEFAULT_THRESHOLD,
    HARDWARE,
    SOFTWARE,
)
from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.compiler.regions.detect import detect_regions

__all__ = ["MarkerReport", "insert_markers"]

#: Hardware state values during simulation.
_ON = HARDWARE
_OFF = SOFTWARE
_UNKNOWN = "unknown"


@dataclass
class MarkerReport:
    """Accounting of the marker-placement pass."""

    program_name: str
    activates: int = 0
    deactivates: int = 0
    #: Markers a naive one-per-region placement would have used.
    naive_markers: int = 0

    @property
    def inserted(self) -> int:
        return self.activates + self.deactivates

    @property
    def eliminated(self) -> int:
        """Redundant markers avoided relative to naive placement.

        Never negative for a correct emitter: every marker is placed
        immediately before some region, so ``inserted`` is bounded by
        the region count.  ``insert_markers`` asserts that invariant
        instead of clamping here — a clamp would silently hide exactly
        the emitter bug the static verifier exists to surface.
        """
        return self.naive_markers - self.inserted


def insert_markers(
    program: Program,
    threshold: float = DEFAULT_THRESHOLD,
    rerun_detection: bool = True,
) -> MarkerReport:
    """Insert ON/OFF markers in place; return the accounting report.

    Region detection is (re)run first unless the caller has already
    annotated the program and says so via ``rerun_detection=False``.
    """
    if rerun_detection:
        detect_regions(program, threshold)
    if program.markers():
        raise ValueError(
            f"{program.name}: program already contains ON/OFF markers"
        )
    report = MarkerReport(program.name)
    report.naive_markers = _count_regions(program.body)
    program.body, _exit_state = _emit(program.body, _OFF, report)
    if report.inserted > report.naive_markers:
        raise AssertionError(
            f"{program.name}: emitter inserted {report.inserted} markers "
            f"where naive one-per-region placement needs only "
            f"{report.naive_markers} — marker emitter bug"
        )
    return report


def _count_regions(nodes: list[Node]) -> int:
    count = 0
    for node in nodes:
        if isinstance(node, Loop):
            if node.preference in (SOFTWARE, HARDWARE):
                count += 1
            else:
                count += _count_regions(node.body)
        elif isinstance(node, Statement) and node.preference is not None:
            count += 1
    return count


def _emit(
    nodes: list[Node], state: str, report: MarkerReport
) -> tuple[list[Node], str]:
    """Rewrite ``nodes`` with the minimal markers; return new exit state."""
    result: list[Node] = []
    for node in nodes:
        preference = _region_preference(node)
        if preference is not None:
            if state != preference:
                result.append(_make_marker(preference, report))
                state = preference
            result.append(node)
        elif isinstance(node, Loop):
            # A mixed loop: markers go inside its body.  Try with the
            # current entry state first; if the body would *exit* in a
            # different state, iterations 2+ would re-enter with a
            # stale assumption, so re-emit pessimistically (unknown
            # entry forces a marker before the body's first region —
            # the Figure 2(c) "reactivate at the bottom" shape).
            saved = (report.activates, report.deactivates)
            body, exit_state = _emit(node.body, state, report)
            if exit_state not in (state, _UNKNOWN):
                report.activates, report.deactivates = saved
                _strip_markers(node.body)
                body, exit_state = _emit(node.body, _UNKNOWN, report)
            node.body = body
            result.append(node)
            if exit_state != _UNKNOWN:
                state = exit_state
        else:
            result.append(node)
    return result, state


def _strip_markers(nodes: list[Node]) -> None:
    """Remove markers inserted by an abandoned emission attempt.

    Top-level markers of an attempt live in the returned copy, but
    nested mixed loops are rewritten in place and must be cleaned
    before retrying.
    """
    nodes[:] = [n for n in nodes if not isinstance(n, MarkerStmt)]
    for node in nodes:
        if isinstance(node, Loop) and node.preference not in (
            SOFTWARE,
            HARDWARE,
        ):
            _strip_markers(node.body)


def _region_preference(node: Node) -> str | None:
    """The uniform-region preference of ``node``, or None."""
    if isinstance(node, Loop) and node.preference in (SOFTWARE, HARDWARE):
        return node.preference
    if isinstance(node, Statement) and node.preference in (
        SOFTWARE,
        HARDWARE,
    ):
        return node.preference
    return None


def _make_marker(preference: str, report: MarkerReport) -> MarkerStmt:
    if preference == HARDWARE:
        report.activates += 1
        return MarkerStmt("on")
    report.deactivates += 1
    return MarkerStmt("off")

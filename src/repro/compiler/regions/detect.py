"""The region-detection algorithm (paper Section 2.2, Figure 2).

Works from the innermost loops outwards:

1. Each innermost loop is classified by the analyzable-reference ratio
   of Section 2.3 ("sw" at or above the threshold, else "hw").
2. A loop whose inner loops all share one preference inherits it —
   including any of its own statements outside those inner loops
   ("they will also be optimized using hardware", Figure 2 steps 2-3).
3. A loop whose inner loops disagree becomes "mixed" (Figure 2 step 7):
   no single strategy is chosen; instead its children form separate
   regions, and its direct statements are classified individually as
   one-iteration imaginary loops.

The result is a partition of the program into uniform regions, each
annotated on the IR (``Loop.preference`` / ``Statement.preference``)
ready for marker insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.analysis.classify import (
    DEFAULT_THRESHOLD,
    HARDWARE,
    MIXED,
    SOFTWARE,
    classify_loop,
    classify_statement,
)
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.program import Program
from repro.compiler.ir.stmts import MarkerStmt, Statement

__all__ = ["RegionReport", "detect_regions"]


@dataclass
class RegionReport:
    """Outcome of region detection over one program."""

    program_name: str
    threshold: float
    #: Maximal uniform regions: (preference, node) in program order.
    regions: list[tuple[str, object]] = field(default_factory=list)
    software_loops: int = 0
    hardware_loops: int = 0
    mixed_loops: int = 0

    @property
    def region_count(self) -> int:
        return len(self.regions)

    def preferences(self) -> list[str]:
        return [pref for pref, _node in self.regions]

    def summary(self) -> str:
        return (
            f"{self.program_name}: {self.region_count} regions "
            f"({self.software_loops} sw / {self.hardware_loops} hw / "
            f"{self.mixed_loops} mixed loops, threshold {self.threshold})"
        )


def detect_regions(
    program: Program, threshold: float = DEFAULT_THRESHOLD
) -> RegionReport:
    """Annotate every loop and sandwiched statement; return the report.

    Idempotent: re-running overwrites previous annotations.
    """
    report = RegionReport(program.name, threshold)
    for node in program.body:
        if isinstance(node, Loop):
            _annotate_loop(node, threshold, report)
        elif isinstance(node, Statement):
            node.preference = classify_statement(node, threshold)
    _collect_regions(program.body, report)
    return report


def _annotate_loop(loop: Loop, threshold: float, report: RegionReport) -> str:
    """Post-order annotation; returns the loop's preference."""
    inner = loop.inner_loops
    if not inner:
        loop.preference = classify_loop(loop, threshold)
    else:
        child_prefs = {
            _annotate_loop(child, threshold, report) for child in inner
        }
        if len(child_prefs) == 1 and MIXED not in child_prefs:
            # Uniform children: propagate outward (Figure 2 steps 2-3);
            # the loop's own statements ride along with the region.
            loop.preference = child_prefs.pop()
            for statement in loop.statements():
                statement.preference = None
        else:
            loop.preference = MIXED
            # Statements sandwiched between differing inner regions get
            # their own classification (imaginary one-trip loops).
            for statement in loop.statements():
                statement.preference = classify_statement(
                    statement, threshold
                )
    if loop.preference == SOFTWARE:
        report.software_loops += 1
    elif loop.preference == HARDWARE:
        report.hardware_loops += 1
    else:
        report.mixed_loops += 1
    return loop.preference


def _collect_regions(nodes, report: RegionReport) -> None:
    """Record the maximal uniform regions in program order."""
    for node in nodes:
        if isinstance(node, MarkerStmt):
            continue
        if isinstance(node, Loop):
            if node.preference in (SOFTWARE, HARDWARE):
                report.regions.append((node.preference, node))
            else:
                _collect_regions(node.body, report)
        elif isinstance(node, Statement) and node.preference is not None:
            report.regions.append((node.preference, node))

"""Reference classification and the hardware/compiler decision.

Implements paper Section 2.3: references are *analyzable* (scalars,
affine array references) or *non-analyzable* (non-affine, indexed,
pointer, struct).  A loop is optimized by the compiler when the ratio
of analyzable references to total references meets a threshold (0.5 in
the paper's experiments, chosen after "extensive experimentation" —
and not critical, since real regions are 90-100% pure).
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.compiler.ir.loops import Loop
from repro.compiler.ir.stmts import Statement

__all__ = [
    "DEFAULT_THRESHOLD",
    "count_references",
    "analyzable_ratio",
    "classify_loop",
    "classify_statement",
]

#: The threshold of Section 4.1.
DEFAULT_THRESHOLD = 0.5

#: Region preferences.
SOFTWARE = "sw"
HARDWARE = "hw"
MIXED = "mixed"


def count_references(
    node: Union[Loop, Statement, Iterable[Statement]],
) -> tuple[int, int]:
    """(analyzable, total) static reference counts under ``node``."""
    if isinstance(node, Statement):
        statements: Iterable[Statement] = [node]
    elif isinstance(node, Loop):
        statements = node.all_statements()
    else:
        statements = node
    analyzable = total = 0
    for statement in statements:
        for ref in statement.references:
            total += 1
            if ref.analyzable:
                analyzable += 1
    return analyzable, total


def analyzable_ratio(node: Union[Loop, Statement]) -> float:
    """Fraction of analyzable references (1.0 for an empty region).

    An empty region contains nothing the hardware could help with, so
    treating it as fully analyzable keeps it out of hardware regions.
    """
    analyzable, total = count_references(node)
    if total == 0:
        return 1.0
    return analyzable / total


def classify_loop(loop: Loop, threshold: float = DEFAULT_THRESHOLD) -> str:
    """"sw" when the loop clears the analyzable-ratio threshold else "hw".

    This is the paper's per-innermost-loop decision; propagation to
    outer loops is done by :mod:`repro.compiler.regions.detect`.
    """
    return SOFTWARE if analyzable_ratio(loop) >= threshold else HARDWARE


def classify_statement(
    statement: Statement, threshold: float = DEFAULT_THRESHOLD
) -> str:
    """Classification for straight-line code between loops.

    The paper treats such statements "as if they are within an imaginary
    loop that iterates only once" (Section 2.2).
    """
    return (
        SOFTWARE if analyzable_ratio(statement) >= threshold else HARDWARE
    )

"""Polyhedral-grade dependence engine: direction/distance relations.

This is the engine behind every loop transform's legality question.  It
replaces the flat structurally-aligned distance test in
:mod:`repro.compiler.analysis.dependence` (kept for its narrow exact
answers and API compatibility) with per-reference-pair
:class:`DependenceRelation` objects carrying

* a **direction vector** over the nest's loops (``<``/``=``/``>``, with
  ``*`` appearing only in merged per-pair summaries),
* the **exact distance** per level when the subscripts pin it, and
* the **dependence kind** — flow (write before read), anti (read before
  write) or output (write before write) in execution order.

Feasibility of each candidate direction vector is decided by a GCD test
plus a Banerjee-style bounds test evaluated at the vertices of the
constrained iteration-pair region, with loop-variable intervals pulled
from the interval analysis in :mod:`repro.compiler.verify.bounds`.
Soundness rules for variables that are not nest loops:

* variables bound by loops *enclosing* the nest are parameters — both
  end points of a dependence share their binding, so they subtract out;
* variables bound by loops *inside* the analyzed chain (an imperfect
  nest's deeper levels) are existentially projected: any subscript
  dimension touching one contributes no constraint (conservative).

Anything non-affine that can conflict with a write makes the nest
*unanalyzable* (with a reason), which every legality answer treats as
"refuse".  Transforms ask legality questions through the generic
:meth:`NestDependences.legal` interface with small transform
descriptors (:class:`Permutation`, :class:`Tiling`, :class:`UnrollJam`,
:class:`Skew`), so interchange/tiling/unroll/skewing all consume the
same relation set; loop fusion and fission ask the cross-nest questions
:func:`fusion_preventing` / :func:`fission_preventing`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence, Union

from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import (
    AffineRef,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    Reference,
    RegisterRef,
    ScalarRef,
)
from repro.compiler.ir.stmts import Statement

if TYPE_CHECKING:  # runtime import is lazy: verify imports this module
    from repro.compiler.verify.bounds import Interval

__all__ = [
    "DependenceRelation",
    "NestDependences",
    "UnanalyzableRef",
    "Permutation",
    "Tiling",
    "UnrollJam",
    "Skew",
    "Transform",
    "Verdict",
    "analyze_nest",
    "nest_dependences",
    "fusion_preventing",
    "fission_preventing",
]

LT, EQ, GT, ANY = "<", "=", ">", "*"

#: Kind names, oriented by execution order (source executes first).
FLOW, ANTI, OUTPUT = "flow", "anti", "output"


@dataclass(frozen=True)
class DependenceRelation:
    """One feasible direction vector between an ordered reference pair.

    ``distance[k]`` is the exact per-level distance (sink iteration
    minus source iteration) when the subscripts pin it, else None;
    it is 0 wherever ``directions[k] == '='``.  ``source``/``sink``
    identify the references by ``(statement index, phase, slot)`` where
    phase 0 is the read list and phase 1 the write list.
    """

    array: str
    kind: str
    directions: tuple[str, ...]
    distance: tuple[Optional[int], ...]
    source: tuple[int, int, int]
    sink: tuple[int, int, int]
    source_label: str = ""
    sink_label: str = ""

    @property
    def loop_independent(self) -> bool:
        return all(d == EQ for d in self.directions)

    def __repr__(self) -> str:
        dirs = ",".join(self.directions)
        return f"<{self.kind} {self.array} ({dirs})>"


@dataclass(frozen=True)
class UnanalyzableRef:
    """A reference the engine cannot reason about, with the reason."""

    array: str
    description: str
    reason: str


# -- transform descriptors ----------------------------------------------


@dataclass(frozen=True)
class Permutation:
    """Reorder the nest: ``order[k]`` is the original position of the
    loop placed at level k."""

    order: tuple[int, ...]


@dataclass(frozen=True)
class Tiling:
    """Strip-mine-and-interleave the outermost ``depth`` levels (all
    levels when None): requires full permutability."""

    depth: Optional[int] = None


@dataclass(frozen=True)
class UnrollJam:
    """Unroll the loop at ``level`` and jam the copies together."""

    level: int = 0


@dataclass(frozen=True)
class Skew:
    """``level``'s variable becomes ``var + factor * wrt's var``."""

    wrt: int
    level: int
    factor: int


Transform = Union[Permutation, Tiling, UnrollJam, Skew]


@dataclass(frozen=True)
class Verdict:
    """A legality answer that explains itself."""

    ok: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


@dataclass
class NestDependences:
    """The full relation set of one loop nest."""

    nest_vars: tuple[str, ...]
    relations: list[DependenceRelation] = field(default_factory=list)
    unanalyzable: list[UnanalyzableRef] = field(default_factory=list)

    @property
    def analyzable(self) -> bool:
        return not self.unanalyzable

    def merged(self) -> list[DependenceRelation]:
        """One relation per (source, sink) pair, directions collapsed
        to ``*`` at levels where the feasible directions disagree."""
        groups: dict[tuple, list[DependenceRelation]] = {}
        for rel in self.relations:
            groups.setdefault((rel.source, rel.sink), []).append(rel)
        out = []
        for rels in groups.values():
            first = rels[0]
            directions = []
            distance: list[Optional[int]] = []
            for level in range(len(self.nest_vars)):
                dirs = {r.directions[level] for r in rels}
                directions.append(dirs.pop() if len(dirs) == 1 else ANY)
                dists = {r.distance[level] for r in rels}
                only = dists.pop() if len(dists) == 1 else None
                distance.append(only)
            out.append(
                DependenceRelation(
                    first.array, first.kind, tuple(directions),
                    tuple(distance), first.source, first.sink,
                    first.source_label, first.sink_label,
                )
            )
        return out

    # -- legality -----------------------------------------------------

    def legal(self, transform: Transform) -> Verdict:
        """Is ``transform`` provably order-preserving for this nest?"""
        if self.unanalyzable:
            bad = self.unanalyzable[0]
            return Verdict(
                False,
                f"unanalyzable reference {bad.description}: {bad.reason}",
            )
        if isinstance(transform, Permutation):
            return self._permutation_legal(transform.order)
        if isinstance(transform, Tiling):
            depth = (
                len(self.nest_vars)
                if transform.depth is None
                else transform.depth
            )
            return self._fully_permutable(depth)
        if isinstance(transform, UnrollJam):
            return self._unroll_jam_legal(transform.level)
        if isinstance(transform, Skew):
            return self.skewed(
                transform.wrt, transform.level, transform.factor
            )._fully_permutable(len(self.nest_vars))
        raise TypeError(f"unknown transform {transform!r}")

    def _permutation_legal(self, order: Sequence[int]) -> Verdict:
        for rel in self.relations:
            for level in order:
                direction = rel.directions[level]
                if direction == LT:
                    break
                if direction != EQ:
                    return Verdict(
                        False,
                        f"{rel!r} becomes lexicographically negative",
                    )
        return Verdict(True)

    def _fully_permutable(self, depth: int) -> Verdict:
        for rel in self.relations:
            for direction in rel.directions[:depth]:
                if direction in (GT, ANY):
                    return Verdict(
                        False, f"{rel!r} is not forward at every level"
                    )
        return Verdict(True)

    def _unroll_jam_legal(self, level: int) -> Verdict:
        """Unroll-and-jam at ``level`` is strip-mine-plus-interchange:
        the element loop moves innermost.  A relation carried *outside*
        ``level`` is untouched; one carried *at* ``level`` survives the
        move iff its inner suffix is lexicographically non-negative
        (the jammed copies then still execute in source order)."""
        for rel in self.relations:
            prefix = rel.directions[:level]
            if LT in prefix:
                continue  # carried by an enclosing loop: unaffected
            if any(d in (GT, ANY) for d in prefix):
                return Verdict(
                    False, f"{rel!r} is not forward above the jam level"
                )
            at = rel.directions[level]
            if at == EQ:
                continue
            if at in (GT, ANY):
                return Verdict(
                    False, f"{rel!r} is backward at the unrolled loop"
                )
            for direction in rel.directions[level + 1:]:
                if direction == LT:
                    break
                if direction != EQ:
                    return Verdict(
                        False,
                        f"{rel!r} reverses when the jammed copies "
                        "interleave",
                    )
        return Verdict(True)

    def fully_permutable(self) -> bool:
        return bool(self.legal(Tiling()))

    # -- skewing ------------------------------------------------------

    def skew_factor(self, wrt: int = 0, level: int = 1) -> Optional[int]:
        """The smallest factor making the nest fully permutable by
        skewing ``level`` with respect to ``wrt``, or None when no
        factor can (or the relations are unanalyzable)."""
        if self.unanalyzable:
            return None
        required = 0
        for rel in self.relations:
            for k, direction in enumerate(rel.directions):
                if k not in (wrt, level) and direction in (GT, ANY):
                    return None  # skewing this pair of levels cannot fix it
            outer = rel.directions[wrt]
            inner = rel.directions[level]
            d_outer = rel.distance[wrt]
            d_inner = rel.distance[level]
            if outer == EQ:
                if inner in (GT, ANY):
                    return None  # backward at equal outer: unfixable
            elif outer == LT:
                if inner in (EQ, LT):
                    continue  # already forward; any factor keeps it so
                if inner == GT and d_inner is not None:
                    if d_outer is not None:
                        # need d_inner + f*d_outer >= 0 with exact
                        # d_outer >= 1: f >= ceil(-d_inner / d_outer)
                        required = max(
                            required,
                            (-d_inner + d_outer - 1) // d_outer,
                        )
                    else:
                        # d_outer >= 1 unknown: worst case is 1
                        required = max(required, -d_inner)
                else:
                    return None
            else:
                return None  # outer '>' / '*': not skewable this way
        return required

    def skewed(self, wrt: int, level: int, factor: int) -> "NestDependences":
        """The relation set after skewing (conservative where the
        exact distances are unknown)."""
        out = NestDependences(
            self.nest_vars, unanalyzable=list(self.unanalyzable)
        )
        for rel in self.relations:
            directions = list(rel.directions)
            distance = list(rel.distance)
            outer = directions[wrt]
            d_outer = distance[wrt]
            d_inner = distance[level]
            if outer != EQ and factor != 0:
                if d_outer is not None and d_inner is not None:
                    new = d_inner + factor * d_outer
                    distance[level] = new
                    directions[level] = LT if new > 0 else (
                        EQ if new == 0 else GT
                    )
                elif (
                    outer == LT
                    and factor > 0
                    and directions[level] in (EQ, LT)
                    and (d_inner is None or d_inner >= 0)
                ):
                    # d_inner >= 0 plus factor * (>=1) is strictly positive
                    directions[level] = LT
                    distance[level] = None
                else:
                    directions[level] = ANY
                    distance[level] = None
            out.relations.append(
                DependenceRelation(
                    rel.array, rel.kind, tuple(directions),
                    tuple(distance), rel.source, rel.sink,
                    rel.source_label, rel.sink_label,
                )
            )
        return out


# -- the solver ---------------------------------------------------------


@dataclass(frozen=True)
class _Space:
    """The iteration space a relation set is computed over."""

    vars: tuple[str, ...]
    bounds: tuple[Optional[Interval], ...]
    inner: frozenset[str]
    param_env: Mapping[str, Interval]


@dataclass(frozen=True)
class _Instance:
    """One reference occurrence, positioned in program order."""

    ref: AffineRef
    position: tuple[int, int, int]  # (statement, phase, slot)
    is_write: bool
    label: str


def _equations(
    src: AffineRef, snk: AffineRef, space: _Space
) -> Optional[list[tuple[tuple[int, ...], tuple[int, ...], dict[str, int], int]]]:
    """Per-dimension constraints ``sum(a_k x_k - b_k y_k) + params = c``.

    Dimensions touching a projected inner variable contribute no
    constraint.  Returns None when the pair provably never overlaps
    (constant subscripts in disjoint slices).
    """
    equations = []
    for sub_src, sub_snk in zip(src.subscripts, snk.subscripts):
        touched = sub_src.variables | sub_snk.variables
        if touched & space.inner:
            continue  # existentially projected: no constraint
        a = tuple(sub_src.coefficient(v) for v in space.vars)
        b = tuple(sub_snk.coefficient(v) for v in space.vars)
        params: dict[str, int] = {}
        for name in touched - set(space.vars):
            coeff = sub_src.coefficient(name) - sub_snk.coefficient(name)
            if coeff:
                params[name] = coeff
        c = sub_snk.const - sub_src.const
        if not any(a) and not any(b) and not params:
            if c != 0:
                return None  # disjoint constant slices: independent
            continue
        equations.append((a, b, params, c))
    return equations


def _pinned_distances(
    equations: Iterable[
        tuple[tuple[int, ...], tuple[int, ...], dict[str, int], int]
    ],
    depth: int,
) -> Optional[dict[int, int]]:
    """Levels whose distance the subscripts pin exactly.

    A dimension of the form ``a*x_k - a*y_k = c`` (single level, equal
    coefficients, no parameters) forces ``y_k - x_k = -c/a``.  Returns
    None when two dimensions contradict or a distance is fractional —
    the pair is independent.
    """
    pinned: dict[int, int] = {}
    for a, b, params, c in equations:
        if params:
            continue
        levels = [k for k in range(depth) if a[k] or b[k]]
        if len(levels) != 1:
            continue
        (k,) = levels
        if a[k] != b[k] or a[k] == 0:
            continue
        if c % a[k]:
            return None  # stride never bridges the offset
        distance = -(c // a[k])
        if k in pinned and pinned[k] != distance:
            return None  # inconsistent constraints: no solution
        pinned[k] = distance
    return pinned


def _term_range(
    a: int, b: int, direction: str, bound: Optional[Interval]
) -> Optional[tuple[int, int]]:
    """Range of ``a*x - b*y`` with ``x``, ``y`` in ``bound`` and
    related by ``direction``; None means unbounded."""
    if a == 0 and b == 0:
        return (0, 0)
    if bound is None:
        return None
    lo, hi = bound.lo, bound.hi
    if direction == EQ:
        coeff = a - b
        values = (coeff * lo, coeff * hi)
    elif direction == LT:
        # vertices of the lattice triangle {lo <= x < y <= hi}
        values = (
            a * lo - b * (lo + 1),
            a * lo - b * hi,
            a * (hi - 1) - b * hi,
        )
    else:
        values = (
            a * (lo + 1) - b * lo,
            a * hi - b * lo,
            a * hi - b * (hi - 1),
        )
    return (min(values), max(values))


def _direction_feasible(
    directions: tuple[str, ...],
    equations: list,
    space: _Space,
) -> bool:
    """GCD + Banerjee vertex-bounds feasibility of one direction."""
    for level, direction in enumerate(directions):
        if direction == EQ:
            continue
        bound = space.bounds[level]
        if bound is not None and bound.hi - bound.lo < 1:
            return False  # a single iterate cannot differ from itself
    for a, b, params, c in equations:
        # GCD test over the per-variable coefficients of the equation.
        coeffs = []
        for level, direction in enumerate(directions):
            if direction == EQ:
                if a[level] - b[level]:
                    coeffs.append(a[level] - b[level])
            else:
                if a[level]:
                    coeffs.append(a[level])
                if b[level]:
                    coeffs.append(b[level])
        coeffs.extend(v for v in params.values() if v)
        if not coeffs:
            if c != 0:
                return False
            continue
        if c % math.gcd(*(abs(v) for v in coeffs)):
            return False
        # Banerjee bounds test: c must lie inside the value range of
        # the left-hand side under the direction constraints.
        lo = hi = 0
        unbounded = False
        for level, direction in enumerate(directions):
            term = _term_range(
                a[level], b[level], direction, space.bounds[level]
            )
            if term is None:
                unbounded = True
                break
            lo += term[0]
            hi += term[1]
        if not unbounded:
            for name, coeff in params.items():
                interval = space.param_env.get(name)
                if interval is None:
                    unbounded = True
                    break
                values = (coeff * interval.lo, coeff * interval.hi)
                lo += min(values)
                hi += max(values)
        if not unbounded and not (lo <= c <= hi):
            return False
    return True


def _sign_direction(distance: int) -> str:
    return LT if distance > 0 else (EQ if distance == 0 else GT)


def _pair_relations(
    src: _Instance,
    snk: _Instance,
    space: _Space,
    allowed,
) -> list[tuple[tuple[str, ...], tuple[Optional[int], ...]]]:
    """All feasible (direction, distance) vectors from src to snk.

    ``allowed(directions)`` filters candidate vectors by the execution
    -order orientation the caller needs.
    """
    equations = _equations(src.ref, snk.ref, space)
    if equations is None:
        return []
    depth = len(space.vars)
    pinned = _pinned_distances(equations, depth)
    if pinned is None:
        return []
    for level, distance in pinned.items():
        bound = space.bounds[level]
        if bound is not None and abs(distance) > bound.hi - bound.lo:
            return []  # the pinned distance exceeds the iteration range
    options = []
    for level in range(depth):
        if level in pinned:
            options.append((_sign_direction(pinned[level]),))
        else:
            options.append((LT, EQ, GT))
    results = []
    for directions in itertools.product(*options):
        if not allowed(directions):
            continue
        if not _direction_feasible(directions, equations, space):
            continue
        distance = tuple(
            pinned.get(level, 0 if directions[level] == EQ else None)
            for level in range(depth)
        )
        results.append((directions, distance))
    return results


def _lex_positive(directions: Sequence[str]) -> bool:
    for direction in directions:
        if direction == LT:
            return True
        if direction == GT:
            return False
    return False


def _lex_negative(directions: Sequence[str]) -> bool:
    return _lex_positive([_FLIP[d] for d in directions])


_FLIP = {LT: GT, GT: LT, EQ: EQ, ANY: ANY}


def _kind(src: _Instance, snk: _Instance) -> str:
    if src.is_write:
        return OUTPUT if snk.is_write else FLOW
    return ANTI


# -- building relation sets from the IR ---------------------------------


def _collect_instances(
    statements: Sequence[Statement],
) -> tuple[list[_Instance], list[tuple[str, str, bool, str]], set[str]]:
    """Classify every reference: affine instances to solve, deferred
    non-affine candidates (array, description, is_write, reason), and
    the set of written array names."""
    instances: list[_Instance] = []
    deferred: list[tuple[str, str, bool, str]] = []
    written: set[str] = set()
    for index, statement in enumerate(statements):
        label = statement.label or f"stmt{index}"
        for phase, refs in ((0, statement.reads), (1, statement.writes)):
            for slot, ref in enumerate(refs):
                base: Reference = ref
                if isinstance(base, RegisterRef):
                    base = base.original
                if isinstance(base, ScalarRef):
                    continue  # privatizable work registers
                is_write = phase == 1
                position = (index, phase, slot)
                if isinstance(base, AffineRef):
                    if is_write:
                        written.add(base.array.name)
                    instances.append(
                        _Instance(base, position, is_write, label)
                    )
                    continue
                if isinstance(base, IndexedRef):
                    # The index load is an affine read we can analyze;
                    # the data access is run-time dependent.
                    instances.append(
                        _Instance(base.index, position, False, label)
                    )
                    name = base.array.name
                    reason = "indexed (run-time subscript values)"
                elif isinstance(base, PointerChaseRef):
                    name = base.array.name
                    reason = "pointer chase (run-time link values)"
                elif isinstance(base, NonAffineRef):
                    name = base.array.name
                    reason = f"non-affine subscript ({base.description})"
                else:
                    name = base.array_name or "?"
                    reason = f"unrecognized reference {type(base).__name__}"
                if is_write:
                    written.add(name)
                deferred.append((name, repr(base), is_write, reason))
    return instances, deferred, written


def _unanalyzable_refs(
    instances: Sequence[_Instance],
    deferred: Sequence[tuple[str, str, bool, str]],
    written: set[str],
) -> list[UnanalyzableRef]:
    """Which problem references actually block analysis.

    A non-affine *read* of an array nobody writes is harmless; any
    other non-affine reference is reported.  Two affine references to
    the same array name with different ranks mean the declarations
    alias inconsistently — also a blocker (never a zip-truncated
    "answer").
    """
    out = [
        UnanalyzableRef(name, description, reason)
        for name, description, is_write, reason in deferred
        if is_write or name in written
    ]
    ranks: dict[str, int] = {}
    flagged: set[str] = set()
    for inst in instances:
        name = inst.ref.array.name
        rank = len(inst.ref.subscripts)
        if name in ranks and ranks[name] != rank and name not in flagged:
            flagged.add(name)
            out.append(
                UnanalyzableRef(
                    name, repr(inst.ref),
                    f"rank mismatch: references with {ranks[name]} and "
                    f"{rank} subscripts alias the same array",
                )
            )
        ranks.setdefault(name, rank)
    return out


def _build_space(
    chain: Sequence[Loop],
    inner_roots: Sequence[Loop],
    outer_env: Optional[Mapping[str, Interval]],
) -> _Space:
    # Imported here, not at module level: the verify package's facade
    # imports the legality audit, which imports this module.
    from repro.compiler.verify.bounds import loop_var_interval

    env: dict[str, Interval] = dict(outer_env or {})
    bounds: list[Optional[Interval]] = []
    for loop in chain:
        interval = loop_var_interval(loop, env)
        bounds.append(interval)
        if interval is not None:
            env[loop.var] = interval
    chain_vars = {loop.var for loop in chain}
    inner: set[str] = set()
    for root in inner_roots:
        for node in root.walk():
            if isinstance(node, Loop) and node.var not in chain_vars:
                inner.add(node.var)
    return _Space(
        tuple(loop.var for loop in chain),
        tuple(bounds),
        frozenset(inner),
        dict(outer_env or {}),
    )


def analyze_nest(
    chain: Sequence[Loop],
    statements: Optional[Sequence[Statement]] = None,
    outer_env: Optional[Mapping[str, Interval]] = None,
) -> NestDependences:
    """Relation set of the perfect chain ``chain`` (outermost first).

    ``statements`` defaults to every statement under the chain bottom;
    ``outer_env`` supplies intervals for enclosing loop variables when
    known (they are treated as parameters either way).
    """
    if statements is None:
        statements = list(chain[-1].all_statements())
    space = _build_space(chain, [chain[-1]], outer_env)
    instances, deferred, written = _collect_instances(statements)
    deps = NestDependences(
        space.vars,
        unanalyzable=_unanalyzable_refs(instances, deferred, written),
    )
    for src in instances:
        for snk in instances:
            if not (src.is_write or snk.is_write):
                continue
            if src.ref.array.name != snk.ref.array.name:
                continue
            if len(src.ref.subscripts) != len(snk.ref.subscripts):
                continue  # aliasing bug: already reported as unanalyzable
            same_iteration_ok = src.position < snk.position

            def allowed(directions: tuple[str, ...]) -> bool:
                if _lex_positive(directions):
                    return True
                return same_iteration_ok and all(
                    d == EQ for d in directions
                )

            for directions, distance in _pair_relations(
                src, snk, space, allowed
            ):
                deps.relations.append(
                    DependenceRelation(
                        src.ref.array.name, _kind(src, snk),
                        directions, distance, src.position, snk.position,
                        src.label, snk.label,
                    )
                )
    return deps


def nest_dependences(
    head: Loop,
    limit: Optional[int] = None,
    outer_env: Optional[Mapping[str, Interval]] = None,
) -> NestDependences:
    """Relation set of the perfect nest rooted at ``head``."""
    chain = head.perfect_nest_loops()
    if limit is not None:
        chain = chain[:limit]
    return analyze_nest(chain, outer_env=outer_env)


# -- cross-nest questions (fusion / fission) -----------------------------


def _rename_subscripts(ref: AffineRef, mapping: Mapping[str, str]) -> AffineRef:
    from repro.compiler.ir.expr import var as _var

    subscripts = []
    for subscript in ref.subscripts:
        for old, new in mapping.items():
            subscript = subscript.substitute(old, _var(new))
        subscripts.append(subscript)
    return AffineRef(ref.array, tuple(subscripts))


def _cross_feasible(
    chain: Sequence[Loop],
    inner_roots: Sequence[Loop],
    src_statements: Sequence[Statement],
    snk_statements: Sequence[Statement],
    rename: Mapping[str, str],
    allowed,
) -> tuple[Optional[DependenceRelation], Optional[str]]:
    """First relation between the groups whose direction ``allowed``
    accepts, or a reason the question is unanswerable."""
    space = _build_space(chain, inner_roots, None)
    src_inst, src_deferred, src_written = _collect_instances(src_statements)
    snk_inst, snk_deferred, snk_written = _collect_instances(snk_statements)
    # A non-affine ref is harmless only if its array is written in
    # *neither* group, so filter against the union of written sets.
    written = src_written | snk_written
    blockers = _unanalyzable_refs(
        list(src_inst) + list(snk_inst),
        list(src_deferred) + list(snk_deferred),
        written,
    )
    if blockers:
        bad = blockers[0]
        return None, (
            f"unanalyzable reference {bad.description}: {bad.reason}"
        )
    renamed = [
        _Instance(
            _rename_subscripts(inst.ref, rename), inst.position,
            inst.is_write, inst.label,
        )
        for inst in snk_inst
    ]
    for src in src_inst:
        for snk in renamed:
            if not (src.is_write or snk.is_write):
                continue
            if src.ref.array.name != snk.ref.array.name:
                continue
            found = _pair_relations(src, snk, space, allowed)
            if found:
                directions, distance = found[0]
                return (
                    DependenceRelation(
                        src.ref.array.name, _kind(src, snk), directions,
                        distance, src.position, snk.position,
                        src.label, snk.label,
                    ),
                    None,
                )
    return None, None


def fusion_preventing(
    chain: Sequence[Loop],
    second: Sequence[Loop],
    src_statements: Sequence[Statement],
    snk_statements: Sequence[Statement],
    rename: Mapping[str, str],
) -> Optional[str]:
    """Why fusing ``second``'s statements into ``chain`` is illegal.

    ``chain`` is the first nest's perfect chain (which defines the
    fused iteration space), ``rename`` maps the second nest's loop
    variables onto it.  Fusion is illegal iff some dependence from a
    first-nest instance to a second-nest instance would have to flow
    *backwards* in the fused space (a lexicographically negative
    direction): originally every first-nest instance ran before every
    second-nest instance, afterwards order follows the common
    iteration vector.  Returns None when fusion is legal, else the
    reason.
    """
    relation, trouble = _cross_feasible(
        chain, [chain[-1], *second], src_statements, snk_statements,
        rename, lambda directions: _lex_negative(directions),
    )
    if trouble is not None:
        return trouble
    if relation is not None:
        return (
            f"fusion-preventing {relation.kind} dependence on "
            f"{relation.array} (direction "
            f"{','.join(relation.directions)})"
        )
    return None


def fission_preventing(
    chain: Sequence[Loop],
    first_group: Sequence[Statement],
    second_group: Sequence[Statement],
) -> Optional[str]:
    """Why splitting the nest between the groups is illegal.

    After fission every ``first_group`` instance runs before every
    ``second_group`` instance; that breaks exactly the dependences
    from a second-group instance to a first-group instance in a
    *later* iteration (strictly lexicographically positive
    direction).  Returns None when fission is legal, else the reason.
    """
    relation, trouble = _cross_feasible(
        chain, [chain[-1]], second_group, first_group, {},
        lambda directions: _lex_positive(directions),
    )
    if trouble is not None:
        return trouble
    if relation is not None:
        return (
            f"fission-preventing {relation.kind} dependence on "
            f"{relation.array} (direction "
            f"{','.join(relation.directions)})"
        )
    return None

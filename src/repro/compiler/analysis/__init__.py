"""Compile-time analyses feeding region detection and transformation."""

from repro.compiler.analysis.classify import (
    analyzable_ratio,
    classify_loop,
    count_references,
)
from repro.compiler.analysis.dependence import (
    distance_vectors,
    permutation_legal,
)
from repro.compiler.analysis.footprint import nest_footprint_bytes
from repro.compiler.analysis.reuse import (
    innermost_cost,
    preferred_fastest_dim,
    rank_innermost_candidates,
)

__all__ = [
    "analyzable_ratio",
    "classify_loop",
    "count_references",
    "distance_vectors",
    "innermost_cost",
    "nest_footprint_bytes",
    "permutation_legal",
    "preferred_fastest_dim",
    "rank_innermost_candidates",
]

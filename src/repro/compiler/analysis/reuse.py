"""Reuse analysis and the interchange cost model (Wolf & Lam style).

For each candidate innermost loop variable the model estimates the
number of cache lines touched per traversal of that loop:

* a reference *invariant* in the variable has **temporal reuse** — it
  costs one line for the whole traversal;
* a reference whose per-iteration address stride is smaller than a
  cache line has **spatial reuse** — it costs ``trip * stride / line``
  lines;
* otherwise it costs one line per iteration.

The loop with the lowest total cost is the best innermost loop, which
reproduces the paper's Section 3.2 example: temporal reuse on ``U[j]``
is carried by ``i``, so ``i`` moves innermost.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef
from repro.compiler.ir.stmts import Statement

__all__ = [
    "address_stride",
    "innermost_cost",
    "rank_innermost_candidates",
    "preferred_fastest_dim",
    "reuse_kind",
]


def address_stride(ref: AffineRef, variable: str) -> int:
    """Bytes the reference's address moves when ``variable`` advances by 1.

    Depends on the array's *current* storage layout, which is what makes
    layout selection and interchange interact.
    """
    array = ref.array
    elements = 0
    for dim, subscript in enumerate(ref.subscripts):
        coeff = subscript.coefficient(variable)
        if coeff:
            elements += coeff * array.stride_of_dim(dim)
    return elements * array.element_size


def reuse_kind(ref: AffineRef, variable: str, line_size: int) -> str:
    """"temporal" / "spatial" / "none" for ``ref`` along ``variable``."""
    stride = address_stride(ref, variable)
    if stride == 0:
        return "temporal"
    if abs(stride) < line_size:
        return "spatial"
    return "none"


def innermost_cost(
    statements: Iterable[Statement],
    variable: str,
    trip: int,
    line_size: int,
) -> float:
    """Estimated lines touched per ``variable`` traversal of length ``trip``.

    Non-affine references cost one line per iteration (no compile-time
    knowledge); scalar and register references cost nothing.
    """
    cost = 0.0
    for statement in statements:
        for ref in statement.references:
            if isinstance(ref, AffineRef):
                stride = abs(address_stride(ref, variable))
                if stride == 0:
                    cost += 1.0
                elif stride < line_size:
                    cost += trip * stride / line_size
                else:
                    cost += float(trip)
            elif not ref.analyzable:
                cost += float(trip)
    return cost


def rank_innermost_candidates(
    nest_loops: list[Loop],
    statements: list[Statement],
    line_size: int,
) -> list[tuple[float, str]]:
    """Rank each nest variable by innermost cost (best first)."""
    ranking = []
    for loop in nest_loops:
        trip = loop.trip_count_estimate()
        cost = innermost_cost(statements, loop.var, max(trip, 1), line_size)
        ranking.append((cost, loop.var))
    ranking.sort()
    return ranking


def preferred_fastest_dim(ref: AffineRef, innermost_var: str) -> Optional[int]:
    """The logical dimension that should be storage-fastest for ``ref``.

    That is the dimension whose subscript advances with the innermost
    loop variable (smallest non-zero |coefficient| wins, preferring
    unit stride).  None when the reference is invariant in the variable
    — then layout cannot help it.
    """
    best_dim: Optional[int] = None
    best_coeff = 0
    for dim, subscript in enumerate(ref.subscripts):
        coeff = abs(subscript.coefficient(innermost_var))
        if coeff and (best_coeff == 0 or coeff < best_coeff):
            best_dim = dim
            best_coeff = coeff
    return best_dim

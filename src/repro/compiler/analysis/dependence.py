"""Direction/distance-vector dependence test for loop permutation.

A deliberately conservative test sufficient for the regular kernels the
paper's compiler path handles:

* Only pairs involving at least one write to the same array can carry a
  dependence.
* When both references are affine and *structurally aligned* — every
  subscript pair has identical variable terms and differs only in the
  constant — the constant differences, mapped through the (single)
  variable of each subscript, give an exact distance vector.
* Anything else (different variable structure, non-affine, indexed,
  pointer) makes the test answer "unknown", which callers must treat as
  an illegal-to-permute verdict.

A loop permutation is legal iff every distance vector remains
lexicographically non-negative after permutation (Wolf & Lam).

The general-purpose engine lives in
:mod:`repro.compiler.analysis.deps`; this module remains the narrow
exact-distance fast path.  Emitted vectors are deduplicated
:class:`DistanceVector` tuples that also carry the dependence ``kind``
(flow/anti/output) in canonical execution order — normalization flips
a lexicographically-negative vector's *orientation*, so the kind flips
with it instead of a flow being silently reported as its mirror.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.compiler.ir.refs import AffineRef, Reference
from repro.compiler.ir.stmts import Statement

__all__ = [
    "INDEPENDENT",
    "DistanceVector",
    "distance_vectors",
    "permutation_legal",
    "pair_distance",
]

#: Sentinel: the pair provably never touches the same element.
INDEPENDENT = "independent"


class DistanceVector(tuple):
    """A distance vector that remembers its dependence kind.

    Equality/hashing are inherited from tuple, so existing callers and
    tests that compare against plain tuples keep working.
    """

    kind: str

    def __new__(cls, values: Iterable[int], kind: str = "flow"):
        self = super().__new__(cls, values)
        self.kind = kind
        return self


def pair_distance(
    source: AffineRef,
    sink: AffineRef,
    nest_vars: Sequence[str],
):
    """Distance vector from ``source`` to ``sink`` over ``nest_vars``.

    Returns a tuple of per-loop distances, the :data:`INDEPENDENT`
    sentinel when the references provably never overlap, or None when
    the pair cannot be analyzed exactly (the caller must then assume an
    unknown dependence).  A distance of d in loop v means: the element
    ``source`` touches at iteration I is touched by ``sink`` d
    iterations of v later.
    """
    if source.array.name != sink.array.name:
        raise ValueError(
            "distance requested for references to different arrays"
        )
    if len(source.subscripts) != len(sink.subscripts):
        # Same array name, different ranks: inconsistently aliased
        # declarations.  Zipping would silently drop the extra
        # subscripts and "answer"; refuse explicitly instead.
        return None
    distances = {v: 0 for v in nest_vars}
    constrained: set[str] = set()
    for sub_a, sub_b in zip(source.subscripts, sink.subscripts):
        if sub_a.terms != sub_b.terms:
            return None  # structurally misaligned (e.g. A[i][j] vs A[j][i])
        if not sub_a.terms:
            if sub_a.const != sub_b.const:
                return INDEPENDENT  # disjoint constant slices
            continue
        if len(sub_a.terms) != 1:
            return None  # coupled subscripts (i+j) — give up, conservative
        ((variable, coeff),) = sub_a.terms.items()
        if variable not in distances:
            return None  # varies with a non-nest variable; can't reason
        diff = sub_a.const - sub_b.const
        if diff % coeff:
            return INDEPENDENT  # stride never bridges the offset
        distance = diff // coeff
        if variable in constrained and distances[variable] != distance:
            return INDEPENDENT  # inconsistent constraints: no solution
        distances[variable] = distance
        constrained.add(variable)
    return tuple(distances[v] for v in nest_vars)


def distance_vectors(
    nest_vars: Sequence[str],
    statements: Iterable[Statement],
) -> Optional[list[tuple[int, ...]]]:
    """All dependence distance vectors among ``statements``.

    Returns None as soon as any potentially-dependent pair cannot be
    analyzed — the conservative "don't transform" answer.  The result
    is deduplicated (a vector appears once per distinct value and
    kind, not once per reference pair that produces it).
    """
    reads_by_array: dict[str, list[AffineRef]] = {}
    writes_by_array: dict[str, list[AffineRef]] = {}
    for statement in statements:
        for ref in statement.reads:
            if not _sortable(ref, reads_by_array, writes_by_array, False):
                return None
        for ref in statement.writes:
            if not _sortable(ref, reads_by_array, writes_by_array, True):
                return None

    vectors: list[tuple[int, ...]] = []
    seen: set[tuple] = set()
    for array_name, writes in writes_by_array.items():
        others = writes + reads_by_array.get(array_name, [])
        for write in writes:
            for other in others:
                if other is write:
                    continue
                distance = pair_distance(write, other, nest_vars)
                if distance is None:
                    return None
                if distance == INDEPENDENT:
                    continue
                if any(distance):
                    vector = _normalize(distance, other in writes)
                    key = (tuple(vector), vector.kind)
                    if key not in seen:
                        seen.add(key)
                        vectors.append(vector)
    return vectors


def _normalize(
    vector: tuple[int, ...], sink_is_write: bool
) -> DistanceVector:
    """Canonicalize a write→other vector to execution order.

    A negative leading distance means the dependence actually flows
    from the other reference to this one (e.g. ``d[k] = d[k+1]`` is a
    backward recurrence whose source is the *read*); flipping the
    vector flips the orientation, so the kind is derived from which
    reference executes first rather than always calling it flow.
    """
    for component in vector:
        if component > 0:
            # write happens first: write→write is output, write→read flow
            return DistanceVector(
                vector, "output" if sink_is_write else "flow"
            )
        if component < 0:
            # other reference happens first: read→write is anti
            return DistanceVector(
                (-c for c in vector),
                "output" if sink_is_write else "anti",
            )
    return DistanceVector(vector, "output" if sink_is_write else "flow")


def _sortable(
    ref: Reference,
    reads: dict[str, list[AffineRef]],
    writes: dict[str, list[AffineRef]],
    is_write: bool,
) -> bool:
    """File an affine ref into the maps; reject unanalyzable writes.

    Non-analyzable *reads* of arrays nobody writes are harmless; any
    other non-affine reference forces the conservative answer.
    """
    from repro.compiler.ir.refs import RegisterRef, ScalarRef

    if isinstance(ref, ScalarRef) or isinstance(ref, RegisterRef):
        return True  # scalars are privatizable work registers here
    if isinstance(ref, AffineRef):
        target = writes if is_write else reads
        target.setdefault(ref.array.name, []).append(ref)
        return True
    # Non-affine references: a read is tolerated only if the array is
    # never written in the nest — checked lazily by returning False for
    # writes and accepting reads (writes_by_array won't contain it).
    return not is_write


def permutation_legal(
    vectors: Optional[list[tuple[int, ...]]],
    permutation: Sequence[int],
) -> bool:
    """Is reordering the nest by ``permutation`` legal?

    ``permutation[k]`` is the original position of the loop placed at
    level k.  None vectors (unknown dependence) are illegal; otherwise
    each permuted vector must stay lexicographically non-negative.
    """
    if vectors is None:
        return False
    for vector in vectors:
        permuted = tuple(vector[p] for p in permutation)
        for component in permuted:
            if component > 0:
                break
            if component < 0:
                return False
    return True

"""Data-footprint estimation for tiling decisions.

Tiling pays off when the data a nest traverses between reuses exceeds
the cache (capacity misses); the optimizer compares this estimate
against the L1 size to decide whether to tile and with what tile size.
"""

from __future__ import annotations

from typing import Iterable

from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef
from repro.compiler.ir.stmts import Statement

__all__ = ["nest_footprint_bytes", "ref_footprint_bytes"]


def ref_footprint_bytes(ref: AffineRef, trip_counts: dict[str, int]) -> int:
    """Bytes of distinct data ``ref`` touches over the whole nest.

    Approximated per dimension: a subscript spanning loop variables
    covers the product of their trip counts (clamped to the dimension's
    extent); constant subscripts cover one element.
    """
    array = ref.array
    elements = 1
    for dim, subscript in enumerate(ref.subscripts):
        span = 1
        for variable in subscript.variables:
            span *= max(trip_counts.get(variable, 1), 1)
        elements *= min(span, array.shape[dim])
    return elements * array.element_size


def nest_footprint_bytes(
    nest_loops: list[Loop], statements: Iterable[Statement]
) -> int:
    """Total distinct bytes the nest touches (affine references only).

    Multiple references to the same array are merged by taking the
    largest single-reference footprint per array — adjacent stencil
    taps mostly overlap, so summing them would badly overestimate.
    """
    trip_counts = {
        loop.var: loop.trip_count_estimate() for loop in nest_loops
    }
    per_array: dict[str, int] = {}
    for statement in statements:
        for ref in statement.references:
            if isinstance(ref, AffineRef):
                footprint = ref_footprint_bytes(ref, trip_counts)
                name = ref.array.name
                if footprint > per_array.get(name, 0):
                    per_array[name] = footprint
    return sum(per_array.values())

"""Distance histograms and miss-ratio curves (MRCs).

One pass over a trace through the :class:`~repro.locality.stack.\
ReuseStackEngine` yields the full stack-distance histogram; by Mattson's
stack-inclusion property that histogram *is* the miss profile of every
fully-associative LRU cache at once: an access with stack distance ``d``
hits in any LRU cache of capacity > ``d`` lines and misses in every
smaller one.  So

    misses(C) = cold accesses + #{accesses with distance >= C}

exactly — not approximately — which is pinned against direct
:class:`repro.memory.cache.SetAssociativeCache` simulation by
``tests/locality/test_mrc_cache_agreement.py``.

:func:`distance_histogram` has a columnar fast path over
:class:`~repro.isa.packed.PackedTrace` (ints compared against ints, no
per-record :class:`Instruction` objects), mirroring the simulator's
packed hot loop; both paths produce identical histograms.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.isa.instructions import Opcode
from repro.isa.packed import AnyTrace, PackedTrace
from repro.locality.stack import COLD, ReuseStackEngine

__all__ = ["DistanceHistogram", "MissRatioCurve", "distance_histogram"]

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)


class DistanceHistogram:
    """Counts of accesses per exact LRU stack distance, plus cold misses."""

    __slots__ = ("counts", "cold")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.cold = 0

    def record(self, distance: int) -> None:
        if distance == COLD:
            self.cold += 1
        else:
            counts = self.counts
            counts[distance] = counts.get(distance, 0) + 1

    @property
    def total(self) -> int:
        """Total accesses recorded (reuses plus cold)."""
        return self.cold + sum(self.counts.values())

    @property
    def max_distance(self) -> int:
        """Largest observed distance, or -1 if no reuse occurred."""
        return max(self.counts) if self.counts else -1

    def merged(self, other: "DistanceHistogram") -> "DistanceHistogram":
        merged = DistanceHistogram()
        merged.cold = self.cold + other.cold
        counts = dict(self.counts)
        for distance, count in other.counts.items():
            counts[distance] = counts.get(distance, 0) + count
        merged.counts = counts
        return merged

    def bucketed(self, buckets: tuple[int, ...]) -> dict[str, int]:
        """Bucket the distances under the legacy histogram labels.

        Returns the same ``{"<=N": ..., ">last": ..., "cold": ...}``
        mapping as the original ``reuse_distance_histogram``.
        """
        labels = [f"<={b}" for b in buckets]
        histogram = {label: 0 for label in labels}
        histogram[f">{buckets[-1]}"] = 0
        histogram["cold"] = self.cold
        for distance, count in self.counts.items():
            for bucket, label in zip(buckets, labels):
                if distance <= bucket:
                    histogram[label] += count
                    break
            else:
                histogram[f">{buckets[-1]}"] += count
        return histogram

    def curve(self) -> "MissRatioCurve":
        return MissRatioCurve(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceHistogram):
            return NotImplemented
        return self.cold == other.cold and self.counts == other.counts

    def __repr__(self) -> str:
        return (
            f"DistanceHistogram({self.total} accesses, {self.cold} cold, "
            f"max distance {self.max_distance})"
        )


class MissRatioCurve:
    """Predicted fully-associative LRU miss counts for *every* capacity.

    Built once from a :class:`DistanceHistogram`; each query is a binary
    search over the distinct observed distances.
    """

    __slots__ = ("total", "cold", "_distances", "_at_least")

    def __init__(self, histogram: DistanceHistogram):
        self.total = histogram.total
        self.cold = histogram.cold
        self._distances = sorted(histogram.counts)
        # _at_least[i] = accesses with distance >= _distances[i]
        suffix = 0
        at_least = [0] * len(self._distances)
        for i in range(len(self._distances) - 1, -1, -1):
            suffix += histogram.counts[self._distances[i]]
            at_least[i] = suffix
        self._at_least = at_least

    def misses(self, cache_lines: int) -> int:
        """Predicted misses in an LRU cache of ``cache_lines`` lines.

        ``cache_lines`` of 0 means every access misses.
        """
        if cache_lines <= 0:
            return self.total
        index = bisect_left(self._distances, cache_lines)
        reuse_misses = (
            self._at_least[index] if index < len(self._distances) else 0
        )
        return self.cold + reuse_misses

    def miss_ratio(self, cache_lines: int) -> float:
        """Predicted miss ratio at ``cache_lines``; 0.0 on an empty trace."""
        if self.total == 0:
            return 0.0
        return self.misses(cache_lines) / self.total

    def sizes(self) -> list[int]:
        """Capacities (in lines) where the curve steps down.

        The miss count changes only at ``distance + 1`` boundaries;
        capacity 1 is always included as the left edge.
        """
        steps = {1}
        steps.update(d + 1 for d in self._distances)
        return sorted(steps)

    def as_points(self) -> list[tuple[int, float]]:
        """The full curve as (capacity, miss ratio) at its step points."""
        return [(size, self.miss_ratio(size)) for size in self.sizes()]

    def __repr__(self) -> str:
        return (
            f"MissRatioCurve({self.total} accesses, "
            f"{len(self._distances)} distinct distances)"
        )


def distance_histogram(
    trace: AnyTrace,
    line_size: int = 32,
    engine: ReuseStackEngine | None = None,
) -> DistanceHistogram:
    """Stack-distance histogram of a trace's memory references, one pass.

    ``engine`` lets callers thread one LRU stack through several trace
    segments (see :mod:`repro.locality.profile`); by default a fresh
    stack is used, i.e. the first touch of every line is cold.
    """
    engine = engine or ReuseStackEngine()
    histogram = DistanceHistogram()
    access = engine.access
    record = histogram.record
    if isinstance(trace, PackedTrace):
        ops, args, _pcs = trace.columns()
        for op, arg in zip(ops, args):
            if op == _LOAD or op == _STORE:
                record(access(arg // line_size))
    else:
        for inst in trace.instructions:
            if inst.is_memory:
                record(access(inst.arg // line_size))
    return histogram

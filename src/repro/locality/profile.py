"""Per-region locality profiles: the distance stream split at markers.

A selective trace alternates between compiler-optimized (gate OFF) and
hardware-assisted (gate ON) regions, delimited by HW_ON/HW_OFF records.
:func:`split_profiles` runs ONE LRU stack over the whole trace — reuse
distances spanning a region boundary are real distances, exactly what a
physical cache would see — but bins the distance of each access into
the histogram of the region it occurs in.  The result is one miss-ratio
curve per dynamic region, which is what the model-driven gating policy
(:mod:`repro.hwopt.policy`) consumes.

Traces without markers produce a single region carrying the initial
gate state, so the same entry point profiles base and optimized traces
too.  Both trace forms are supported; the packed path never
materializes instruction objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Opcode
from repro.isa.packed import AnyTrace, PackedTrace
from repro.locality.mrc import DistanceHistogram, MissRatioCurve
from repro.locality.stack import ReuseStackEngine

__all__ = ["RegionProfile", "LocalityProfile", "split_profiles"]

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_HW_ON = int(Opcode.HW_ON)
_HW_OFF = int(Opcode.HW_OFF)


@dataclass
class RegionProfile:
    """Locality of one dynamic region (a span between two markers)."""

    index: int
    gate_on: bool
    #: Record offset of the region's first instruction in the trace.
    start: int
    histogram: DistanceHistogram = field(default_factory=DistanceHistogram)

    @property
    def memory_refs(self) -> int:
        return self.histogram.total

    def curve(self) -> MissRatioCurve:
        return self.histogram.curve()


@dataclass
class LocalityProfile:
    """All region profiles of one trace, in execution order."""

    trace_name: str
    line_size: int
    regions: list[RegionProfile]

    def occupied_regions(self) -> list[RegionProfile]:
        """Regions that actually issued memory references."""
        return [r for r in self.regions if r.memory_refs]

    def state_histogram(self, gate_on: bool) -> DistanceHistogram:
        """Merged histogram of every region in the given gate state."""
        merged = DistanceHistogram()
        for region in self.regions:
            if region.gate_on == gate_on:
                merged = merged.merged(region.histogram)
        return merged

    def total_histogram(self) -> DistanceHistogram:
        """Whole-trace histogram (equals a direct unsegmented pass)."""
        merged = DistanceHistogram()
        for region in self.regions:
            merged = merged.merged(region.histogram)
        return merged


def split_profiles(
    trace: AnyTrace,
    line_size: int = 32,
    initially_on: bool = False,
) -> LocalityProfile:
    """Profile a trace per region, single pass, shared LRU stack.

    ``initially_on`` is the gate state before the first marker; the
    selective convention is OFF (the program starts in compiler mode,
    matching ``simulate_trace(..., initially_on=False)``).
    """
    engine = ReuseStackEngine()
    access = engine.access
    regions: list[RegionProfile] = [RegionProfile(0, initially_on, 0)]
    record = regions[0].histogram.record
    gate_on = initially_on
    if isinstance(trace, PackedTrace):
        ops, args, _pcs = trace.columns()
        for offset, (op, arg) in enumerate(zip(ops, args)):
            if op == _LOAD or op == _STORE:
                record(access(arg // line_size))
            elif op == _HW_ON or op == _HW_OFF:
                gate_on = op == _HW_ON
                region = RegionProfile(len(regions), gate_on, offset)
                regions.append(region)
                record = region.histogram.record
    else:
        for offset, inst in enumerate(trace.instructions):
            op = inst.op
            if op is Opcode.LOAD or op is Opcode.STORE:
                record(access(inst.arg // line_size))
            elif op is Opcode.HW_ON or op is Opcode.HW_OFF:
                gate_on = op is Opcode.HW_ON
                region = RegionProfile(len(regions), gate_on, offset)
                regions.append(region)
                record = region.histogram.record
    return LocalityProfile(trace.name, line_size, regions)

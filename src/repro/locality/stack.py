"""Mattson LRU-stack engine with a Fenwick-tree index.

The classic way to obtain exact LRU stack (reuse) distances is to keep
the lines in a recency-ordered list and, on each access, count how many
entries sit above the touched line — O(stack depth) per access, which is
what the original ``reuse_distance_histogram`` did and why it was
quadratic on reuse-heavy traces.

This engine uses the standard timestamp + Fenwick/binary-indexed-tree
formulation (Bennett & Kruskal / Almási et al.): every line remembers
the timestamp of its most recent access, and a Fenwick tree over
timestamps holds a 1 at exactly the positions that are *currently* some
line's most recent access.  The stack distance of an access is then the
number of set positions *after* the line's previous timestamp — one
prefix-sum query, O(log T) where T is the live timeline span.

The timeline is compacted whenever it fills: live lines are renumbered
``1..M`` in recency order and the capacity is resized to twice the live
line count.  Each access therefore costs O(log M) amortized (M =
distinct lines seen so far), for O(N log M) over an N-reference trace —
against O(N·M) for the list scan.

Distances are 0-based: 0 means the line was the most recently used
(immediate reuse), matching the OrderedDict-position convention of the
previous implementation.  A first touch returns :data:`COLD` (-1).
"""

from __future__ import annotations

__all__ = ["COLD", "ReuseStackEngine"]

#: Sentinel distance for a first touch (compulsory / cold access).
COLD = -1

_MIN_CAPACITY = 1024


class ReuseStackEngine:
    """Exact LRU stack distances, one :meth:`access` call per reference."""

    __slots__ = ("_tree", "_capacity", "_time", "_last")

    def __init__(self) -> None:
        self._capacity = _MIN_CAPACITY
        self._tree = [0] * (self._capacity + 1)
        self._time = 0  # last timestamp handed out (1-based positions)
        self._last: dict[int, int] = {}  # line -> its latest timestamp

    @property
    def live_lines(self) -> int:
        """Distinct lines seen so far (the LRU stack depth)."""
        return len(self._last)

    def access(self, line: int) -> int:
        """Record one access; return its stack distance (or :data:`COLD`).

        The distance is the number of *distinct other* lines accessed
        since the previous access to ``line`` — equivalently the line's
        0-based depth in the LRU stack at the moment of the access.
        """
        if self._time >= self._capacity:
            self._compact()
        tree = self._tree
        now = self._time + 1
        self._time = now
        last = self._last
        prev = last.get(line)
        if prev is None:
            distance = COLD
        else:
            # prefix(prev) = live lines whose latest access is <= prev
            # (including this line itself), so the lines *above* it on
            # the stack are the remainder.
            prefix = 0
            i = prev
            while i > 0:
                prefix += tree[i]
                i -= i & -i
            distance = len(last) - prefix
            # Clear the stale position.
            i = prev
            capacity = self._capacity
            while i <= capacity:
                tree[i] -= 1
                i += i & -i
        # Mark the new most-recent position.
        i = now
        capacity = self._capacity
        while i <= capacity:
            tree[i] += 1
            i += i & -i
        last[line] = now
        return distance

    def depth(self, line: int) -> int:
        """Current stack depth of ``line`` without touching it (or COLD)."""
        prev = self._last.get(line)
        if prev is None:
            return COLD
        tree = self._tree
        prefix = 0
        i = prev
        while i > 0:
            prefix += tree[i]
            i -= i & -i
        return len(self._last) - prefix

    def _compact(self) -> None:
        """Renumber live lines 1..M in recency order; resize the tree.

        Amortized cost: a compaction of M live lines is paid for by the
        >= M accesses that filled the timeline since the previous one.
        """
        order = sorted(self._last, key=self._last.__getitem__)
        live = len(order)
        capacity = _MIN_CAPACITY
        while capacity < 2 * live:
            capacity *= 2
        tree = [0] * (capacity + 1)
        last = {}
        for position, line in enumerate(order, start=1):
            last[line] = position
            # Point update; building all-ones incrementally is O(M log M),
            # dominated by the sort above.
            i = position
            while i <= capacity:
                tree[i] += 1
                i += i & -i
        self._tree = tree
        self._capacity = capacity
        self._time = live
        self._last = last

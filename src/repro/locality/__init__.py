"""Quantitative locality modeling: reuse distances and miss-ratio curves.

The paper's framework decides *where* cache optimization pays off; this
subsystem supplies the quantitative model behind that decision:

* :class:`ReuseStackEngine` — a Mattson LRU stack indexed by a Fenwick
  tree, giving exact stack (reuse) distances in O(N log M) for an
  N-reference trace over M distinct lines;
* :func:`distance_histogram` / :class:`MissRatioCurve` — one trace
  traversal yields the predicted fully-associative LRU miss count for
  *every* cache capacity at once (Mattson's stack-inclusion property;
  bit-exact against direct cache simulation);
* :func:`split_profiles` — the distance stream split at ON/OFF markers
  into per-region profiles, feeding the model-driven gating policy in
  :mod:`repro.hwopt.policy`.
"""

from repro.locality.mrc import (
    DistanceHistogram,
    MissRatioCurve,
    distance_histogram,
)
from repro.locality.profile import (
    LocalityProfile,
    RegionProfile,
    split_profiles,
)
from repro.locality.stack import COLD, ReuseStackEngine

__all__ = [
    "COLD",
    "DistanceHistogram",
    "LocalityProfile",
    "MissRatioCurve",
    "RegionProfile",
    "ReuseStackEngine",
    "distance_histogram",
    "split_profiles",
]

"""Deterministic fault injection for the sweep scheduler.

The resilience layer (run store, retry/timeout scheduler, resume) is
only trustworthy if every recovery path is exercised, the same way the
static verifier proved the compiler: by deliberately breaking things.
This module injects four failure modes into chosen worker cells of a
sweep grid:

* ``raise``   — the cell raises :class:`FaultInjected` before running;
* ``hang``    — the cell sleeps far past any sane per-cell timeout, so
  the scheduler must kill it;
* ``exit``    — the worker process dies via :func:`os._exit` without
  reporting anything (simulating an OOM kill or segfault);
* ``corrupt`` — the cell runs normally but its run-store entry is
  written corrupted, so resume-time checksum verification must reject
  it and recompute.

Faults are described by a compact spec string, settable via the
``REPRO_FAULTS`` environment variable or the ``--faults`` CLI flag::

    kind:benchmark:config[:times][;kind:benchmark:config[:times]...]

``benchmark`` and ``config`` may be ``*`` (match any).  ``times``
bounds how many *attempts* of a matching cell are sabotaged (default:
all of them) — ``exit:vpenta:*:1`` kills only attempt 0 of every
vpenta cell, so bounded retry recovers; ``exit:vpenta:*`` keeps
killing, so retries exhaust into a structured
:class:`~repro.core.parallel.CellFailure`.

Injection is deterministic: whether a fault fires depends only on the
(benchmark, config, attempt) triple, never on timing or randomness, so
every recovery test is reproducible.  Execution faults fire only inside
worker processes (the in-process fallback path strips the plan — a
parent-process ``os._exit`` would kill the whole sweep rather than one
cell); ``corrupt`` fires in the parent at store-write time.

The second half of this module is the *network* fault vocabulary used
by the chaos proxy (:mod:`repro.service.chaos`, ``tools/chaos_proxy``):
``drop`` (connection closed on accept), ``stall`` (the response stream
freezes mid-flight), and ``truncate`` (the response is cut after N
bytes — mid-NDJSON-event by construction).  Like execution faults,
network faults are deterministic: whether a connection is sabotaged
depends only on its 0-based accept index, via ``every``-th matching.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runstore import RunStore

__all__ = [
    "EXECUTION_KINDS",
    "FAULT_KINDS",
    "FAULTS_ENV",
    "NETWORK_KINDS",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "NetworkFault",
    "NetworkFaultPlan",
    "corrupt_stored_entry",
]

FAULTS_ENV = "REPRO_FAULTS"

RAISE = "raise"
HANG = "hang"
EXIT = "exit"
CORRUPT = "corrupt"

#: Kinds applied inside a worker, before the cell's simulations run.
EXECUTION_KINDS = (RAISE, HANG, EXIT)
FAULT_KINDS = EXECUTION_KINDS + (CORRUPT,)

#: Exit status of an ``exit``-faulted worker; chosen to be obviously
#: deliberate in scheduler logs and tests.
EXIT_STATUS = 23

#: How long a ``hang`` fault sleeps.  Any realistic per-cell timeout is
#: orders of magnitude shorter, so the scheduler must kill the worker.
HANG_SECONDS = 3600.0


class FaultInjected(RuntimeError):
    """Raised by a ``raise`` fault inside a sabotaged worker cell."""


@dataclass(frozen=True)
class Fault:
    """One fault-spec entry."""

    kind: str
    benchmark: str  # benchmark name or "*"
    config: str  # machine configuration name or "*"
    times: Optional[int] = None  # sabotage attempts [0, times); None = all

    def matches(self, benchmark: str, config: str, attempt: int) -> bool:
        if self.benchmark not in ("*", benchmark):
            return False
        if self.config not in ("*", config):
            return False
        return self.times is None or attempt < self.times

    def spec(self) -> str:
        times = "" if self.times is None else f":{self.times}"
        return f"{self.kind}:{self.benchmark}:{self.config}{times}"


def _parse_entry(entry: str) -> Fault:
    fields = [field.strip() for field in entry.split(":")]
    if not 3 <= len(fields) <= 4:
        raise ValueError(
            f"bad fault entry {entry!r}: expected "
            "kind:benchmark:config[:times]"
        )
    kind = fields[0]
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    times: Optional[int] = None
    if len(fields) == 4 and fields[3] != "*":
        try:
            times = int(fields[3])
        except ValueError:
            raise ValueError(
                f"bad fault entry {entry!r}: times must be an integer or '*'"
            ) from None
        if times < 1:
            raise ValueError(
                f"bad fault entry {entry!r}: times must be >= 1"
            )
    return Fault(kind, fields[1], fields[2], times)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed set of fault entries; empty plans inject nothing."""

    entries: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        if not spec or not spec.strip():
            return cls()
        return cls(
            tuple(
                _parse_entry(entry)
                for entry in spec.split(";")
                if entry.strip()
            )
        )

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """Parse ``REPRO_FAULTS``; unset/empty means no faults."""
        return cls.parse(os.environ.get(FAULTS_ENV))

    def __bool__(self) -> bool:
        return bool(self.entries)

    def spec(self) -> str:
        return ";".join(entry.spec() for entry in self.entries)

    def _find(
        self, kinds: tuple[str, ...], benchmark: str, config: str, attempt: int
    ) -> Optional[Fault]:
        for fault in self.entries:
            if fault.kind in kinds and fault.matches(benchmark, config, attempt):
                return fault
        return None

    def execution_fault(
        self, benchmark: str, config: str, attempt: int
    ) -> Optional[Fault]:
        return self._find(EXECUTION_KINDS, benchmark, config, attempt)

    def store_fault(
        self, benchmark: str, config: str, attempt: int
    ) -> Optional[Fault]:
        return self._find((CORRUPT,), benchmark, config, attempt)

    def apply_execution(self, benchmark: str, config: str, attempt: int) -> None:
        """Fire any matching execution fault (called inside the worker)."""
        fault = self.execution_fault(benchmark, config, attempt)
        if fault is None:
            return
        if fault.kind == RAISE:
            raise FaultInjected(
                f"injected fault {fault.spec()!r} on {benchmark}/{config} "
                f"attempt {attempt}"
            )
        if fault.kind == HANG:
            import time

            time.sleep(HANG_SECONDS)
            return
        if fault.kind == EXIT:
            os._exit(EXIT_STATUS)
        raise AssertionError(f"unhandled fault kind {fault.kind!r}")


# ----------------------------------------------------------------------
# network faults (chaos proxy vocabulary)

DROP = "drop"
STALL = "stall"
TRUNCATE = "truncate"

#: Kinds the chaos proxy can inject into a TCP connection.
NETWORK_KINDS = (DROP, STALL, TRUNCATE)

#: Default stall length: long enough that any sane client read timeout
#: fires first, short enough that proxy threads drain promptly.
DEFAULT_STALL_SECONDS = 30.0

#: Default truncation point, in response bytes.  Small enough to land
#: inside the HTTP headers or the first NDJSON event of any response.
DEFAULT_TRUNCATE_BYTES = 120


@dataclass(frozen=True)
class NetworkFault:
    """One chaos-proxy fault entry.

    ``every`` selects which connections are sabotaged: the fault fires
    on every ``every``-th accepted connection (0-based index, so
    ``every=2`` hits connections 1, 3, 5, ... and the first connection
    is always clean).  ``amount`` is the stall length in seconds for
    ``stall`` and the byte offset for ``truncate``; ``drop`` ignores
    it.
    """

    kind: str
    every: int = 1
    amount: float = 0.0

    def fires(self, connection: int) -> bool:
        return (connection + 1) % self.every == 0

    def spec(self) -> str:
        if self.kind == DROP:
            return f"{self.kind}:{self.every}"
        return f"{self.kind}:{self.every}:{self.amount:g}"


def _parse_network_entry(entry: str) -> NetworkFault:
    fields = [field.strip() for field in entry.split(":")]
    if not 1 <= len(fields) <= 3:
        raise ValueError(
            f"bad network fault entry {entry!r}: expected "
            "kind[:every[:amount]]"
        )
    kind = fields[0]
    if kind not in NETWORK_KINDS:
        raise ValueError(
            f"unknown network fault kind {kind!r}; expected one of "
            f"{NETWORK_KINDS}"
        )
    every = 1
    if len(fields) >= 2 and fields[1]:
        try:
            every = int(fields[1])
        except ValueError:
            raise ValueError(
                f"bad network fault entry {entry!r}: every must be an "
                "integer"
            ) from None
        if every < 1:
            raise ValueError(
                f"bad network fault entry {entry!r}: every must be >= 1"
            )
    amount = (
        DEFAULT_STALL_SECONDS
        if kind == STALL
        else float(DEFAULT_TRUNCATE_BYTES)
    )
    if len(fields) == 3 and fields[2]:
        try:
            amount = float(fields[2])
        except ValueError:
            raise ValueError(
                f"bad network fault entry {entry!r}: amount must be a "
                "number"
            ) from None
        if amount < 0:
            raise ValueError(
                f"bad network fault entry {entry!r}: amount must be >= 0"
            )
    return NetworkFault(kind, every, amount)


@dataclass(frozen=True)
class NetworkFaultPlan:
    """A parsed set of network fault entries for the chaos proxy.

    Spec syntax mirrors :class:`FaultPlan`::

        kind[:every[:amount]][;kind[:every[:amount]]...]

    e.g. ``drop:3`` (every 3rd connection refused), ``stall:2:5``
    (every 2nd connection stalls 5 s mid-response), ``truncate:1:200``
    (every response cut after 200 bytes).  The first matching entry
    wins when several fire on one connection.
    """

    entries: tuple[NetworkFault, ...] = ()

    @classmethod
    def parse(cls, spec: Optional[str]) -> "NetworkFaultPlan":
        if not spec or not spec.strip():
            return cls()
        return cls(
            tuple(
                _parse_network_entry(entry)
                for entry in spec.split(";")
                if entry.strip()
            )
        )

    def __bool__(self) -> bool:
        return bool(self.entries)

    def spec(self) -> str:
        return ";".join(entry.spec() for entry in self.entries)

    def fault_for(self, connection: int) -> Optional[NetworkFault]:
        """The fault to apply to the ``connection``-th accept, if any."""
        for fault in self.entries:
            if fault.fires(connection):
                return fault
        return None


def corrupt_stored_entry(store: "RunStore", key: str) -> None:
    """Flip one payload byte of a stored entry in place.

    Used by the ``corrupt`` fault after a successful store write: the
    file keeps its valid header and embedded checksum, so only the
    checksum verification on read can catch the damage.
    """
    path = store.path_for(key)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty store entry {key!r}")
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))

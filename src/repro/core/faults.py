"""Deterministic fault injection for the sweep scheduler.

The resilience layer (run store, retry/timeout scheduler, resume) is
only trustworthy if every recovery path is exercised, the same way the
static verifier proved the compiler: by deliberately breaking things.
This module injects four failure modes into chosen worker cells of a
sweep grid:

* ``raise``   — the cell raises :class:`FaultInjected` before running;
* ``hang``    — the cell sleeps far past any sane per-cell timeout, so
  the scheduler must kill it;
* ``exit``    — the worker process dies via :func:`os._exit` without
  reporting anything (simulating an OOM kill or segfault);
* ``corrupt`` — the cell runs normally but its run-store entry is
  written corrupted, so resume-time checksum verification must reject
  it and recompute.

Faults are described by a compact spec string, settable via the
``REPRO_FAULTS`` environment variable or the ``--faults`` CLI flag::

    kind:benchmark:config[:times][;kind:benchmark:config[:times]...]

``benchmark`` and ``config`` may be ``*`` (match any).  ``times``
bounds how many *attempts* of a matching cell are sabotaged (default:
all of them) — ``exit:vpenta:*:1`` kills only attempt 0 of every
vpenta cell, so bounded retry recovers; ``exit:vpenta:*`` keeps
killing, so retries exhaust into a structured
:class:`~repro.core.parallel.CellFailure`.

Injection is deterministic: whether a fault fires depends only on the
(benchmark, config, attempt) triple, never on timing or randomness, so
every recovery test is reproducible.  Execution faults fire only inside
worker processes (the in-process fallback path strips the plan — a
parent-process ``os._exit`` would kill the whole sweep rather than one
cell); ``corrupt`` fires in the parent at store-write time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runstore import RunStore

__all__ = [
    "EXECUTION_KINDS",
    "FAULT_KINDS",
    "FAULTS_ENV",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "corrupt_stored_entry",
]

FAULTS_ENV = "REPRO_FAULTS"

RAISE = "raise"
HANG = "hang"
EXIT = "exit"
CORRUPT = "corrupt"

#: Kinds applied inside a worker, before the cell's simulations run.
EXECUTION_KINDS = (RAISE, HANG, EXIT)
FAULT_KINDS = EXECUTION_KINDS + (CORRUPT,)

#: Exit status of an ``exit``-faulted worker; chosen to be obviously
#: deliberate in scheduler logs and tests.
EXIT_STATUS = 23

#: How long a ``hang`` fault sleeps.  Any realistic per-cell timeout is
#: orders of magnitude shorter, so the scheduler must kill the worker.
HANG_SECONDS = 3600.0


class FaultInjected(RuntimeError):
    """Raised by a ``raise`` fault inside a sabotaged worker cell."""


@dataclass(frozen=True)
class Fault:
    """One fault-spec entry."""

    kind: str
    benchmark: str  # benchmark name or "*"
    config: str  # machine configuration name or "*"
    times: Optional[int] = None  # sabotage attempts [0, times); None = all

    def matches(self, benchmark: str, config: str, attempt: int) -> bool:
        if self.benchmark not in ("*", benchmark):
            return False
        if self.config not in ("*", config):
            return False
        return self.times is None or attempt < self.times

    def spec(self) -> str:
        times = "" if self.times is None else f":{self.times}"
        return f"{self.kind}:{self.benchmark}:{self.config}{times}"


def _parse_entry(entry: str) -> Fault:
    fields = [field.strip() for field in entry.split(":")]
    if not 3 <= len(fields) <= 4:
        raise ValueError(
            f"bad fault entry {entry!r}: expected "
            "kind:benchmark:config[:times]"
        )
    kind = fields[0]
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    times: Optional[int] = None
    if len(fields) == 4 and fields[3] != "*":
        try:
            times = int(fields[3])
        except ValueError:
            raise ValueError(
                f"bad fault entry {entry!r}: times must be an integer or '*'"
            ) from None
        if times < 1:
            raise ValueError(
                f"bad fault entry {entry!r}: times must be >= 1"
            )
    return Fault(kind, fields[1], fields[2], times)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed set of fault entries; empty plans inject nothing."""

    entries: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        if not spec or not spec.strip():
            return cls()
        return cls(
            tuple(
                _parse_entry(entry)
                for entry in spec.split(";")
                if entry.strip()
            )
        )

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """Parse ``REPRO_FAULTS``; unset/empty means no faults."""
        return cls.parse(os.environ.get(FAULTS_ENV))

    def __bool__(self) -> bool:
        return bool(self.entries)

    def spec(self) -> str:
        return ";".join(entry.spec() for entry in self.entries)

    def _find(
        self, kinds: tuple[str, ...], benchmark: str, config: str, attempt: int
    ) -> Optional[Fault]:
        for fault in self.entries:
            if fault.kind in kinds and fault.matches(benchmark, config, attempt):
                return fault
        return None

    def execution_fault(
        self, benchmark: str, config: str, attempt: int
    ) -> Optional[Fault]:
        return self._find(EXECUTION_KINDS, benchmark, config, attempt)

    def store_fault(
        self, benchmark: str, config: str, attempt: int
    ) -> Optional[Fault]:
        return self._find((CORRUPT,), benchmark, config, attempt)

    def apply_execution(self, benchmark: str, config: str, attempt: int) -> None:
        """Fire any matching execution fault (called inside the worker)."""
        fault = self.execution_fault(benchmark, config, attempt)
        if fault is None:
            return
        if fault.kind == RAISE:
            raise FaultInjected(
                f"injected fault {fault.spec()!r} on {benchmark}/{config} "
                f"attempt {attempt}"
            )
        if fault.kind == HANG:
            import time

            time.sleep(HANG_SECONDS)
            return
        if fault.kind == EXIT:
            os._exit(EXIT_STATUS)
        raise AssertionError(f"unhandled fault kind {fault.kind!r}")


def corrupt_stored_entry(store: "RunStore", key: str) -> None:
    """Flip one payload byte of a stored entry in place.

    Used by the ``corrupt`` fault after a successful store write: the
    file keeps its valid header and embedded checksum, so only the
    checksum verification on read can catch the damage.
    """
    path = store.path_for(key)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty store entry {key!r}")
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))

"""Configuration sweeps: one benchmark set across machine variants."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Optional

from repro.core.experiment import BenchmarkRun, run_benchmark
from repro.core.versions import MECHANISMS, BenchmarkCodes
from repro.memory.stats import HierarchySnapshot
from repro.params import MachineParams

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Results of one benchmark set on one machine configuration."""

    machine_name: str
    runs: dict[str, BenchmarkRun] = field(default_factory=dict)

    def improvements(self, version_key: str) -> dict[str, float]:
        """Per-benchmark % improvement for one version."""
        return {
            name: run.improvement(version_key)
            for name, run in self.runs.items()
        }

    def average_improvement(
        self, version_key: str, category: Optional[str] = None
    ) -> float:
        """Average % improvement, optionally within one category."""
        values = [
            run.improvement(version_key)
            for run in self.runs.values()
            if category is None or run.category == category
        ]
        if not values:
            raise ValueError(
                f"no runs match version {version_key!r} category {category!r}"
            )
        return mean(values)

    def total_memory(self, version_key: str) -> Optional[HierarchySnapshot]:
        """Hierarchy counters of one version summed over all benchmarks.

        Uses ``HierarchySnapshot.__add__`` (field-wise merge), so the
        aggregate is exact — e.g. the sweep-wide L1D miss rate of the
        Selective version is ``total.l1d.miss_rate``.  ``None`` for an
        empty sweep.
        """
        snapshots = [
            run.results[version_key].memory for run in self.runs.values()
        ]
        if not snapshots:
            return None
        return sum(snapshots)


def run_sweep(
    codes: list[BenchmarkCodes],
    machine: MachineParams,
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
) -> SweepResult:
    """Run every benchmark's versions on one machine configuration."""
    sweep = SweepResult(machine.name)
    for benchmark_codes in codes:
        sweep.runs[benchmark_codes.name] = run_benchmark(
            benchmark_codes, machine, mechanisms, classify_misses
        )
    return sweep

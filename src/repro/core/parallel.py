"""Process-pool sweep scheduler.

The paper's evaluation grid — 13 benchmarks × 6 machine configurations
× 11 version/mechanism simulations — is embarrassingly parallel: every
cell is a fresh machine instance timing a pre-generated trace.  This
module fans that grid out over a :class:`~concurrent.futures.\
ProcessPoolExecutor`.

Design points:

* **Chunking** — one task is one (benchmark × configuration) cell, i.e.
  all 11 simulations of :func:`repro.core.experiment.run_benchmark`.
  That amortizes the pickling of the benchmark's three traces over a
  few seconds of simulation work.
* **Slim payloads** — tasks carry a copy of :class:`BenchmarkCodes`
  stripped of its compiler reports (which drag whole IR graphs through
  pickle); the packed columnar traces serialize as flat buffers.
* **Determinism** — results are keyed ``(config_name, benchmark_name)``
  and reassembled in submission order, so the output is independent of
  worker scheduling and identical to a sequential run.
* **Job resolution** — ``jobs=None`` means the ``REPRO_JOBS``
  environment variable if set, else ``os.cpu_count()``; any explicit
  value is clamped to at least 1.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional

from repro.core.experiment import BenchmarkRun, run_benchmark, simulate_trace
from repro.core.versions import MECHANISMS, BenchmarkCodes
from repro.params import MachineParams
from repro.workloads.base import WorkloadSpec

__all__ = ["resolve_jobs", "run_grid", "run_benchmark_parallel"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Number of worker processes to use.

    ``None`` consults the ``REPRO_JOBS`` environment variable, falling
    back to ``os.cpu_count()``.  The result is always at least 1.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(int(jobs), 1)


def _slim_codes(codes: BenchmarkCodes) -> BenchmarkCodes:
    """Copy ``codes`` without the compiler reports.

    The reports reference IR nodes (loops, expression trees) that are
    expensive to pickle and that no simulation cell needs.
    """
    return BenchmarkCodes(
        name=codes.name,
        category=codes.category,
        scale=codes.scale,
        base_trace=codes.base_trace,
        optimized_trace=codes.optimized_trace,
        selective_trace=codes.selective_trace,
        optimization=None,
        markers=None,
        regions=None,
    )


def _run_cell(task) -> BenchmarkRun:
    """Worker entry: simulate all versions of one benchmark × config."""
    codes, machine, mechanisms, classify_misses = task
    return run_benchmark(codes, machine, mechanisms, classify_misses)


def _simulate_cell(task):
    """Worker entry: one (trace, machine, mechanism) simulation."""
    trace, machine, mechanism, initially_on, classify_misses = task
    return simulate_trace(trace, machine, mechanism, initially_on, classify_misses)


def run_grid(
    specs: Iterable[WorkloadSpec],
    machines: dict[str, MachineParams],
    prepare: Callable[[WorkloadSpec], BenchmarkCodes],
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[tuple[str, str], BenchmarkRun]:
    """Fan the (benchmark × configuration) grid over a process pool.

    ``prepare`` runs in the parent, once per benchmark (optimizer +
    trace generation, exactly as the sequential driver does); each
    prepared benchmark's cells are submitted immediately, so workers
    simulate one benchmark while the parent prepares the next.

    Returns results keyed ``(config_name, benchmark_name)``.  The
    ``progress`` callback is invoked only from the calling thread —
    once per benchmark during preparation and once per cell as its
    result is collected — so it needs no synchronization.
    """
    workers = resolve_jobs(jobs)
    results: dict[tuple[str, str], BenchmarkRun] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {}
        for spec in specs:
            if progress:
                progress(f"preparing {spec.name}")
            codes = _slim_codes(prepare(spec))
            for config_name, machine in machines.items():
                futures[(config_name, spec.name)] = pool.submit(
                    _run_cell, (codes, machine, mechanisms, classify_misses)
                )
        for key, future in futures.items():
            results[key] = future.result()
            if progress:
                progress(f"  {key[1]} on {key[0]} done")
    return results


def run_benchmark_parallel(
    codes: BenchmarkCodes,
    machine: MachineParams,
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
    jobs: Optional[int] = None,
) -> BenchmarkRun:
    """Parallel drop-in for :func:`repro.core.experiment.run_benchmark`.

    Fans the individual version simulations (finer-grained than
    :func:`run_grid`'s cells) over a pool; used by the single-benchmark
    CLI path where there is only one grid cell to split.  Results are
    reassembled in the canonical version-key order, so the returned
    :class:`BenchmarkRun` is indistinguishable from a sequential one.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1:
        return run_benchmark(codes, machine, mechanisms, classify_misses)
    plan: list[tuple[str, tuple]] = [
        ("base", (codes.base_trace, machine, None, True, classify_misses)),
        ("pure_sw", (codes.optimized_trace, machine, None, True, classify_misses)),
    ]
    for mechanism in mechanisms:
        plan.append(
            (
                f"pure_hw/{mechanism}",
                (codes.base_trace, machine, mechanism, True, False),
            )
        )
        plan.append(
            (
                f"combined/{mechanism}",
                (codes.optimized_trace, machine, mechanism, True, False),
            )
        )
        plan.append(
            (
                f"selective/{mechanism}",
                (codes.selective_trace, machine, mechanism, False, False),
            )
        )
    run = BenchmarkRun(codes.name, codes.category, machine.name)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [(key, pool.submit(_simulate_cell, task)) for key, task in plan]
        for key, future in futures:
            run.results[key] = future.result()
    return run

"""Fault-tolerant process scheduler for the sweep grid.

The paper's evaluation grid — 13 benchmarks × 6 machine configurations
× 11 version/mechanism simulations — is embarrassingly parallel: every
cell is a fresh machine instance timing a pre-generated trace.  This
module fans that grid out over worker processes, one process per cell,
and survives the ways long sweeps actually die:

* **Per-cell timeouts** — a hung worker (deadlock, runaway input) is
  killed at ``timeout`` seconds and the cell retried; a
  ``ProcessPoolExecutor`` cannot do this (``future.result(timeout=...)``
  abandons the worker but leaves it running), which is why the
  scheduler manages its own processes.
* **Bounded retry with exponential backoff** — crashed (``os._exit``,
  OOM kill, segfault), raising, and timed-out cells are retried up to
  ``retries`` times, waiting ``backoff * 2**attempt`` (capped) between
  attempts.
* **Graceful degradation** — a cell that exhausts its retries becomes a
  structured :class:`CellFailure` in the result grid and the sweep
  *completes* with partial results (``on_failure="record"``, the
  default) instead of throwing hours of finished cells away;
  ``on_failure="raise"`` aborts with :class:`SweepInterrupted` for
  callers that need all-or-nothing semantics.  If worker processes
  cannot be spawned at all, cells fall back to in-process execution.
* **Crash-safe checkpointing** — with a :class:`~repro.core.runstore.\
  RunStore` attached, every completed cell is persisted (atomic write,
  embedded checksum) the moment it arrives, and ``resume=True`` skips
  cells whose stored results verify, so a killed sweep restarts where
  it left off and ends bit-identical to an uninterrupted run.
* **Determinism** — results are keyed ``(config_name, benchmark_name)``
  and reassembled in submission order by the callers, so the output is
  independent of worker scheduling, retries, and resume boundaries.

Cells are prepared lazily: the parent runs the optimizer + trace
generation for benchmark *k+1* while workers simulate benchmark *k*,
and at most a few benchmarks' traces are in flight at once.  Recovery
paths are exercised end-to-end by the fault-injection harness
(:mod:`repro.core.faults`, ``REPRO_FAULTS``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Union

from repro.core.experiment import (
    BenchmarkRun,
    run_benchmark,
    simulate_trace,
)
from repro.core.faults import FaultPlan, corrupt_stored_entry
from repro.core.runstore import RunStore, trace_checksum
from repro.core.versions import MECHANISMS, BenchmarkCodes
from repro.params import MachineParams
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.sweeptrace import SweepTimeline

__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "CellAttempt",
    "CellFailure",
    "GridValue",
    "SweepInterrupted",
    "execute_cell",
    "resolve_jobs",
    "run_benchmark_parallel",
    "run_grid",
]

#: Default attempt budget: 1 initial try + 2 retries per cell.
DEFAULT_RETRIES = 2
#: First retry delay in seconds; doubles per attempt, capped below.
DEFAULT_BACKOFF = 0.25
_BACKOFF_CAP = 5.0
#: Upper bound on one scheduler poll, so deadlines are checked promptly.
_POLL_SECONDS = 0.5


def resolve_jobs(jobs: Optional[int], default: Optional[int] = None) -> int:
    """Number of worker processes to use.

    ``None`` consults the ``REPRO_JOBS`` environment variable, falling
    back to ``default`` (when given) and then ``os.cpu_count()``.
    Non-integer and non-positive values (from any source) raise
    ``ValueError`` — silently clamping ``REPRO_JOBS=0`` to one worker
    used to hide misconfigured CI environments.

    ``default`` exists for long-lived callers (the sweep service) that
    resolve a baseline worker count once at startup and then thread an
    explicit per-request override as a *parameter*; mutating
    ``REPRO_JOBS`` process-globally to influence nested calls is never
    required.
    """
    source = "jobs"
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            source = "REPRO_JOBS"
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        elif default is not None:
            source = "default"
            jobs = default
        else:
            jobs = os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"{source} must be a positive integer, got {jobs}")
    return jobs


@dataclass(frozen=True)
class CellFailure:
    """A grid cell that exhausted its retry budget.

    Recorded in the result grid in place of a :class:`BenchmarkRun` so
    the sweep can complete with partial results; ``kind`` is ``error``
    (the cell raised), ``timeout`` (killed at the per-cell deadline),
    ``crash`` (the worker died without reporting), ``cancelled`` (the
    caller's cancel event killed it — :func:`execute_cell` only), or
    ``degraded`` (the service's circuit breaker refused to execute it).
    ``duration`` is the
    wall-clock seconds from the cell's first launch to its permanent
    failure (all attempts plus backoff waits), so failure reports and
    the sweep timeline show what the dead cell actually cost.
    """

    benchmark: str
    config: str
    kind: str
    attempts: int
    message: str
    duration: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.benchmark} on {self.config}: {self.kind} after "
            f"{self.attempts} attempt(s) in {self.duration:.1f}s — "
            f"{self.message}"
        )


class SweepInterrupted(RuntimeError):
    """A cell failed permanently under ``on_failure="raise"``.

    Completed cells already checkpointed to the run store survive the
    abort; rerunning with ``resume=True`` picks up from them.
    """

    def __init__(self, failure: CellFailure):
        super().__init__(failure.describe())
        self.failure = failure


#: What one grid slot holds once the sweep finishes.
GridValue = Union[BenchmarkRun, CellFailure]


@dataclass(frozen=True)
class CellAttempt:
    """Outcome of one execution attempt of a single cell.

    ``status`` is ``ok``, ``error``, ``crash``, or ``timeout``;
    ``fallback`` marks an attempt that ran in-process because no worker
    could be spawned.  Attempts are numbered from 1.
    """

    attempt: int
    status: str
    seconds: float
    message: str = ""
    fallback: bool = False


def execute_cell(
    fn: Callable,
    make_task: Callable[[int, Optional[FaultPlan]], tuple],
    *,
    benchmark: str,
    config: str,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    plan: Optional[FaultPlan] = None,
    on_attempt: Optional[Callable[[CellAttempt], None]] = None,
    cancel: Optional["threading.Event"] = None,
):
    """Run one cell in its own worker process with full resilience.

    The single-cell counterpart of :class:`_Scheduler`: the cell runs in
    a child process (killable at ``timeout``), crashed/raising/timed-out
    attempts are retried up to ``retries`` times with exponential
    backoff, an unspawnable worker falls back to in-process execution
    (fault plan stripped, exactly like the grid scheduler), and a cell
    that exhausts its budget returns a structured :class:`CellFailure`
    instead of raising.

    ``fn`` must be a picklable module-level worker entry;
    ``make_task(attempt, plan)`` builds its (picklable) task tuple per
    attempt so deterministic fault injection sees the attempt number.
    ``on_attempt`` is invoked from the calling thread after every
    attempt (including the successful one) — the sweep service streams
    these as per-cell job events.

    ``cancel`` (a ``threading.Event``, settable from any thread) aborts
    the cell cooperatively: a set event kills the in-flight worker
    process within one poll period, skips any pending backoff wait, and
    returns a :class:`CellFailure` of kind ``"cancelled"`` — never
    retried.  This is the kill path job cancellation, per-job deadlines,
    and graceful drain all ride.

    Returns ``(value_or_CellFailure, attempts)``.  Blocking: callers
    that need concurrency run it from threads or worker pools.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    attempts: list[CellAttempt] = []

    def note(record: CellAttempt) -> CellAttempt:
        attempts.append(record)
        if on_attempt is not None:
            on_attempt(record)
        return record

    def cancelled_failure(started: float) -> CellFailure:
        note(
            CellAttempt(
                attempt + 1,
                "cancelled",
                time.monotonic() - started,
                "cancelled",
            )
        )
        return CellFailure(
            benchmark=benchmark,
            config=config,
            kind="cancelled",
            attempts=attempt + 1,
            message="cell cancelled",
            duration=time.monotonic() - first_started,
        )

    first_started = time.monotonic()
    attempt = 0
    while True:
        started = time.monotonic()
        if cancel is not None and cancel.is_set():
            return cancelled_failure(started), attempts
        try:
            proc, conn = _start_worker(fn, make_task(attempt, plan))
        except OSError:
            # Broken pool: run in-process with faults stripped (an
            # os._exit fired here would kill the whole server).
            try:
                value = fn(make_task(attempt, None))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                status: str = "error"
                message = f"{type(exc).__name__}: {exc}"
            else:
                note(
                    CellAttempt(
                        attempt + 1,
                        "ok",
                        time.monotonic() - started,
                        fallback=True,
                    )
                )
                return value, attempts
        else:
            deadline = (
                started + timeout if timeout is not None else None
            )
            while True:
                wait_for = _POLL_SECONDS
                if deadline is not None:
                    wait_for = min(
                        wait_for, max(0.0, deadline - time.monotonic())
                    )
                ready = _connection_wait([conn], timeout=wait_for)
                if ready:
                    try:
                        status, value = conn.recv()
                    except (EOFError, OSError):
                        proc.join(1.0)
                        status, value = (
                            "crash",
                            f"worker died without reporting "
                            f"(exit code {proc.exitcode})",
                        )
                    break
                if cancel is not None and cancel.is_set():
                    _stop_worker(proc)
                    conn.close()
                    return cancelled_failure(started), attempts
                if deadline is not None and time.monotonic() >= deadline:
                    _stop_worker(proc)
                    status, value = (
                        "timeout",
                        f"cell exceeded the {timeout:g}s per-cell timeout",
                    )
                    break
            conn.close()
            proc.join(1.0)
            if status == "ok":
                note(CellAttempt(attempt + 1, "ok", time.monotonic() - started))
                return value, attempts
            message = value
        note(
            CellAttempt(
                attempt + 1, status, time.monotonic() - started, message
            )
        )
        attempt += 1
        if attempt > retries:
            failure = CellFailure(
                benchmark=benchmark,
                config=config,
                kind=status,
                attempts=attempt,
                message=message,
                duration=time.monotonic() - first_started,
            )
            return failure, attempts
        delay = min(backoff * (2 ** (attempt - 1)), _BACKOFF_CAP)
        if cancel is not None:
            if cancel.wait(delay):
                return cancelled_failure(time.monotonic()), attempts
        else:
            time.sleep(delay)


def _slim_codes(codes: BenchmarkCodes) -> BenchmarkCodes:
    """Copy ``codes`` without the compiler reports.

    The reports reference IR nodes (loops, expression trees) that are
    expensive to pickle and that no simulation cell needs.
    """
    return BenchmarkCodes(
        name=codes.name,
        category=codes.category,
        scale=codes.scale,
        base_trace=codes.base_trace,
        optimized_trace=codes.optimized_trace,
        selective_trace=codes.selective_trace,
        optimization=None,
        markers=None,
        regions=None,
    )


def _run_cell(task) -> BenchmarkRun:
    """Worker entry: simulate all versions of one benchmark × config.

    ``plan``/``attempt`` drive deterministic fault injection; a ``None``
    plan (the normal case, and always the in-process fallback) runs the
    cell untouched.
    """
    codes, machine, mechanisms, classify_misses, config_name, attempt, plan = task
    if plan is not None:
        plan.apply_execution(codes.name, config_name, attempt)
    return run_benchmark(codes, machine, mechanisms, classify_misses)


def _simulate_cell(task):
    """Worker entry: one (trace, machine, mechanism) simulation."""
    trace, machine, mechanism, initially_on, classify_misses = task
    return simulate_trace(trace, machine, mechanism, initially_on, classify_misses)


def _cell_worker(conn, fn, task) -> None:
    """Child-process main: run ``fn(task)``, report through the pipe."""
    try:
        result = fn(task)
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


def _mp_context():
    """Prefer fork (cheap, no re-import); everything is spawn-safe too."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _start_worker(fn, task):
    """Spawn one worker; returns (process, parent_conn).

    Module-level so tests can monkeypatch it to simulate a broken pool
    (``OSError`` here triggers the in-process fallback).
    """
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_cell_worker, args=(child_conn, fn, task), daemon=True
    )
    try:
        proc.start()
    except BaseException:
        parent_conn.close()
        raise
    finally:
        child_conn.close()
    return proc, parent_conn


def _stop_worker(proc) -> None:
    proc.terminate()
    proc.join(1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(1.0)


class _Cell:
    """Mutable per-cell scheduling state."""

    __slots__ = (
        "key",
        "benchmark",
        "config",
        "payload",
        "attempt",
        "eligible_at",
        "first_started",
    )

    def __init__(self, key, benchmark, config, payload):
        self.key = key
        self.benchmark = benchmark
        self.config = config
        self.payload = payload  # (codes, machine, mechanisms, classify)
        self.attempt = 0
        self.eligible_at = 0.0
        self.first_started: Optional[float] = None  # monotonic, 1st launch

    def task(self, plan: Optional[FaultPlan]):
        return self.payload + (self.config, self.attempt, plan)

    def elapsed(self) -> float:
        """Wall-clock seconds since this cell first started running."""
        if self.first_started is None:
            return 0.0
        return time.monotonic() - self.first_started


class _Scheduler:
    """Runs cells on worker processes with retry/timeout/fallback."""

    def __init__(
        self,
        *,
        workers: int,
        timeout: Optional[float],
        retries: int,
        backoff: float,
        plan: FaultPlan,
        on_failure: str,
        notify: Callable[[str], None],
        on_success: Callable[[_Cell, BenchmarkRun], None],
        timeline: Optional["SweepTimeline"] = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if on_failure not in ("record", "raise"):
            raise ValueError(
                f"on_failure must be 'record' or 'raise', got {on_failure!r}"
            )
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.plan = plan
        self.on_failure = on_failure
        self.notify = notify
        self.on_success = on_success
        self.timeline = timeline
        self.results: dict[tuple[str, str], GridValue] = {}
        self._retry: list[_Cell] = []
        self._running: dict[
            object, tuple[_Cell, object, Optional[float], float]
        ] = {}

    # ------------------------------------------------------------------

    def run(self, cells: Iterator[_Cell]) -> dict[tuple[str, str], GridValue]:
        pending_source = True
        try:
            while True:
                now = time.monotonic()
                while len(self._running) < self.workers:
                    cell = self._eligible(now)
                    if cell is None and pending_source:
                        cell = next(cells, None)
                        if cell is None:
                            pending_source = False
                    if cell is None:
                        break
                    self._launch(cell)
                    now = time.monotonic()
                if not self._running:
                    if not pending_source and not self._retry:
                        break
                    if self._retry:
                        # Everything is backing off; sleep to eligibility.
                        wake = min(c.eligible_at for c in self._retry)
                        time.sleep(max(0.0, min(wake - now, _BACKOFF_CAP)))
                    continue
                self._collect()
        finally:
            for cell, proc, _, _ in self._running.values():
                _stop_worker(proc)
            self._running.clear()
        return self.results

    # ------------------------------------------------------------------

    def _record_span(
        self, cell: _Cell, started: float, status: str, **annotations
    ) -> None:
        """Append one attempt span to the sweep timeline, if attached."""
        if self.timeline is None:
            return
        self.timeline.record(
            cell.benchmark,
            cell.benchmark,
            cell.config,
            start=started - self.timeline.origin,
            status=status,
            attempt=cell.attempt + 1,
            **annotations,
        )

    # ------------------------------------------------------------------

    def _eligible(self, now: float) -> Optional[_Cell]:
        for index, cell in enumerate(self._retry):
            if cell.eligible_at <= now:
                return self._retry.pop(index)
        return None

    def _launch(self, cell: _Cell) -> None:
        started = time.monotonic()
        if cell.first_started is None:
            cell.first_started = started
        try:
            proc, conn = _start_worker(_run_cell, cell.task(self.plan or None))
        except OSError as exc:
            self._run_in_process(cell, exc)
            return
        deadline = (
            started + self.timeout if self.timeout is not None else None
        )
        self._running[conn] = (cell, proc, deadline, started)

    def _run_in_process(self, cell: _Cell, cause: OSError) -> None:
        """Broken-pool fallback: run the cell in the parent.

        Faults are stripped — an ``os._exit`` fired in the parent would
        kill the whole sweep, which is exactly what the fallback exists
        to avoid.
        """
        self.notify(
            f"  worker unavailable ({cause}); running "
            f"{cell.benchmark} on {cell.config} in-process"
        )
        started = time.monotonic()
        if cell.first_started is None:
            cell.first_started = started
        try:
            value = _run_cell(cell.task(None))
        except Exception as exc:  # noqa: BLE001
            message = f"{type(exc).__name__}: {exc}"
            self._record_span(
                cell, started, "error", fallback="in-process", message=message
            )
            self._attempt_failed(cell, "error", message)
            return
        self._record_span(cell, started, "ok", fallback="in-process")
        self._succeeded(cell, value)

    def _collect(self) -> None:
        wait_for = _POLL_SECONDS
        now = time.monotonic()
        deadlines = [
            d for _, _, d, _ in self._running.values() if d is not None
        ]
        if deadlines:
            wait_for = min(wait_for, max(0.0, min(deadlines) - now))
        if self._retry and len(self._running) < self.workers:
            # A free slot is waiting on a backoff: wake when it expires.
            wake = min(c.eligible_at for c in self._retry)
            wait_for = min(wait_for, max(0.0, wake - now))
        ready = _connection_wait(list(self._running), timeout=wait_for)
        for conn in ready:
            cell, proc, _, started = self._running.pop(conn)
            try:
                status, value = conn.recv()
            except (EOFError, OSError):
                proc.join(1.0)
                status, value = (
                    "crash",
                    f"worker died without reporting "
                    f"(exit code {proc.exitcode})",
                )
            conn.close()
            proc.join(1.0)
            if status == "ok":
                self._record_span(cell, started, "ok")
                self._succeeded(cell, value)
            elif status == "error":
                self._record_span(cell, started, "error", message=value)
                self._attempt_failed(cell, "error", value)
            else:
                self._record_span(cell, started, "crash", message=value)
                self._attempt_failed(cell, "crash", value)
        now = time.monotonic()
        for conn in [
            conn
            for conn, (_, _, deadline, _) in self._running.items()
            if deadline is not None and now >= deadline
        ]:
            cell, proc, _, started = self._running.pop(conn)
            _stop_worker(proc)
            conn.close()
            self._record_span(
                cell, started, "timeout", timeout_seconds=self.timeout
            )
            self._attempt_failed(
                cell,
                "timeout",
                f"cell exceeded the {self.timeout:g}s per-cell timeout",
            )

    # ------------------------------------------------------------------

    def _succeeded(self, cell: _Cell, value: BenchmarkRun) -> None:
        self.results[cell.key] = value
        self.notify(f"  {cell.benchmark} on {cell.config} done")
        self.on_success(cell, value)

    def _attempt_failed(self, cell: _Cell, kind: str, message: str) -> None:
        cell.attempt += 1
        if cell.attempt <= self.retries:
            delay = min(
                self.backoff * (2 ** (cell.attempt - 1)), _BACKOFF_CAP
            )
            cell.eligible_at = time.monotonic() + delay
            self._retry.append(cell)
            self.notify(
                f"  {cell.benchmark} on {cell.config} {kind} "
                f"({message}); retrying in {delay:.2f}s "
                f"(attempt {cell.attempt + 1}/{self.retries + 1})"
            )
            return
        failure = CellFailure(
            benchmark=cell.benchmark,
            config=cell.config,
            kind=kind,
            attempts=cell.attempt,
            message=message,
            duration=cell.elapsed(),
        )
        self.notify(f"  FAILED {failure.describe()}")
        if self.on_failure == "raise":
            raise SweepInterrupted(failure)
        self.results[cell.key] = failure


def run_grid(
    specs: Iterable[WorkloadSpec],
    machines: dict[str, MachineParams],
    prepare: Callable[[WorkloadSpec], BenchmarkCodes],
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    store: Union[RunStore, str, Path, None] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    faults: Optional[FaultPlan] = None,
    on_failure: str = "record",
    timeline: Optional["SweepTimeline"] = None,
) -> dict[tuple[str, str], GridValue]:
    """Fan the (benchmark × configuration) grid over worker processes.

    ``prepare`` runs in the parent, once per benchmark (optimizer +
    trace generation, exactly as the sequential driver does); cells are
    pulled lazily, so workers simulate one benchmark while the parent
    prepares the next.

    Returns results keyed ``(config_name, benchmark_name)``; a cell
    that exhausted its retries maps to a :class:`CellFailure` (under
    the default ``on_failure="record"``).  With a ``store``, completed
    cells are checkpointed as they arrive and — when ``resume`` is true
    — cells whose stored result verifies are not re-executed.  The
    ``progress`` callback is invoked only from the calling thread.

    A :class:`~repro.telemetry.sweeptrace.SweepTimeline` passed as
    ``timeline`` collects wall-clock spans for every prepare step and
    every cell attempt (including retries, timeouts, in-process
    fallbacks, and store restores) for Chrome-trace export.
    """
    workers = resolve_jobs(jobs)
    notify = progress if progress is not None else lambda message: None
    plan = faults if faults is not None else FaultPlan.from_env()
    if isinstance(store, (str, Path)):
        store = RunStore(store)

    results: dict[tuple[str, str], GridValue] = {}
    store_keys: dict[tuple[str, str], str] = {}

    def cells() -> Iterator[_Cell]:
        from repro.core.experiment import expected_version_keys

        expected = expected_version_keys(mechanisms)
        for spec in specs:
            notify(f"preparing {spec.name}")
            prep_start = time.monotonic()
            codes = _slim_codes(prepare(spec))
            if timeline is not None:
                timeline.record(
                    f"prepare {spec.name}",
                    spec.name,
                    "prepare",
                    start=prep_start - timeline.origin,
                    status="prepare",
                )
            digests = (
                [
                    trace_checksum(codes.base_trace),
                    trace_checksum(codes.optimized_trace),
                    trace_checksum(codes.selective_trace),
                ]
                if store is not None
                else []
            )
            for config_name, machine in machines.items():
                key = (config_name, spec.name)
                if store is not None:
                    store_keys[key] = store.cell_key(
                        "cell",
                        spec.name,
                        config_name,
                        scale=codes.scale,
                        machine=machine,
                        mechanisms=mechanisms,
                        classify_misses=classify_misses,
                        digests=digests,
                    )
                    if resume:
                        cached = store.get(store_keys[key])
                        if (
                            isinstance(cached, BenchmarkRun)
                            and list(cached.results) == expected
                        ):
                            results[key] = cached
                            if timeline is not None:
                                timeline.restored(spec.name, config_name)
                            notify(
                                f"  {spec.name} on {config_name} done "
                                "(restored from store)"
                            )
                            continue
                yield _Cell(
                    key,
                    spec.name,
                    config_name,
                    (codes, machine, mechanisms, classify_misses),
                )

    def checkpoint(cell: _Cell, run: BenchmarkRun) -> None:
        if store is None:
            return
        skey = store_keys[cell.key]
        store.put(
            skey,
            run,
            meta={
                "kind": "cell",
                "benchmark": cell.benchmark,
                "config": cell.config,
                "scale": cell.payload[0].scale.name,
            },
        )
        fault = plan.store_fault(cell.benchmark, cell.config, cell.attempt)
        if fault is not None:
            corrupt_stored_entry(store, skey)
            notify(
                f"  injected store corruption on {cell.benchmark} "
                f"on {cell.config} ({fault.spec()})"
            )

    scheduler = _Scheduler(
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        plan=plan,
        on_failure=on_failure,
        notify=notify,
        on_success=checkpoint,
        timeline=timeline,
    )
    results.update(scheduler.run(cells()))
    return results


def run_benchmark_parallel(
    codes: BenchmarkCodes,
    machine: MachineParams,
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
    jobs: Optional[int] = None,
) -> BenchmarkRun:
    """Parallel drop-in for :func:`repro.core.experiment.run_benchmark`.

    Fans the individual version simulations (finer-grained than
    :func:`run_grid`'s cells) over a pool; used by the single-benchmark
    CLI path where there is only one grid cell to split.  Results are
    reassembled in the canonical version-key order, so the returned
    :class:`BenchmarkRun` is indistinguishable from a sequential one.
    """
    from concurrent.futures import ProcessPoolExecutor

    workers = resolve_jobs(jobs)
    if workers <= 1:
        return run_benchmark(codes, machine, mechanisms, classify_misses)
    plan: list[tuple[str, tuple]] = [
        ("base", (codes.base_trace, machine, None, True, classify_misses)),
        ("pure_sw", (codes.optimized_trace, machine, None, True, classify_misses)),
    ]
    for mechanism in mechanisms:
        plan.append(
            (
                f"pure_hw/{mechanism}",
                (codes.base_trace, machine, mechanism, True, False),
            )
        )
        plan.append(
            (
                f"combined/{mechanism}",
                (codes.optimized_trace, machine, mechanism, True, False),
            )
        )
        plan.append(
            (
                f"selective/{mechanism}",
                (codes.selective_trace, machine, mechanism, False, False),
            )
        )
    run = BenchmarkRun(codes.name, codes.category, machine.name)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [(key, pool.submit(_simulate_cell, task)) for key, task in plan]
        for key, future in futures:
            run.results[key] = future.result()
    return run

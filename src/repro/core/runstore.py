"""Crash-safe on-disk store for completed sweep cells.

The evaluation grid (13 benchmarks × 6 configurations × 11 simulations
per cell, plus sensitivity sweeps) runs for minutes to hours; before
this store existed, nothing was persisted until the whole suite
finished, so one OOM-killed worker threw the entire sweep away.  The
store checkpoints every completed cell so a killed sweep resumes by
skipping verified-complete cells.

Design:

* **Content-addressed keys** — a cell's key is a digest over everything
  that determines its result: store format version, payload kind,
  benchmark, configuration name, workload scale, the full machine
  parameters, the mechanism tuple, the miss-classification flag, and
  the checksums of the input traces (:meth:`PackedTrace.checksum`).
  Change any input and the key changes, so stale entries can never be
  mistaken for current ones — there is no invalidation logic to get
  wrong.
* **Atomic writes** — entries are written to a temp file in the store
  directory and published with :func:`os.replace`, so a crash mid-write
  leaves either no entry or a complete one, never a torn file that a
  resume would trust.
* **Embedded checksums** — each entry carries a SHA-256 of its payload
  bytes; :meth:`RunStore.get` re-verifies on every read and treats any
  mismatch (bit rot, torn copy, deliberate corruption from the fault
  harness) as a miss, so a corrupt entry costs a recompute, never a
  wrong result.

Keys hash raw ``array('q')`` column bytes, so they are stable across
processes on one machine but not across byte orders — a store is a
local checkpoint, not a portable artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.isa.packed import AnyTrace, PackedTrace
from repro.params import MachineParams
from repro.workloads.base import Scale

__all__ = [
    "STORE_FORMAT",
    "RunStore",
    "ScrubReport",
    "StoreStats",
    "StoredEntry",
    "trace_checksum",
]

#: Bump to invalidate every existing entry (keys embed this version).
STORE_FORMAT = 1

_MAGIC = b"repro-runstore v1\n"
_SUFFIX = ".cell"


def trace_checksum(trace: AnyTrace) -> str:
    """Content digest of a trace in either representation.

    Object traces are packed first so both forms of the same stream
    digest identically.
    """
    if not isinstance(trace, PackedTrace):
        trace = PackedTrace.from_trace(trace)
    return trace.checksum()


@dataclass(frozen=True)
class StoredEntry:
    """One store file, as seen by ``repro runs``."""

    key: str
    path: Path
    size: int
    ok: bool
    error: str = ""
    meta: Optional[dict] = None

    @property
    def kind(self) -> str:
        return (self.meta or {}).get("kind", "?")

    @property
    def benchmark(self) -> str:
        return (self.meta or {}).get("benchmark", "?")

    @property
    def config(self) -> str:
        return (self.meta or {}).get("config", "?")


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of a ``repro runs --scrub`` pass over the store.

    ``corrupt`` lists the keys whose embedded sha256 (or header) failed
    re-verification; ``quarantined`` the subset moved aside into the
    store's ``quarantine/`` directory rather than left in place.
    """

    checked: int
    ok: int
    corrupt: tuple[str, ...]
    quarantined: tuple[str, ...]
    errors: dict

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def to_json(self) -> dict:
        return {
            "checked": self.checked,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "quarantined": list(self.quarantined),
            "errors": dict(self.errors),
        }


@dataclass(frozen=True)
class StoreStats:
    """Aggregate shape of a run store (``repro runs`` / ``/v1/status``).

    ``by_kind`` maps payload kind (``cell``, ``table2``, ...) to
    ``{"entries": n, "bytes": b}``; corrupt entries are counted under
    their header's kind when the header survived, else under ``"?"``.
    """

    entries: int
    bytes: int
    ok: int
    corrupt: int
    by_kind: dict

    def to_json(self) -> dict:
        return {
            "entries": self.entries,
            "bytes": self.bytes,
            "ok": self.ok,
            "corrupt": self.corrupt,
            "by_kind": {
                kind: dict(counts)
                for kind, counts in sorted(self.by_kind.items())
            },
        }

    @classmethod
    def from_entries(cls, entries: Iterable[StoredEntry]) -> "StoreStats":
        entries = list(entries)
        by_kind: dict[str, dict] = {}
        for entry in entries:
            bucket = by_kind.setdefault(
                entry.kind, {"entries": 0, "bytes": 0}
            )
            bucket["entries"] += 1
            bucket["bytes"] += entry.size
        return cls(
            entries=len(entries),
            bytes=sum(entry.size for entry in entries),
            ok=sum(1 for entry in entries if entry.ok),
            corrupt=sum(1 for entry in entries if not entry.ok),
            by_kind=by_kind,
        )


class RunStore:
    """Directory of checksummed, atomically-written result cells."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r})"

    # ------------------------------------------------------------------
    # keys

    def cell_key(
        self,
        kind: str,
        benchmark: str,
        config: str,
        *,
        scale: Scale,
        machine: MachineParams,
        mechanisms: tuple[str, ...] = (),
        classify_misses: bool = False,
        digests: Iterable[str] = (),
    ) -> str:
        """Deterministic content-addressed key for one grid cell."""
        identity = {
            "format": STORE_FORMAT,
            "kind": kind,
            "benchmark": benchmark,
            "config": config,
            "scale": dataclasses.asdict(scale),
            "machine": dataclasses.asdict(machine),
            "mechanisms": list(mechanisms),
            "classify_misses": bool(classify_misses),
            "digests": list(digests),
        }
        blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        digest = hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()
        return f"{kind}-{_slug(benchmark)}-{_slug(config)}-{digest}"

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    # ------------------------------------------------------------------
    # read/write

    def put(self, key: str, payload: Any, meta: Optional[dict] = None) -> Path:
        """Persist one cell atomically (temp file + rename)."""
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = dict(meta or {})
        header["sha256"] = hashlib.sha256(data).hexdigest()
        header["size"] = len(data)
        header["created"] = time.time()
        path = self.path_for(key)
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(json.dumps(header, sort_keys=True).encode())
                handle.write(b"\n")
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # publish failed; don't leave droppings
                tmp.unlink()
        return path

    def _read(self, key: str) -> tuple[Optional[dict], Any, str]:
        """(meta, payload, error); error is "" only on a verified read."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None, None, "missing"
        if not raw.startswith(_MAGIC):
            return None, None, "bad magic"
        body = raw[len(_MAGIC):]
        newline = body.find(b"\n")
        if newline < 0:
            return None, None, "truncated header"
        try:
            meta = json.loads(body[:newline])
        except ValueError:
            return None, None, "unparseable header"
        data = body[newline + 1:]
        if len(data) != meta.get("size"):
            return meta, None, (
                f"payload size mismatch: {len(data)} != {meta.get('size')}"
            )
        if hashlib.sha256(data).hexdigest() != meta.get("sha256"):
            return meta, None, "payload checksum mismatch"
        try:
            payload = pickle.loads(data)
        except Exception as exc:
            return meta, None, f"unpicklable payload: {exc}"
        return meta, payload, ""

    def get(self, key: str) -> Any:
        """The stored payload, or None if missing or failing verification.

        Corruption is deliberately indistinguishable from absence for
        callers: the sweep recomputes the cell either way.  ``repro
        runs`` surfaces the difference for humans via :meth:`entries`.
        """
        _, payload, error = self._read(key)
        return payload if not error else None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    # maintenance / listing

    def keys(self) -> list[str]:
        return sorted(
            path.name[: -len(_SUFFIX)]
            for path in self.root.glob(f"*{_SUFFIX}")
        )

    def entries(self) -> list[StoredEntry]:
        """Every entry, verified — what ``repro runs`` renders."""
        out = []
        for key in self.keys():
            meta, _, error = self._read(key)
            out.append(
                StoredEntry(
                    key=key,
                    path=self.path_for(key),
                    size=self.path_for(key).stat().st_size,
                    ok=not error,
                    error=error,
                    meta=meta,
                )
            )
        return out

    def stats(self) -> StoreStats:
        """Entry count, bytes on disk, and per-kind breakdown (verified)."""
        return StoreStats.from_entries(self.entries())

    def purge_corrupt(self) -> list[str]:
        """Delete entries failing verification; returns their keys."""
        removed = []
        for entry in self.entries():
            if not entry.ok:
                self.delete(entry.key)
                removed.append(entry.key)
        return removed

    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def scrub(self, quarantine: bool = False) -> ScrubReport:
        """Proactively re-verify every entry's embedded sha256.

        Reads normally detect corruption lazily — a rotted entry costs
        a recompute whenever it is next requested.  ``scrub`` walks the
        whole store up front (``repro runs --scrub``) so operators
        learn about damage before a sweep trips over it.  With
        ``quarantine=True`` corrupt entries are moved (atomic rename)
        into ``quarantine/`` under the store root, out of the key
        namespace but preserved for forensics; without it they are only
        reported.
        """
        corrupt: list[str] = []
        quarantined: list[str] = []
        errors: dict[str, str] = {}
        checked = 0
        for key in self.keys():
            checked += 1
            _, _, error = self._read(key)
            if not error:
                continue
            corrupt.append(key)
            errors[key] = error
            if quarantine:
                target_dir = self.quarantine_dir()
                target_dir.mkdir(parents=True, exist_ok=True)
                source = self.path_for(key)
                try:
                    os.replace(source, target_dir / source.name)
                except FileNotFoundError:
                    continue  # raced with a concurrent delete
                quarantined.append(key)
        return ScrubReport(
            checked=checked,
            ok=checked - len(corrupt),
            corrupt=tuple(corrupt),
            quarantined=tuple(quarantined),
            errors=errors,
        )


def _slug(text: str) -> str:
    """Filename-safe version of a benchmark/configuration name."""
    return "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in text
    ).strip("_") or "x"

"""Code-version preparation (paper Section 4.4).

For each benchmark three codes exist:

* **base** — the program as written, no locality transformations (the
  paper's O3-without-loop-nest-optimization build);
* **optimized** — the locality-optimized program (interchange, layout,
  tiling, unroll-and-jam, scalar replacement on every analyzable
  region), shared by the Pure-Software, Combined, and Selective
  versions;
* **selective** — the same optimization pipeline applied to a program
  that *first* received the region markers of Section 2, so the
  optimized code carries ON/OFF instructions at region boundaries
  (matching the paper's tool order: mark, transform, simulate).

Optimization is done once against the experiment's reference machine;
per the paper, the same optimized code is then run on every
sensitivity configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compiler.optimizer import LocalityOptimizer, OptimizationReport
from repro.compiler.regions.detect import RegionReport
from repro.compiler.regions.markers import MarkerReport, insert_markers
from repro.hwopt.controller import CacheBypassAssist, VictimCacheAssist
from repro.isa.packed import AnyTrace
from repro.memory.assist import AssistInterface
from repro.params import MachineParams
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import Scale, WorkloadSpec

__all__ = [
    "VERSIONS",
    "MECHANISMS",
    "BYPASS",
    "VICTIM",
    "BenchmarkCodes",
    "prepare_codes",
    "make_assist",
]

#: The four simulated versions of Section 4.3 (plus the baseline run
#: they are all normalized against).
VERSIONS = ("base", "pure_hw", "pure_sw", "combined", "selective")

BYPASS = "bypass"
VICTIM = "victim"
#: The paper's two evaluated mechanisms.
MECHANISMS = (BYPASS, VICTIM)
#: Extension mechanism (stream-buffer prefetching): the selective
#: framework is mechanism-agnostic, so any assist can be gated.
PREFETCH = "prefetch"


@dataclass
class BenchmarkCodes:
    """The three traces (plus compiler reports) of one benchmark.

    Traces are packed columnar by default (see ``prepare_codes``); the
    compiler reports are ``None`` on the slim copies the parallel
    engine ships to worker processes.
    """

    name: str
    category: str
    scale: Scale
    base_trace: AnyTrace
    optimized_trace: AnyTrace
    selective_trace: AnyTrace
    optimization: Optional[OptimizationReport]
    markers: Optional[MarkerReport]
    regions: Optional[RegionReport]


def prepare_codes(
    spec: WorkloadSpec,
    scale: Scale,
    machine: MachineParams,
    optimizer: Optional[LocalityOptimizer] = None,
) -> BenchmarkCodes:
    """Build, optimize, mark, and trace one benchmark.

    Workload builders are deterministic, so the three programs start
    from identical IR and identical address maps; they diverge only
    through the transformations applied.  Traces are emitted in packed
    columnar form, so full-suite runs never materialize per-instruction
    objects.
    """
    base_program = spec.instantiate(scale)
    base_trace = TraceGenerator(
        base_program, trace_name=f"{spec.name}/base"
    ).generate_packed()

    opt = optimizer or LocalityOptimizer(machine)

    optimized_program = spec.instantiate(scale)
    optimization_report = opt.optimize(optimized_program)
    optimized_trace = TraceGenerator(
        optimized_program, trace_name=f"{spec.name}/optimized"
    ).generate_packed()

    selective_program = spec.instantiate(scale)
    marker_report = insert_markers(selective_program)
    region_report = opt.optimize(selective_program).regions
    selective_trace = TraceGenerator(
        selective_program, trace_name=f"{spec.name}/selective"
    ).generate_packed()

    return BenchmarkCodes(
        name=spec.name,
        category=spec.category,
        scale=scale,
        base_trace=base_trace,
        optimized_trace=optimized_trace,
        selective_trace=selective_trace,
        optimization=optimization_report,
        markers=marker_report,
        regions=region_report,
    )


def make_assist(mechanism: str, machine: MachineParams) -> AssistInterface:
    """Instantiate the requested hardware mechanism."""
    if mechanism == BYPASS:
        return CacheBypassAssist(machine)
    if mechanism == VICTIM:
        return VictimCacheAssist(machine)
    if mechanism == PREFETCH:
        from repro.hwopt.prefetch import StreamBufferAssist

        return StreamBufferAssist(machine)
    raise ValueError(
        f"unknown mechanism {mechanism!r}; expected one of "
        f"{MECHANISMS + (PREFETCH,)}"
    )

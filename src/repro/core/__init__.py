"""The integrated selective framework and experiment drivers.

This package glues everything together the way Sections 4.3/4.4
describe: it builds the three code versions of each benchmark (base,
optimized, optimized+markers), attaches the chosen hardware mechanism,
and times the four simulated versions — *Pure Hardware*, *Pure
Software*, *Combined*, and *Selective* — against any machine
configuration.
"""

from repro.core.experiment import (
    BenchmarkRun,
    expected_version_keys,
    run_benchmark,
)
from repro.core.faults import FaultInjected, FaultPlan
from repro.core.parallel import (
    CellFailure,
    SweepInterrupted,
    resolve_jobs,
    run_benchmark_parallel,
    run_grid,
)
from repro.core.runner import SuiteResult, run_suite
from repro.core.runstore import RunStore, trace_checksum
from repro.core.sweep import SweepResult, run_sweep
from repro.core.versions import (
    BYPASS,
    MECHANISMS,
    VERSIONS,
    VICTIM,
    BenchmarkCodes,
    prepare_codes,
)

__all__ = [
    "BYPASS",
    "BenchmarkCodes",
    "BenchmarkRun",
    "CellFailure",
    "FaultInjected",
    "FaultPlan",
    "MECHANISMS",
    "RunStore",
    "SuiteResult",
    "SweepInterrupted",
    "SweepResult",
    "VERSIONS",
    "VICTIM",
    "expected_version_keys",
    "prepare_codes",
    "resolve_jobs",
    "run_benchmark",
    "run_benchmark_parallel",
    "run_grid",
    "run_suite",
    "run_sweep",
    "trace_checksum",
]

"""Running the four simulated versions of one benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.pipeline import CPUSimulator
from repro.cpu.results import SimulationResult
from repro.hwopt.gate import HardwareGate
from repro.isa.packed import AnyTrace
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import MachineParams
from repro.core.versions import MECHANISMS, BenchmarkCodes, make_assist

__all__ = [
    "BenchmarkRun",
    "expected_version_keys",
    "run_benchmark",
    "simulate_trace",
]


def expected_version_keys(
    mechanisms: tuple[str, ...] = MECHANISMS,
) -> list[str]:
    """Version keys of a complete run, in :func:`run_benchmark` order.

    The run store validates restored cells against this before trusting
    them, so an entry written under a different mechanism set (or a
    partial/stale payload) is recomputed rather than silently merged.
    """
    keys = ["base", "pure_sw"]
    for mechanism in mechanisms:
        keys += [
            f"pure_hw/{mechanism}",
            f"combined/{mechanism}",
            f"selective/{mechanism}",
        ]
    return keys


def simulate_trace(
    trace: AnyTrace,
    machine: MachineParams,
    mechanism: Optional[str] = None,
    initially_on: bool = True,
    classify_misses: bool = False,
    telemetry=None,
    vectorize: Optional[bool] = None,
) -> SimulationResult:
    """Time one trace on a fresh machine instance.

    ``mechanism`` None means no hardware assist at all; otherwise the
    named assist is attached with the given initial gate state (the
    Selective version starts OFF — marker placement assumes the program
    begins in compiler mode).

    ``telemetry`` optionally attaches a
    :class:`repro.telemetry.hub.Telemetry` hub; observation is passive,
    so the returned result is bit-identical either way.

    ``vectorize`` forwards to :class:`CPUSimulator`: None picks the
    fastest eligible path automatically, False pins the scalar loops,
    True forces the numpy kernels (benchmarks and equivalence tests).
    All three produce bit-identical results.
    """
    assist = make_assist(mechanism, machine) if mechanism else None
    hierarchy = MemoryHierarchy(machine, assist, classify_misses)
    gate = HardwareGate(assist, initially_on=initially_on)
    simulator = CPUSimulator(
        machine, hierarchy, gate, telemetry=telemetry, vectorize=vectorize
    )
    return simulator.run(trace)


@dataclass
class BenchmarkRun:
    """All version results for one benchmark on one configuration.

    ``results`` maps version keys to simulation results.  Version keys
    are "base", "pure_sw", and mechanism-qualified "pure_hw/bypass",
    "combined/victim", "selective/bypass", ...
    """

    benchmark: str
    category: str
    machine_name: str
    results: dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SimulationResult:
        return self.results["base"]

    def improvement(self, version_key: str) -> float:
        """% execution-cycle improvement of a version over the baseline
        (the paper's Figures 4-9 metric)."""
        return self.results[version_key].improvement_over(self.baseline)

    def version_keys(self) -> list[str]:
        return list(self.results)

    def is_complete(self, mechanisms: tuple[str, ...] = MECHANISMS) -> bool:
        """True iff every version of a full run is present, in order."""
        return list(self.results) == expected_version_keys(mechanisms)


def run_benchmark(
    codes: BenchmarkCodes,
    machine: MachineParams,
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
) -> BenchmarkRun:
    """Simulate base + the four versions (per mechanism) of a benchmark.

    Version → (code, hardware) wiring per Section 4.3:

    ==============  ================  =========================
    version         code              hardware mechanism
    ==============  ================  =========================
    base            base trace        none
    pure_hw         base trace        always on
    pure_sw         optimized trace   none
    combined        optimized trace   always on
    selective       selective trace   toggled by ON/OFF markers
    ==============  ================  =========================
    """
    run = BenchmarkRun(codes.name, codes.category, machine.name)
    run.results["base"] = simulate_trace(
        codes.base_trace, machine, classify_misses=classify_misses
    )
    run.results["pure_sw"] = simulate_trace(
        codes.optimized_trace, machine, classify_misses=classify_misses
    )
    for mechanism in mechanisms:
        run.results[f"pure_hw/{mechanism}"] = simulate_trace(
            codes.base_trace, machine, mechanism, initially_on=True
        )
        run.results[f"combined/{mechanism}"] = simulate_trace(
            codes.optimized_trace, machine, mechanism, initially_on=True
        )
        run.results[f"selective/{mechanism}"] = simulate_trace(
            codes.selective_trace, machine, mechanism, initially_on=False
        )
    return run

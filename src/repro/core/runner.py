"""High-level suite driver: benchmarks × configurations.

Memory discipline: traces are generated per benchmark and simulated on
every requested configuration before the next benchmark is prepared,
so at most one benchmark's three traces are alive at a time.  With
``jobs > 1`` the (benchmark × configuration) grid instead fans out
over the fault-tolerant scheduler in :mod:`repro.core.parallel`;
results are bit-identical to a sequential run in either mode.

Resilience: pass ``store=`` (a :class:`~repro.core.runstore.RunStore`
or a directory path) and every completed cell is checkpointed the
moment it finishes; with ``resume=True`` (the default when a store is
given) a re-run skips cells whose stored results verify, so a sweep
killed mid-grid restarts where it left off and produces a suite
bit-identical to an uninterrupted run.  Under ``on_failure="record"``
(default) a cell that exhausts its retries becomes a structured
:class:`~repro.core.parallel.CellFailure` on ``SuiteResult.failures``
and the sweep completes with partial results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.compiler.optimizer import LocalityOptimizer
from repro.core.experiment import expected_version_keys, run_benchmark
from repro.core.parallel import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    CellFailure,
    resolve_jobs,
    run_grid,
)
from repro.core.faults import FaultPlan
from repro.core.runstore import RunStore, trace_checksum
from repro.core.sweep import SweepResult
from repro.core.versions import MECHANISMS, prepare_codes
from repro.params import SENSITIVITY_CONFIGS, MachineParams, base_config
from repro.workloads.base import SMALL, Scale
from repro.workloads.registry import all_specs, get_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.sweeptrace import SweepTimeline

__all__ = ["SuiteResult", "run_suite"]


@dataclass
class SuiteResult:
    """Results for a set of benchmarks across configurations.

    ``failures`` lists cells that exhausted their retry budget under
    ``on_failure="record"``; such cells are absent from their sweep's
    ``runs``, so averages/figures are computed over the surviving
    benchmarks (a partial-results report, not an exception).
    """

    scale_name: str
    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    failures: list[CellFailure] = field(default_factory=list)

    def sweep(self, config_name: str) -> SweepResult:
        return self.sweeps[config_name]

    def config_names(self) -> list[str]:
        return list(self.sweeps)

    @property
    def complete(self) -> bool:
        return not self.failures

    def failure_report(self) -> str:
        """Human-readable summary of permanently failed cells."""
        if not self.failures:
            return "all cells completed"
        lines = [f"{len(self.failures)} cell(s) failed permanently:"]
        lines += [f"  - {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)


def run_suite(
    scale: Scale = SMALL,
    benchmarks: Optional[Sequence[str]] = None,
    configs: Optional[dict[str, Callable[[], MachineParams]]] = None,
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
    *,
    store: Union[RunStore, str, Path, None] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    faults: Optional[FaultPlan] = None,
    on_failure: str = "record",
    timeline: Optional["SweepTimeline"] = None,
) -> SuiteResult:
    """Run the benchmark suite across machine configurations.

    ``configs`` defaults to all six Table 3 rows; machines are scaled
    by the scale's divisor so the working-set/cache ratio matches the
    paper's full-size runs (see DESIGN.md).  ``benchmarks`` defaults to
    all 13 names in Table 2 order.

    ``jobs`` controls parallelism: 1 (the default) runs sequentially
    in-process; N > 1 fans the grid over N worker processes; ``None``
    resolves from ``REPRO_JOBS`` / CPU count.  Results are identical
    for every job count — only wall-clock changes.

    ``store``/``resume`` checkpoint and skip completed cells in both
    modes.  ``timeout``/``retries``/``backoff``/``faults``/
    ``on_failure`` harden the parallel scheduler (see
    :func:`repro.core.parallel.run_grid`); the sequential path executes
    cells directly in this process, so per-cell kill/retry (and fault
    injection, which targets worker cells) does not apply there.

    ``timeline`` optionally collects wall-clock
    :class:`~repro.telemetry.sweeptrace.WallSpan` records (prepare
    steps, cell attempts, restores) for Chrome-trace export; observing
    the sweep never changes its results.
    """
    if configs is None:
        configs = dict(SENSITIVITY_CONFIGS)
    specs = (
        [get_spec(name) for name in benchmarks]
        if benchmarks is not None
        else all_specs()
    )
    machines = {
        name: factory().scaled(scale.machine_divisor)
        for name, factory in configs.items()
    }
    reference = base_config().scaled(scale.machine_divisor)
    optimizer = LocalityOptimizer(reference)
    if isinstance(store, (str, Path)):
        store = RunStore(store)

    suite = SuiteResult(scale.name)
    for name, machine in machines.items():
        suite.sweeps[name] = SweepResult(machine.name)

    workers = resolve_jobs(jobs)
    if workers > 1:
        grid = run_grid(
            specs,
            machines,
            prepare=lambda spec: prepare_codes(spec, scale, reference, optimizer),
            mechanisms=mechanisms,
            classify_misses=classify_misses,
            jobs=workers,
            progress=progress,
            store=store,
            resume=resume,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            faults=faults,
            on_failure=on_failure,
            timeline=timeline,
        )
        # Reassemble in the exact insertion order of a sequential run;
        # permanently failed cells land on ``failures`` instead.
        for spec in specs:
            for config_name in machines:
                value = grid[(config_name, spec.name)]
                if isinstance(value, CellFailure):
                    suite.failures.append(value)
                else:
                    suite.sweeps[config_name].runs[spec.name] = value
        return suite

    expected = expected_version_keys(mechanisms)
    for spec in specs:
        if progress:
            progress(f"preparing {spec.name}")
        prep_start = timeline.clock() if timeline is not None else 0.0
        codes = prepare_codes(spec, scale, reference, optimizer)
        if timeline is not None:
            timeline.record(
                f"prepare {spec.name}",
                spec.name,
                "prepare",
                start=prep_start,
                status="prepare",
            )
        digests = (
            [
                trace_checksum(codes.base_trace),
                trace_checksum(codes.optimized_trace),
                trace_checksum(codes.selective_trace),
            ]
            if store is not None
            else []
        )
        for config_name, machine in machines.items():
            run = None
            key = None
            if store is not None:
                key = store.cell_key(
                    "cell",
                    spec.name,
                    config_name,
                    scale=scale,
                    machine=machine,
                    mechanisms=mechanisms,
                    classify_misses=classify_misses,
                    digests=digests,
                )
                if resume:
                    cached = store.get(key)
                    if cached is not None and list(cached.results) == expected:
                        run = cached
                        if timeline is not None:
                            timeline.restored(spec.name, config_name)
                        if progress:
                            progress(
                                f"  {spec.name} on {config_name} "
                                "(restored from store)"
                            )
            if run is None:
                if progress:
                    progress(f"  {spec.name} on {config_name}")
                cell_start = (
                    timeline.clock() if timeline is not None else 0.0
                )
                run = run_benchmark(codes, machine, mechanisms, classify_misses)
                if timeline is not None:
                    timeline.record(
                        spec.name,
                        spec.name,
                        config_name,
                        start=cell_start,
                        status="ok",
                    )
                if store is not None:
                    store.put(
                        key,
                        run,
                        meta={
                            "kind": "cell",
                            "benchmark": spec.name,
                            "config": config_name,
                            "scale": scale.name,
                        },
                    )
            suite.sweeps[config_name].runs[spec.name] = run
    return suite

"""High-level suite driver: benchmarks × configurations.

Memory discipline: traces are generated per benchmark and simulated on
every requested configuration before the next benchmark is prepared,
so at most one benchmark's three traces are alive at a time.  With
``jobs > 1`` the (benchmark × configuration) grid instead fans out
over a process pool (see :mod:`repro.core.parallel`); results are
bit-identical to a sequential run in either mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.compiler.optimizer import LocalityOptimizer
from repro.core.experiment import run_benchmark
from repro.core.parallel import resolve_jobs, run_grid
from repro.core.sweep import SweepResult
from repro.core.versions import MECHANISMS, prepare_codes
from repro.params import SENSITIVITY_CONFIGS, MachineParams, base_config
from repro.workloads.base import SMALL, Scale
from repro.workloads.registry import all_specs, get_spec

__all__ = ["SuiteResult", "run_suite"]


@dataclass
class SuiteResult:
    """Results for a set of benchmarks across configurations."""

    scale_name: str
    sweeps: dict[str, SweepResult] = field(default_factory=dict)

    def sweep(self, config_name: str) -> SweepResult:
        return self.sweeps[config_name]

    def config_names(self) -> list[str]:
        return list(self.sweeps)


def run_suite(
    scale: Scale = SMALL,
    benchmarks: Optional[Sequence[str]] = None,
    configs: Optional[dict[str, Callable[[], MachineParams]]] = None,
    mechanisms: tuple[str, ...] = MECHANISMS,
    classify_misses: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
) -> SuiteResult:
    """Run the benchmark suite across machine configurations.

    ``configs`` defaults to all six Table 3 rows; machines are scaled
    by the scale's divisor so the working-set/cache ratio matches the
    paper's full-size runs (see DESIGN.md).  ``benchmarks`` defaults to
    all 13 names in Table 2 order.

    ``jobs`` controls parallelism: 1 (the default) runs sequentially
    in-process; N > 1 fans the grid over N worker processes; ``None``
    resolves from ``REPRO_JOBS`` / CPU count.  Results are identical
    for every job count — only wall-clock changes.
    """
    if configs is None:
        configs = dict(SENSITIVITY_CONFIGS)
    specs = (
        [get_spec(name) for name in benchmarks]
        if benchmarks is not None
        else all_specs()
    )
    machines = {
        name: factory().scaled(scale.machine_divisor)
        for name, factory in configs.items()
    }
    reference = base_config().scaled(scale.machine_divisor)
    optimizer = LocalityOptimizer(reference)

    suite = SuiteResult(scale.name)
    for name, machine in machines.items():
        suite.sweeps[name] = SweepResult(machine.name)

    workers = resolve_jobs(jobs)
    if workers > 1:
        grid = run_grid(
            specs,
            machines,
            prepare=lambda spec: prepare_codes(spec, scale, reference, optimizer),
            mechanisms=mechanisms,
            classify_misses=classify_misses,
            jobs=workers,
            progress=progress,
        )
        # Reassemble in the exact insertion order of a sequential run.
        for spec in specs:
            for config_name in machines:
                suite.sweeps[config_name].runs[spec.name] = grid[
                    (config_name, spec.name)
                ]
        return suite

    for spec in specs:
        if progress:
            progress(f"preparing {spec.name}")
        codes = prepare_codes(spec, scale, reference, optimizer)
        for config_name, machine in machines.items():
            if progress:
                progress(f"  {spec.name} on {config_name}")
            suite.sweeps[config_name].runs[spec.name] = run_benchmark(
                codes, machine, mechanisms, classify_misses
            )
    return suite

"""Architecture and experiment parameters.

This module defines the machine model of the paper's Table 1 (the
baseline SimpleScalar configuration) and the five sensitivity variants
used in Figures 5-9 / Table 3.  All parameters are plain frozen
dataclasses so configurations can be hashed, compared, and used as dict
keys by the experiment runner.

The paper simulates full SPEC/TPC inputs (tens to hundreds of millions
of instructions).  A Python-level simulator cannot sustain that, so
workloads run at scaled-down problem sizes and :meth:`MachineParams.scaled`
shrinks the cache capacities correspondingly, preserving the ratio of
working-set size to cache size (and hence the miss-rate regime the paper
operates in).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = [
    "CacheParams",
    "TLBParams",
    "MachineParams",
    "BypassParams",
    "VictimParams",
    "base_config",
    "higher_mem_latency",
    "larger_l2",
    "larger_l1",
    "higher_l2_assoc",
    "higher_l1_assoc",
    "SENSITIVITY_CONFIGS",
]

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache level.

    Attributes:
        name: Human-readable label used in statistics ("L1D", "L2", ...).
        size: Total capacity in bytes.
        assoc: Set associativity (1 = direct mapped).
        block_size: Line size in bytes (power of two).
        latency: Hit latency in cycles.
    """

    name: str
    size: int
    assoc: int
    block_size: int
    latency: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.block_size <= 0:
            raise ValueError(f"{self.name}: sizes must be positive")
        if self.block_size & (self.block_size - 1):
            raise ValueError(f"{self.name}: block_size must be a power of two")
        if self.size % (self.assoc * self.block_size):
            raise ValueError(
                f"{self.name}: size {self.size} not divisible by "
                f"assoc*block_size ({self.assoc}*{self.block_size})"
            )
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    @property
    def num_blocks(self) -> int:
        """Total number of blocks in the cache."""
        return self.size // self.block_size

    @property
    def num_sets(self) -> int:
        """Number of sets (capacity / (associativity * line size))."""
        return self.size // (self.assoc * self.block_size)

    def halved(self, factor: int) -> "CacheParams":
        """Return a copy with capacity divided by ``factor``.

        Associativity and block size are preserved; the cache must remain
        at least one set.
        """
        new_size = self.size // factor
        if new_size < self.assoc * self.block_size:
            new_size = self.assoc * self.block_size
        return dataclasses.replace(self, size=new_size)


@dataclass(frozen=True)
class TLBParams:
    """Geometry of a translation lookaside buffer."""

    name: str
    entries: int
    assoc: int
    page_size: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.assoc <= 0:
            raise ValueError(f"{self.name}: entries/assoc must be positive")
        if self.entries % self.assoc:
            raise ValueError(f"{self.name}: entries must divide by assoc")
        if self.page_size & (self.page_size - 1):
            raise ValueError(f"{self.name}: page_size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.entries // self.assoc


@dataclass(frozen=True)
class BypassParams:
    """Parameters of the Johnson & Hwu cache-bypassing assist (Section 4.1).

    The bypass buffer is a small fully-associative cache holding
    ``buffer_words`` double words; the MAT tracks access frequency per
    ``macro_block_size``-byte macro-block with ``mat_entries`` entries;
    the SLDT detects spatial locality to pick larger fetch sizes.
    """

    buffer_words: int = 64  # double words (8 bytes each)
    mat_entries: int = 4096
    macro_block_size: int = 1024
    sldt_entries: int = 32
    spatial_counter_max: int = 7
    spatial_counter_min: int = -8
    spatial_threshold: int = 2
    # A macro-block must reach this frequency (relative to the hottest
    # competing macro-blocks) to be cached rather than bypassed.
    bypass_ratio: float = 0.5
    # The victim's macro-block must be at least this hot in absolute
    # terms before bypassing is even considered — protecting lukewarm
    # data is not worth the risk of starving the incoming line.
    min_victim_freq: int = 8

    def __post_init__(self) -> None:
        if self.buffer_words <= 0:
            raise ValueError("buffer_words must be positive")
        if self.mat_entries <= 0:
            raise ValueError("mat_entries must be positive")
        if self.macro_block_size & (self.macro_block_size - 1):
            raise ValueError("macro_block_size must be a power of two")

    @property
    def buffer_bytes(self) -> int:
        return self.buffer_words * 8


@dataclass(frozen=True)
class VictimParams:
    """Victim cache sizes (entries = blocks), per Section 4.1."""

    l1_entries: int = 64
    l2_entries: int = 512

    def __post_init__(self) -> None:
        if self.l1_entries <= 0 or self.l2_entries <= 0:
            raise ValueError("victim cache entries must be positive")


@dataclass(frozen=True)
class MachineParams:
    """The full machine configuration (paper Table 1).

    The default instance is the paper's base configuration; the module
    level helpers (:func:`higher_mem_latency`, :func:`larger_l2`, ...)
    produce the sensitivity variants of Figures 5-9.
    """

    name: str = "base"
    issue_width: int = 4
    l1d: CacheParams = CacheParams("L1D", 32 * KB, 4, 32, 2)
    l1i: CacheParams = CacheParams("L1I", 32 * KB, 4, 32, 2)
    l2: CacheParams = CacheParams("L2", 512 * KB, 4, 128, 10)
    mem_latency: int = 100
    mem_bus_width: int = 8
    mem_ports: int = 2
    ruu_entries: int = 64
    lsq_entries: int = 32
    bimodal_entries: int = 2048
    dtlb: TLBParams = TLBParams("DTLB", 512, 4)
    itlb: TLBParams = TLBParams("ITLB", 256, 4)
    bypass: BypassParams = BypassParams()
    victim: VictimParams = VictimParams()
    branch_mispredict_penalty: int = 3
    #: Outstanding DRAM misses (MSHRs at the memory controller).  A
    #: miss storm streams at max_outstanding_misses per memory latency,
    #: so DRAM-bound code stays latency-sensitive without being fully
    #: serialized.
    max_outstanding_misses: int = 8

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.mem_latency < 0:
            raise ValueError("mem_latency must be non-negative")
        if self.mem_ports <= 0:
            raise ValueError("mem_ports must be positive")
        if self.mem_bus_width <= 0:
            raise ValueError("mem_bus_width must be positive")

    def block_transfer_cycles(self, block_size: int) -> int:
        """Extra bus cycles to stream a block after the first chunk.

        A ``block_size``-byte fill over a ``mem_bus_width``-byte bus takes
        ``mem_latency`` cycles for the critical word plus one cycle per
        remaining bus beat.
        """
        beats = (block_size + self.mem_bus_width - 1) // self.mem_bus_width
        return max(beats - 1, 0)

    def scaled(self, divisor: int, name_suffix: str = "") -> "MachineParams":
        """Shrink cache and TLB capacities by ``divisor``.

        Used when running workloads at reduced problem sizes so that the
        working-set/cache ratio (and thus the miss-rate regime) matches
        the paper's full-size runs.  Associativities, block sizes and all
        latencies are unchanged.
        """
        if divisor < 1:
            raise ValueError("divisor must be >= 1")
        if divisor == 1:
            return self
        victim = VictimParams(
            l1_entries=max(self.victim.l1_entries // divisor, 4),
            l2_entries=max(self.victim.l2_entries // divisor, 8),
        )
        bypass = dataclasses.replace(
            self.bypass,
            buffer_words=max(self.bypass.buffer_words // divisor, 16),
            mat_entries=max(self.bypass.mat_entries // divisor, 64),
        )
        return dataclasses.replace(
            self,
            name=self.name + (name_suffix or f"/div{divisor}"),
            l1d=self.l1d.halved(divisor),
            l1i=self.l1i.halved(divisor),
            l2=self.l2.halved(divisor),
            dtlb=dataclasses.replace(
                self.dtlb, entries=max(self.dtlb.entries // divisor, 16)
            ),
            itlb=dataclasses.replace(
                self.itlb, entries=max(self.itlb.entries // divisor, 16)
            ),
            victim=victim,
            bypass=bypass,
        )


def base_config() -> MachineParams:
    """The paper's Table 1 baseline."""
    return MachineParams()


def higher_mem_latency() -> MachineParams:
    """Figure 5: main-memory latency raised to 200 cycles."""
    return dataclasses.replace(base_config(), name="mem200", mem_latency=200)


def larger_l2() -> MachineParams:
    """Figure 6: L2 capacity raised to 1 MB."""
    cfg = base_config()
    return dataclasses.replace(
        cfg, name="l2-1MB", l2=dataclasses.replace(cfg.l2, size=1 * MB)
    )


def larger_l1() -> MachineParams:
    """Figure 7: L1 data capacity raised to 64 KB."""
    cfg = base_config()
    return dataclasses.replace(
        cfg, name="l1-64KB", l1d=dataclasses.replace(cfg.l1d, size=64 * KB)
    )


def higher_l2_assoc() -> MachineParams:
    """Figure 8: L2 associativity raised to 8 (size constant)."""
    cfg = base_config()
    return dataclasses.replace(
        cfg, name="l2-8way", l2=dataclasses.replace(cfg.l2, assoc=8)
    )


def higher_l1_assoc() -> MachineParams:
    """Figure 9: L1 associativity raised to 8 (size constant)."""
    cfg = base_config()
    return dataclasses.replace(
        cfg, name="l1-8way", l1d=dataclasses.replace(cfg.l1d, assoc=8)
    )


#: The six hardware configurations of Table 3, in paper row order.
SENSITIVITY_CONFIGS = {
    "Base Confg.": base_config,
    "Higher Mem. Lat.": higher_mem_latency,
    "Larger L2 Size": larger_l2,
    "Larger L1 Size": larger_l1,
    "Higher L2 Asc.": higher_l2_assoc,
    "Higher L1 Asc.": higher_l1_assoc,
}

"""Figures 4-9 — per-benchmark improvement bars.

Each figure in the paper shows, for one machine configuration, the
percentage execution-cycle improvement of the four versions (with cache
bypassing as the hardware mechanism) over the base architecture, one
bar group per benchmark.  :func:`figure_series` returns the same data:
benchmark → {version: % improvement}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sweep import SweepResult

__all__ = ["FIGURES", "FigureSeries", "figure_series", "FIGURE_VERSIONS"]

#: Figure number → the Table 3 configuration row it plots.
FIGURES = {
    4: "Base Confg.",
    5: "Higher Mem. Lat.",
    6: "Larger L2 Size",
    7: "Larger L1 Size",
    8: "Higher L2 Asc.",
    9: "Higher L1 Asc.",
}

#: The four bars of each group, in the paper's legend order.
FIGURE_VERSIONS = {
    "Pure Hardware": "pure_hw/bypass",
    "Pure Software": "pure_sw",
    "Combined": "combined/bypass",
    "Selective": "selective/bypass",
}


@dataclass(frozen=True)
class FigureSeries:
    """The data behind one figure."""

    figure: int
    config_name: str
    #: benchmark → {version label → % improvement}
    bars: dict[str, dict[str, float]]

    def version_average(self, label: str) -> float:
        values = [group[label] for group in self.bars.values()]
        return sum(values) / len(values)


def figure_series(figure: int, sweep: SweepResult) -> FigureSeries:
    """Extract one figure's bar groups from a finished sweep."""
    if figure not in FIGURES:
        raise KeyError(f"no figure {figure}; paper has {sorted(FIGURES)}")
    bars = {
        benchmark: {
            label: run.improvement(version_key)
            for label, version_key in FIGURE_VERSIONS.items()
        }
        for benchmark, run in sweep.runs.items()
    }
    return FigureSeries(figure, FIGURES[figure], bars)

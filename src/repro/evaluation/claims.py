"""Machine-checkable versions of the paper's Section 5/6 claims.

Every qualitative statement the paper makes about its results is
encoded as a predicate over a finished
:class:`~repro.core.sweep.SweepResult`; :func:`check_claims` evaluates
them all and returns structured verdicts.  The benchmarks print these,
and EXPERIMENTS.md records which claims reproduce and which deviate
(and why).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Callable

from repro.core.sweep import SweepResult

__all__ = ["Claim", "ClaimVerdict", "PAPER_CLAIMS", "check_claims"]

_REGULAR = ("swim", "mgrid", "vpenta", "adi")
_IRREGULAR = ("perl", "compress", "li", "applu")


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    key: str
    text: str
    check: Callable[[SweepResult], bool]


@dataclass(frozen=True)
class ClaimVerdict:
    claim: Claim
    holds: bool
    detail: str = ""


def _category_average(sweep: SweepResult, key: str, names) -> float:
    return mean(sweep.runs[n].improvement(key) for n in names
                if n in sweep.runs)


def _selective_never_worse_than_combined(sweep: SweepResult) -> bool:
    return all(
        run.improvement("selective/bypass")
        >= run.improvement("combined/bypass") - 1.5
        for run in sweep.runs.values()
    )


def _software_best_on_regular(sweep: SweepResult) -> bool:
    sw = _category_average(sweep, "pure_sw", _REGULAR)
    hw = _category_average(sweep, "pure_hw/bypass", _REGULAR)
    hv = _category_average(sweep, "pure_hw/victim", _REGULAR)
    return sw > hw and sw > hv


def _software_useless_on_irregular(sweep: SweepResult) -> bool:
    return abs(_category_average(sweep, "pure_sw", _IRREGULAR)) < 2.0


def _victim_never_hurts(sweep: SweepResult) -> bool:
    return all(
        run.improvement("pure_hw/victim") >= -0.5
        for run in sweep.runs.values()
    )


def _bypass_can_hurt(sweep: SweepResult) -> bool:
    worst = min(
        run.improvement("pure_hw/bypass") for run in sweep.runs.values()
    )
    return -13.0 <= worst < 0.0


def _selective_beats_pure_versions(sweep: SweepResult) -> bool:
    selective = sweep.average_improvement("selective/bypass")
    return (
        selective > sweep.average_improvement("pure_hw/bypass")
        and selective >= sweep.average_improvement("pure_sw") - 1.0
    )


#: The claims of Sections 5.1/5.2/6, keyed for reporting.
PAPER_CLAIMS = [
    Claim(
        "selective-ge-combined",
        "Selective has better or at least the same performance as the "
        "combined approach for all the benchmarks (5.1)",
        _selective_never_worse_than_combined,
    ),
    Claim(
        "software-wins-regular",
        "The pure software approach does best for codes with regular "
        "access (5.1)",
        _software_best_on_regular,
    ),
    Claim(
        "software-useless-irregular",
        "Improvement from pure software for irregular codes is near "
        "zero (5.1: 0.8%)",
        _software_useless_on_irregular,
    ),
    Claim(
        "victim-never-hurts",
        "Victim caches performed always better than the base "
        "configuration (5.2)",
        _victim_never_hurts,
    ),
    Claim(
        "bypass-can-hurt",
        "Cache bypassing decreased performance for some ill cases, "
        "bounded by about 12% (5.2)",
        _bypass_can_hurt,
    ),
    Claim(
        "selective-best-overall",
        "The selective scheme consistently gave the best performance "
        "among hardware-only/software-only on average (6)",
        _selective_beats_pure_versions,
    ),
]


def check_claims(sweep: SweepResult) -> list[ClaimVerdict]:
    """Evaluate every encoded claim against one configuration's sweep."""
    verdicts = []
    for claim in PAPER_CLAIMS:
        try:
            holds = claim.check(sweep)
            detail = ""
        except Exception as error:  # surface, don't crash the report
            holds = False
            detail = f"check failed: {error!r}"
        verdicts.append(ClaimVerdict(claim, holds, detail))
    return verdicts

"""Reproduction harness for the paper's tables and figures.

* :mod:`repro.evaluation.table2` — benchmark characteristics (Table 2);
* :mod:`repro.evaluation.table3` — average improvements per version,
  mechanism and hardware configuration (Table 3);
* :mod:`repro.evaluation.figures` — per-benchmark improvement series
  for Figures 4-9;
* :mod:`repro.evaluation.report` — plain-text rendering of all of the
  above, in the same row/column structure the paper prints.
"""

from repro.evaluation.claims import (
    PAPER_CLAIMS,
    Claim,
    ClaimVerdict,
    check_claims,
)
from repro.evaluation.figures import FIGURES, FigureSeries, figure_series
from repro.evaluation.report import render_figure, render_table2, render_table3
from repro.evaluation.table2 import Table2Row, table2_rows
from repro.evaluation.table3 import TABLE3_COLUMNS, Table3Row, table3_rows

__all__ = [
    "Claim",
    "ClaimVerdict",
    "FIGURES",
    "FigureSeries",
    "PAPER_CLAIMS",
    "check_claims",
    "TABLE3_COLUMNS",
    "Table2Row",
    "Table3Row",
    "figure_series",
    "render_figure",
    "render_table2",
    "render_table3",
    "table2_rows",
    "table3_rows",
]

"""Table 3 — average improvements across hardware configurations.

The paper's Table 3 has one row per machine configuration (base,
higher memory latency, larger L2, larger L1, higher L2 associativity,
higher L1 associativity) and seven columns of suite-average percentage
improvements: Pure Software, Cache Bypass (pure hardware), Combined
(bypass+software), Selective (bypass+software), Victim Caches (pure
hardware), Combined (victim+software), Selective (victim+software).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import SuiteResult, run_suite
from repro.core.sweep import SweepResult
from repro.params import SENSITIVITY_CONFIGS
from repro.workloads.base import SMALL, Scale

__all__ = ["TABLE3_COLUMNS", "Table3Row", "table3_rows", "sweep_to_row"]

#: Column header → version key, in the paper's column order.
TABLE3_COLUMNS = {
    "Pure Software": "pure_sw",
    "Cache Bypass": "pure_hw/bypass",
    "Combined (bypass+software)": "combined/bypass",
    "Selective (bypass+software)": "selective/bypass",
    "Victim Caches": "pure_hw/victim",
    "Combined (victim+software)": "combined/victim",
    "Selective (victim+software)": "selective/victim",
}

#: The paper's Table 3 values, for side-by-side comparison in reports.
PAPER_TABLE3 = {
    "Base Confg.": (16.12, 5.07, 17.37, 24.98, 1.38, 16.45, 23.82),
    "Higher Mem. Lat.": (15.82, 7.69, 17.66, 26.07, 4.52, 16.24, 24.88),
    "Larger L2 Size": (14.81, 4.75, 15.79, 22.25, 0.80, 14.05, 20.10),
    "Larger L1 Size": (17.42, 4.94, 17.04, 24.17, 1.16, 16.45, 22.55),
    "Higher L2 Asc.": (14.05, 4.82, 15.00, 21.22, 0.92, 13.12, 19.39),
    "Higher L1 Asc.": (13.96, 3.96, 14.51, 20.93, 2.14, 12.06, 19.21),
}


@dataclass(frozen=True)
class Table3Row:
    """Suite-average improvements for one configuration."""

    experiment: str
    averages: tuple[float, ...]  # one per TABLE3_COLUMNS entry

    def by_column(self) -> dict[str, float]:
        return dict(zip(TABLE3_COLUMNS, self.averages))


def sweep_to_row(name: str, sweep: SweepResult) -> Table3Row:
    """Collapse one configuration's sweep into a Table 3 row."""
    averages = tuple(
        sweep.average_improvement(version_key)
        for version_key in TABLE3_COLUMNS.values()
    )
    return Table3Row(name, averages)


def table3_rows(
    scale: Scale = SMALL,
    suite: SuiteResult | None = None,
    jobs: int | None = 1,
) -> list[Table3Row]:
    """Run (or reuse) the full sweep; return all six Table 3 rows.

    ``jobs`` threads straight through to :func:`run_suite` (explicit
    parameter, never the ``REPRO_JOBS`` environment) and is ignored
    when a pre-computed ``suite`` is supplied.
    """
    if suite is None:
        suite = run_suite(scale, configs=dict(SENSITIVITY_CONFIGS), jobs=jobs)
    return [
        sweep_to_row(name, suite.sweeps[name]) for name in suite.sweeps
    ]

"""Locality-model evaluation: per-benchmark MRC and gating comparison.

For every benchmark this builds the selective trace (markers in place),
profiles each dynamic region's miss-ratio curve, and scores the
model-driven gating policy of :mod:`repro.hwopt.policy` against the
compiler's static marker placement — the reproduction's analogue of a
"how good is the heuristic?" figure.  The base trace's predicted
fully-associative miss ratio at the L1 capacity rides along as context:
it is the locality the whole exercise is trying to fix.

Benchmarks are independent, so :func:`locality_rows` fans them over a
process pool exactly like the sweep engine (``--jobs`` / ``REPRO_JOBS``,
results identical for any job count).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core.versions import prepare_codes
from repro.hwopt.policy import (
    DEFAULT_MISS_FLOOR,
    GatingComparison,
    recommend_gating,
)
from repro.locality.mrc import distance_histogram
from repro.params import MachineParams, base_config
from repro.workloads.base import Scale, WorkloadSpec
from repro.workloads.registry import all_specs, get_spec

__all__ = ["LocalityRow", "locality_row", "locality_rows"]


@dataclass(frozen=True)
class LocalityRow:
    """One benchmark's locality profile and gating-policy comparison."""

    benchmark: str
    category: str
    #: Memory references in the selective trace.
    memory_refs: int
    #: Distinct cache lines touched (LRU stack depth at trace end).
    distinct_lines: int
    #: Predicted fully-associative LRU miss ratio of the *base* trace
    #: at the scaled L1D capacity — the locality being optimized.
    base_miss_ratio: float
    #: Same prediction for the selective (optimized + marked) trace.
    selective_miss_ratio: float
    #: Dynamic regions that issued memory references.
    regions: int
    compiler_on_regions: int
    model_on_regions: int
    #: Region-count and reference-weighted agreement, in percent.
    region_agreement: float
    ref_agreement: float

    @classmethod
    def from_comparison(
        cls,
        benchmark: str,
        category: str,
        base_miss_ratio: float,
        selective_miss_ratio: float,
        distinct_lines: int,
        comparison: GatingComparison,
    ) -> "LocalityRow":
        return cls(
            benchmark=benchmark,
            category=category,
            memory_refs=sum(
                r.memory_refs for r in comparison.recommendations
            ),
            distinct_lines=distinct_lines,
            base_miss_ratio=base_miss_ratio,
            selective_miss_ratio=selective_miss_ratio,
            regions=comparison.regions,
            compiler_on_regions=comparison.compiler_on_regions,
            model_on_regions=comparison.model_on_regions,
            region_agreement=100.0 * comparison.region_agreement,
            ref_agreement=100.0 * comparison.ref_agreement,
        )


def locality_row(
    spec: WorkloadSpec,
    scale: Scale,
    machine: MachineParams,
    miss_floor: float = DEFAULT_MISS_FLOOR,
) -> LocalityRow:
    """Build and analyze one benchmark (runs inside pool workers)."""
    codes = prepare_codes(spec, scale, machine)
    line_size = machine.l1d.block_size
    cache_lines = machine.l1d.num_blocks
    base_curve = distance_histogram(
        codes.base_trace, line_size=line_size
    ).curve()
    selective_histogram = distance_histogram(
        codes.selective_trace, line_size=line_size
    )
    comparison = recommend_gating(
        codes.selective_trace,
        machine,
        initially_on=False,
        miss_floor=miss_floor,
    )
    return LocalityRow.from_comparison(
        benchmark=spec.name,
        category=spec.category,
        base_miss_ratio=base_curve.miss_ratio(cache_lines),
        selective_miss_ratio=selective_histogram.curve().miss_ratio(
            cache_lines
        ),
        # Every cold access is the first touch of a new line.
        distinct_lines=selective_histogram.cold,
        comparison=comparison,
    )


def _row_task(task) -> LocalityRow:
    """Worker entry for the process pool."""
    name, scale, machine, miss_floor = task
    return locality_row(get_spec(name), scale, machine, miss_floor)


def locality_rows(
    scale: Scale,
    benchmarks: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    miss_floor: float = DEFAULT_MISS_FLOOR,
) -> list[LocalityRow]:
    """Locality rows for the suite (or a subset), in registry order.

    ``jobs`` follows the sweep-engine convention (``None`` → the
    ``REPRO_JOBS`` environment variable or the CPU count); results are
    assembled in submission order, identical for any job count.
    """
    from repro.core.parallel import resolve_jobs

    names = (
        list(benchmarks)
        if benchmarks is not None
        else [spec.name for spec in all_specs()]
    )
    machine = base_config().scaled(scale.machine_divisor)
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(names) <= 1:
        rows = []
        for name in names:
            if progress:
                progress(f"profiling {name}")
            rows.append(
                locality_row(get_spec(name), scale, machine, miss_floor)
            )
        return rows
    tasks = [(name, scale, machine, miss_floor) for name in names]
    rows = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            (name, pool.submit(_row_task, task))
            for name, task in zip(names, tasks)
        ]
        for name, future in futures:
            rows.append(future.result())
            if progress:
                progress(f"{name} profiled")
    return rows

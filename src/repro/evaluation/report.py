"""Plain-text rendering of the reproduced tables and figures."""

from __future__ import annotations

from typing import Iterable

from repro.core.parallel import CellFailure
from repro.core.runstore import StoredEntry, StoreStats
from repro.evaluation.figures import FIGURE_VERSIONS, FigureSeries
from repro.evaluation.locality import LocalityRow
from repro.evaluation.profile import BenchmarkProfile
from repro.evaluation.table2 import Table2Row
from repro.evaluation.table3 import PAPER_TABLE3, TABLE3_COLUMNS, Table3Row

__all__ = [
    "render_table2",
    "render_table3",
    "render_figure",
    "render_locality",
    "render_failures",
    "render_profile",
    "render_runs",
]


def render_table2(rows: Iterable[Table2Row]) -> str:
    """Table 2: benchmark characteristics."""
    lines = [
        "Table 2. Benchmark characteristics (scaled inputs).",
        f"{'Benchmark':<10} {'Class':<10} {'Instrs':>10} "
        f"{'L1 Miss %':>10} {'L2 Miss %':>10} {'Conflict %':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<10} {row.category:<10} "
            f"{row.instructions:>10,} {row.l1_miss_rate:>10.2f} "
            f"{row.l2_miss_rate:>10.2f} {row.conflict_fraction:>11.1f}"
        )
    return "\n".join(lines)


def render_table3(
    rows: Iterable[Table3Row], include_paper: bool = True
) -> str:
    """Table 3: average improvements, measured (and paper values)."""
    headers = list(TABLE3_COLUMNS)
    lines = ["Table 3. Average improvements (%)."]
    lines.append(
        f"{'Experiment':<18}" + "".join(f"{h[:14]:>16}" for h in headers)
    )
    for row in rows:
        lines.append(
            f"{row.experiment:<18}"
            + "".join(f"{value:>16.2f}" for value in row.averages)
        )
        if include_paper and row.experiment in PAPER_TABLE3:
            paper = PAPER_TABLE3[row.experiment]
            lines.append(
                f"{'  (paper)':<18}"
                + "".join(f"{value:>16.2f}" for value in paper)
            )
    return "\n".join(lines)


def render_locality(rows: Iterable[LocalityRow]) -> str:
    """Locality figure: MRC summary + model-vs-compiler gating."""
    lines = [
        "Locality model — predicted fully-associative LRU miss ratio at "
        "the scaled L1D capacity,",
        "and model-driven ON/OFF gating vs the compiler's marker "
        "placement (per dynamic region).",
        f"{'Benchmark':<10} {'Class':<10} {'Refs':>9} {'Lines':>8} "
        f"{'BaseMR':>7} {'SelMR':>7} {'Regions':>8} {'ON c/m':>8} "
        f"{'Agree %':>8} {'RefAgr %':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<10} {row.category:<10} "
            f"{row.memory_refs:>9,} {row.distinct_lines:>8,} "
            f"{row.base_miss_ratio:>7.3f} {row.selective_miss_ratio:>7.3f} "
            f"{row.regions:>8} "
            f"{f'{row.compiler_on_regions}/{row.model_on_regions}':>8} "
            f"{row.region_agreement:>8.1f} {row.ref_agreement:>9.1f}"
        )
    return "\n".join(lines)


def render_figure(series: FigureSeries) -> str:
    """One figure: per-benchmark bars for the four versions."""
    labels = list(FIGURE_VERSIONS)
    lines = [
        f"Figure {series.figure}. {series.config_name} — % improvement "
        f"in execution cycles over the base configuration.",
        f"{'Benchmark':<10}" + "".join(f"{label:>15}" for label in labels),
    ]
    for benchmark, group in series.bars.items():
        lines.append(
            f"{benchmark:<10}"
            + "".join(f"{group[label]:>15.2f}" for label in labels)
        )
    lines.append(
        f"{'average':<10}"
        + "".join(
            f"{series.version_average(label):>15.2f}" for label in labels
        )
    )
    return "\n".join(lines)


def render_failures(failures: Iterable[CellFailure]) -> str:
    """Partial-results report: cells that exhausted their retries."""
    failures = list(failures)
    lines = [
        f"WARNING: {len(failures)} cell(s) failed permanently; "
        "averages above cover the surviving benchmarks only.",
    ]
    lines += [f"  - {failure.describe()}" for failure in failures]
    return "\n".join(lines)


def render_profile(profile: BenchmarkProfile) -> str:
    """``repro profile`` — per-region statistics of one simulated run."""
    result = profile.result
    telemetry = profile.telemetry
    lines = [
        f"Profile: {profile.benchmark} ({profile.version}) on "
        f"{profile.config_name}",
        f"  {result.cycles:,} cycles, {result.instructions:,} instructions "
        f"(IPC {result.ipc:.2f}), L1D miss rate {result.l1d_miss_rate:.3f}",
        f"  {len(telemetry.series)} samples @ {telemetry.interval} cycles, "
        f"{len(telemetry.gate_spans())} hardware-ON span(s), "
        f"{telemetry.counters.get('gate_activations', 0)} ON / "
        f"{telemetry.counters.get('gate_deactivations', 0)} OFF markers",
        "",
        f"{'region':<8} {'gate':<5} {'cycles':>10} {'%run':>6} "
        f"{'instrs':>10} {'L1D miss%':>10} {'mem refs':>9} "
        f"{'assist hits':>12}",
    ]
    for region in profile.regions:
        share = (
            100.0 * region.cycles / result.cycles if result.cycles else 0.0
        )
        lines.append(
            f"{region.index:<8} {'ON' if region.gate_on else 'off':<5} "
            f"{region.cycles:>10,} {share:>6.1f} "
            f"{region.instructions:>10,} "
            f"{100.0 * region.l1d_miss_rate:>10.2f} "
            f"{region.mem_traffic:>9,} "
            f"{region.memory.assist_hits:>12,}"
        )
    lines.append(
        "  region deltas "
        + (
            "sum to the run totals (exact)"
            if profile.consistent()
            else "DO NOT sum to the run totals"
        )
    )
    return "\n".join(lines)


def render_runs(entries: Iterable[StoredEntry]) -> str:
    """``repro runs`` — stored sweep cells with verification status."""
    entries = list(entries)
    if not entries:
        return "store is empty"
    lines = [
        f"{'kind':<8} {'benchmark':<10} {'config':<18} {'bytes':>9} "
        f"{'status'}",
    ]
    for entry in entries:
        status = "ok" if entry.ok else f"CORRUPT ({entry.error})"
        lines.append(
            f"{entry.kind:<8} {entry.benchmark:<10} {entry.config:<18} "
            f"{entry.size:>9,} {status}"
        )
    stats = StoreStats.from_entries(entries)
    lines.append(
        f"{stats.entries} entr{'y' if stats.entries == 1 else 'ies'}, "
        f"{stats.corrupt} corrupt, {stats.bytes:,} bytes"
    )
    for kind, bucket in sorted(stats.by_kind.items()):
        lines.append(
            f"  {kind}: {bucket['entries']} entr"
            f"{'y' if bucket['entries'] == 1 else 'ies'}, "
            f"{bucket['bytes']:,} bytes"
        )
    return "\n".join(lines)

"""Table 2 — benchmark characteristics under the base configuration.

The paper reports, per benchmark: the input, the number of dynamic
instructions executed, and the L1/L2 data-cache miss rates of the base
code on the base machine.  We reproduce the same columns from the base
run of each benchmark (inputs become the synthetic-workload scale) and
additionally report the conflict-miss fraction, since Section 4.2's
"conflict misses constitute approximately between 53% and 72%" claim
is an explicit characterization target.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.core.experiment import simulate_trace
from repro.core.parallel import resolve_jobs
from repro.core.versions import prepare_codes
from repro.params import MachineParams, base_config
from repro.workloads.base import SMALL, Scale
from repro.workloads.registry import all_specs, get_spec

__all__ = ["Table2Row", "table2_rows"]


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's characteristics row."""

    benchmark: str
    category: str
    instructions: int
    l1_miss_rate: float
    l2_miss_rate: float
    conflict_fraction: float


def _characterize(name: str, scale: Scale, machine: MachineParams) -> Table2Row:
    """Prepare and simulate one benchmark's base code into its row.

    Top-level so the parallel path can ship (name, scale, machine) to a
    worker process instead of pickling traces.
    """
    spec = get_spec(name)
    codes = prepare_codes(spec, scale, machine)
    result = simulate_trace(codes.base_trace, machine, classify_misses=True)
    return Table2Row(
        benchmark=spec.name,
        category=spec.category,
        instructions=result.instructions,
        l1_miss_rate=result.l1d_miss_rate * 100.0,
        l2_miss_rate=result.l2_miss_rate * 100.0,
        conflict_fraction=result.memory.l1d.conflict_fraction * 100.0,
    )


def table2_rows(
    scale: Scale = SMALL,
    machine: MachineParams | None = None,
    jobs: Optional[int] = 1,
) -> list[Table2Row]:
    """Simulate every benchmark's base code; return Table 2 rows.

    With ``jobs`` > 1 (or ``None`` for the ``REPRO_JOBS``/CPU-count
    default) each benchmark is prepared and simulated in its own worker
    process; row order and values are identical either way.
    """
    if machine is None:
        machine = base_config().scaled(scale.machine_divisor)
    names = [spec.name for spec in all_specs()]
    workers = resolve_jobs(jobs)
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_characterize, name, scale, machine)
                for name in names
            ]
            return [future.result() for future in futures]
    return [_characterize(name, scale, machine) for name in names]

"""Table 2 — benchmark characteristics under the base configuration.

The paper reports, per benchmark: the input, the number of dynamic
instructions executed, and the L1/L2 data-cache miss rates of the base
code on the base machine.  We reproduce the same columns from the base
run of each benchmark (inputs become the synthetic-workload scale) and
additionally report the conflict-miss fraction, since Section 4.2's
"conflict misses constitute approximately between 53% and 72%" claim
is an explicit characterization target.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.experiment import simulate_trace
from repro.core.parallel import resolve_jobs
from repro.core.runstore import RunStore
from repro.core.versions import prepare_codes
from repro.params import MachineParams, base_config
from repro.workloads.base import SMALL, Scale
from repro.workloads.registry import all_specs, get_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.sweeptrace import SweepTimeline

__all__ = ["Table2Row", "table2_rows"]


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's characteristics row."""

    benchmark: str
    category: str
    instructions: int
    l1_miss_rate: float
    l2_miss_rate: float
    conflict_fraction: float


def _characterize(name: str, scale: Scale, machine: MachineParams) -> Table2Row:
    """Prepare and simulate one benchmark's base code into its row.

    Top-level so the parallel path can ship (name, scale, machine) to a
    worker process instead of pickling traces.
    """
    spec = get_spec(name)
    codes = prepare_codes(spec, scale, machine)
    result = simulate_trace(codes.base_trace, machine, classify_misses=True)
    return Table2Row(
        benchmark=spec.name,
        category=spec.category,
        instructions=result.instructions,
        l1_miss_rate=result.l1d_miss_rate * 100.0,
        l2_miss_rate=result.l2_miss_rate * 100.0,
        conflict_fraction=result.memory.l1d.conflict_fraction * 100.0,
    )


def _characterize_timed(name: str, scale: Scale, machine: MachineParams):
    """Like :func:`_characterize` but bracketed with monotonic stamps.

    ``CLOCK_MONOTONIC`` is system-wide on Linux, so worker-side stamps
    land directly on the parent's :class:`SweepTimeline` clock.
    """
    start = time.monotonic()
    row = _characterize(name, scale, machine)
    return row, start, time.monotonic()


def table2_rows(
    scale: Scale = SMALL,
    machine: MachineParams | None = None,
    jobs: Optional[int] = 1,
    store: Optional[RunStore] = None,
    resume: bool = True,
    timeline: Optional["SweepTimeline"] = None,
) -> list[Table2Row]:
    """Simulate every benchmark's base code; return Table 2 rows.

    With ``jobs`` > 1 (or ``None`` for the ``REPRO_JOBS``/CPU-count
    default) each benchmark is prepared and simulated in its own worker
    process; row order and values are identical either way.

    With a ``store``, each row is checkpointed as it completes and —
    when ``resume`` is true — rows with verified stored results are
    skipped.  Rows are keyed over scale + machine only (no trace
    digests: preparation happens inside the worker, and workloads are
    deterministic functions of benchmark × scale).

    ``timeline`` optionally collects one wall-clock span per simulated
    row (worker-side stamps in the parallel path) plus restore events,
    for Chrome-trace export via :mod:`repro.telemetry`.
    """
    if machine is None:
        machine = base_config().scaled(scale.machine_divisor)
    names = [spec.name for spec in all_specs()]
    keys = {
        name: store.cell_key(
            "table2",
            name,
            machine.name,
            scale=scale,
            machine=machine,
            classify_misses=True,
        )
        for name in names
    } if store is not None else {}
    rows: dict[str, Table2Row] = {}
    if store is not None and resume:
        for name in names:
            cached = store.get(keys[name])
            if isinstance(cached, Table2Row) and cached.benchmark == name:
                rows[name] = cached
                if timeline is not None:
                    timeline.restored(name, machine.name)
    missing = [name for name in names if name not in rows]

    def record(name: str, row: Table2Row) -> None:
        rows[name] = row
        if store is not None:
            store.put(
                keys[name],
                row,
                meta={
                    "kind": "table2",
                    "benchmark": name,
                    "config": machine.name,
                    "scale": scale.name,
                },
            )

    def span(name: str, start: float, end: float) -> None:
        if timeline is not None:
            timeline.record(
                name,
                name,
                machine.name,
                start=start - timeline.origin,
                end=end - timeline.origin,
                status="ok",
            )

    workers = resolve_jobs(jobs)
    if workers > 1 and missing:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (name, pool.submit(_characterize_timed, name, scale, machine))
                for name in missing
            ]
            for name, future in futures:
                row, start, end = future.result()
                span(name, start, end)
                record(name, row)
    else:
        for name in missing:
            row, start, end = _characterize_timed(name, scale, machine)
            span(name, start, end)
            record(name, row)
    return [rows[name] for name in names]

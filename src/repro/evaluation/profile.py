"""Per-region execution profile of one simulated benchmark version.

``repro profile`` runs a single version of one benchmark with a
:class:`~repro.telemetry.hub.Telemetry` hub attached and folds the
hub's boundary snapshots into a region table: every interval between
consecutive hardware-gate transitions (plus the run edges) becomes a
:class:`ProfileRegion` whose statistics are *exact* counter deltas
(``HierarchySnapshot.__sub__``), not interpolations of the sampled
time series.  Summing the region deltas (``HierarchySnapshot.__add__``)
must reproduce the run totals — rendered as a checksum row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.experiment import simulate_trace
from repro.core.versions import prepare_codes
from repro.cpu.results import SimulationResult
from repro.memory.stats import HierarchySnapshot
from repro.params import MachineParams, base_config
from repro.telemetry.hub import Telemetry
from repro.workloads.base import Scale
from repro.workloads.registry import get_spec

__all__ = ["BenchmarkProfile", "ProfileRegion", "profile_benchmark"]

#: Sampling period (simulated cycles) used when the caller gives none.
DEFAULT_INTERVAL = 1000


@dataclass(frozen=True)
class ProfileRegion:
    """One gate-delimited interval of a run, with exact counter deltas."""

    index: int
    gate_on: bool
    start_cycle: int
    end_cycle: int
    instructions: int
    memory: HierarchySnapshot

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def l1d_miss_rate(self) -> float:
        return self.memory.l1d.miss_rate

    @property
    def mem_traffic(self) -> int:
        return self.memory.mem_reads + self.memory.mem_writes


@dataclass
class BenchmarkProfile:
    """Everything ``repro profile`` shows (and exports as a trace)."""

    benchmark: str
    version: str
    config_name: str
    result: SimulationResult
    telemetry: Telemetry
    regions: list[ProfileRegion]

    def region_totals(self) -> Optional[HierarchySnapshot]:
        """Sum of all region deltas; must equal the run's totals."""
        if not self.regions:
            return None
        return sum(region.memory for region in self.regions)

    def consistent(self) -> bool:
        """Region deltas add back up to the run's final counters."""
        totals = self.region_totals()
        return totals is None or totals == self.result.memory


def _regions_from_boundaries(telemetry: Telemetry) -> list[ProfileRegion]:
    regions = []
    boundaries = telemetry.boundaries
    for index in range(len(boundaries) - 1):
        lo, hi = boundaries[index], boundaries[index + 1]
        if hi.cycle == lo.cycle:
            continue  # zero-length edge (e.g. toggle at the final cycle)
        regions.append(
            ProfileRegion(
                index=len(regions),
                gate_on=lo.gate_on,
                start_cycle=lo.cycle,
                end_cycle=hi.cycle,
                instructions=hi.instructions - lo.instructions,
                memory=hi.memory - lo.memory,
            )
        )
    return regions


def profile_benchmark(
    name: str,
    scale: Scale,
    machine: MachineParams,
    config_name: str,
    version: str = "selective",
    mechanism: str = "bypass",
    interval: int = DEFAULT_INTERVAL,
) -> BenchmarkProfile:
    """Simulate one version of ``name`` with telemetry attached.

    ``version`` picks the (code, hardware) pairing of Section 4.3:
    ``base``/``pure_sw`` run without an assist, ``pure_hw``/``combined``
    with the assist always on, ``selective`` with the marker-gated
    assist starting OFF.
    """
    if version not in ("base", "pure_sw", "pure_hw", "combined", "selective"):
        raise ValueError(f"unknown version {version!r}")
    # The optimizer always plans against the base machine (as the suite
    # driver does); ``machine`` only affects the timed simulation.
    reference = base_config().scaled(scale.machine_divisor)
    codes = prepare_codes(get_spec(name), scale, reference)
    trace = {
        "base": codes.base_trace,
        "pure_hw": codes.base_trace,
        "pure_sw": codes.optimized_trace,
        "combined": codes.optimized_trace,
        "selective": codes.selective_trace,
    }[version]
    wants_assist = version in ("pure_hw", "combined", "selective")
    telemetry = Telemetry(interval=interval, name=f"{name}/{version}")
    result = simulate_trace(
        trace,
        machine,
        mechanism if wants_assist else None,
        initially_on=version != "selective",
        telemetry=telemetry,
    )
    return BenchmarkProfile(
        benchmark=name,
        version=version if not wants_assist else f"{version}/{mechanism}",
        config_name=config_name,
        result=result,
        telemetry=telemetry,
        regions=_regions_from_boundaries(telemetry),
    )

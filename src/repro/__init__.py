"""repro — a reproduction of Memik et al., "An Integrated Approach for
Improving Cache Behavior" (DATE 2003).

The package implements the paper's full stack from scratch:

* a multi-level cache/TLB/DRAM substrate with hardware-assist hook
  points (:mod:`repro.memory`);
* the two run-time locality mechanisms — MAT/SLDT cache bypassing and
  victim caching — gateable by activate/deactivate instructions
  (:mod:`repro.hwopt`);
* a trace-driven out-of-order timing model (:mod:`repro.cpu`,
  :mod:`repro.isa`);
* the compiler framework: executable loop-nest IR, reference
  classification, region detection with ON/OFF marker insertion, and
  the locality transformations — interchange, layout selection,
  padding, tiling, unroll-and-jam, scalar replacement
  (:mod:`repro.compiler`);
* a quantitative locality model — Fenwick-indexed LRU-stack reuse
  distances, whole-curve miss-ratio prediction, per-region profiles,
  and a model-driven ON/OFF gating policy (:mod:`repro.locality`,
  :mod:`repro.hwopt.policy`);
* the 13-benchmark workload suite (:mod:`repro.workloads`), experiment
  drivers (:mod:`repro.core`) and the table/figure reproduction
  harness (:mod:`repro.evaluation`).

Quick start::

    from repro import run_suite, SMALL, base_config
    suite = run_suite(SMALL, benchmarks=["vpenta", "perl", "tpcd_q1"],
                      configs={"Base Confg.": base_config})
    sweep = suite.sweep("Base Confg.")
    print(sweep.improvements("selective/bypass"))
"""

from repro.compiler import (
    LocalityOptimizer,
    OptimizationReport,
    VerificationError,
    VerifyReport,
    verify_program,
)
from repro.compiler.regions import detect_regions, insert_markers
from repro.core import (
    BenchmarkCodes,
    BenchmarkRun,
    SuiteResult,
    SweepResult,
    prepare_codes,
    run_benchmark,
    run_suite,
    run_sweep,
)
from repro.cpu import CPUSimulator, SimulationResult
from repro.hwopt import (
    CacheBypassAssist,
    HardwareGate,
    VictimCacheAssist,
    recommend_gating,
)
from repro.isa import Instruction, Opcode, Trace, TraceBuilder
from repro.locality import (
    MissRatioCurve,
    ReuseStackEngine,
    distance_histogram,
    split_profiles,
)
from repro.memory import MemoryHierarchy
from repro.params import (
    SENSITIVITY_CONFIGS,
    MachineParams,
    base_config,
    higher_l1_assoc,
    higher_l2_assoc,
    higher_mem_latency,
    larger_l1,
    larger_l2,
)
from repro.tracegen import TraceGenerator
from repro.workloads import MEDIUM, SMALL, TINY, Scale, all_specs, get_spec

__version__ = "1.0.0"

__all__ = [
    "BenchmarkCodes",
    "BenchmarkRun",
    "CPUSimulator",
    "CacheBypassAssist",
    "HardwareGate",
    "Instruction",
    "LocalityOptimizer",
    "MEDIUM",
    "MachineParams",
    "MemoryHierarchy",
    "MissRatioCurve",
    "Opcode",
    "OptimizationReport",
    "ReuseStackEngine",
    "SENSITIVITY_CONFIGS",
    "SMALL",
    "Scale",
    "SimulationResult",
    "SuiteResult",
    "SweepResult",
    "TINY",
    "Trace",
    "TraceBuilder",
    "TraceGenerator",
    "VerificationError",
    "VerifyReport",
    "VictimCacheAssist",
    "all_specs",
    "base_config",
    "detect_regions",
    "distance_histogram",
    "get_spec",
    "higher_l1_assoc",
    "higher_l2_assoc",
    "higher_mem_latency",
    "insert_markers",
    "larger_l1",
    "larger_l2",
    "prepare_codes",
    "recommend_gating",
    "run_benchmark",
    "run_suite",
    "run_sweep",
    "split_profiles",
    "verify_program",
]

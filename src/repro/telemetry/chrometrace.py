"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Two producers share the format:

* :func:`telemetry_trace_events` — a simulation's cycle-domain spans
  (HW_ON/HW_OFF regions nested inside one run-spanning interval, as
  ``B``/``E`` events) plus counter tracks (``C`` events) from the
  interval samples.  One simulated cycle maps to one microsecond of
  trace time.
* :func:`sweep_trace_events` — a sweep's wall-clock cell attempts as
  complete (``X``) events, one timeline row per machine configuration,
  with retry/timeout/resume annotations in the event args.

:func:`validate_trace` re-parses an exported file and enforces the
invariants the viewers rely on (well-formed events, per-thread
``B``/``E`` stack discipline, non-negative timestamps); the CI smoke
step and the test suite both run it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry
    from repro.telemetry.sweeptrace import SweepTimeline

__all__ = [
    "sweep_trace_events",
    "telemetry_trace_events",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]

_VALID_PHASES = {"B", "E", "X", "C", "M", "i", "I"}


def _meta(pid: int, tid: int, name: str, which: str) -> dict:
    return {
        "name": which,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def telemetry_trace_events(
    telemetry: "Telemetry",
    pid: int = 1,
    tid: int = 1,
    label: Optional[str] = None,
) -> list[dict]:
    """Render one simulation's telemetry as trace events.

    Spans become ``B``/``E`` pairs (zero-length spans become instant
    ``i`` events); interval samples become ``C`` counter events for the
    L1D/L2 interval miss ratios, occupancy, bypass activity, and gate
    state.  ``ts`` is the simulated cycle.
    """
    run_name = label or telemetry.name or "simulation"
    events: list[dict] = [
        _meta(pid, 0, f"repro sim: {run_name}", "process_name"),
        _meta(pid, tid, "regions", "thread_name"),
    ]

    #: rank 0 = the enclosing run span (must stay outermost even when a
    #: gate span covers the identical [0, total) interval), 1 = hub spans.
    spans = [(1, span) for span in telemetry.spans]
    total = telemetry.total_cycles
    if total is not None:
        spans.append((0, _run_span(run_name, total)))
    timed: list[tuple[tuple, dict]] = []
    for rank, span in spans:
        args = {k: _jsonable(v) for k, v in span.args.items()}
        if span.end == span.begin:
            timed.append(
                (
                    (span.begin, 2, 0, rank),
                    {
                        "name": span.name,
                        "ph": "i",
                        "ts": span.begin,
                        "pid": pid,
                        "tid": tid,
                        "s": "t",
                        "args": args,
                    },
                )
            )
            continue
        # Sort so stack discipline holds at shared timestamps: ends
        # before begins, inner ends (later begin) before outer ends,
        # outer begins (later end) before inner begins; rank breaks
        # exact [begin, end) ties so the run span stays outermost.
        timed.append(
            (
                (span.end, 0, -span.begin, -rank),
                {
                    "name": span.name,
                    "ph": "E",
                    "ts": span.end,
                    "pid": pid,
                    "tid": tid,
                },
            )
        )
        timed.append(
            (
                (span.begin, 1, -span.end, rank),
                {
                    "name": span.name,
                    "ph": "B",
                    "ts": span.begin,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                },
            )
        )
    events.extend(event for _, event in sorted(timed, key=lambda pair: pair[0]))

    series = telemetry.series
    if len(series):
        l1d = series.interval_rates("l1d_misses", "l1d_accesses")
        l2 = series.interval_rates("l2_misses", "l2_accesses")
        bypass = series.interval_rates("bypassed_fills", "l1d_accesses")
        cycles = series.column("cycle")
        l1d_occ = series.column("l1d_occupancy")
        assist_occ = series.column("assist_occupancy")
        gate = series.column("gate_on")
        for index, cycle in enumerate(cycles):
            events.append(
                {
                    "name": "miss ratio (interval)",
                    "ph": "C",
                    "ts": cycle,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "l1d": round(l1d[index][1], 6),
                        "l2": round(l2[index][1], 6),
                    },
                }
            )
            events.append(
                {
                    "name": "occupancy (lines)",
                    "ph": "C",
                    "ts": cycle,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "l1d": l1d_occ[index],
                        "assist": assist_occ[index],
                    },
                }
            )
            events.append(
                {
                    "name": "bypass rate (interval)",
                    "ph": "C",
                    "ts": cycle,
                    "pid": pid,
                    "tid": tid,
                    "args": {"bypassed": round(bypass[index][1], 6)},
                }
            )
            events.append(
                {
                    "name": "hw gate",
                    "ph": "C",
                    "ts": cycle,
                    "pid": pid,
                    "tid": tid,
                    "args": {"on": gate[index]},
                }
            )
    return events


def _run_span(name: str, total: int):
    from repro.telemetry.hub import CycleSpan

    return CycleSpan("run", 0, total, {"name": name})


def sweep_trace_events(timeline: "SweepTimeline", pid: int = 2) -> list[dict]:
    """Render a sweep timeline: one thread row per configuration.

    Cell attempts are complete (``X``) events in microseconds of wall
    clock; restored cells are instant events; annotations ride in
    ``args``.
    """
    events: list[dict] = [_meta(pid, 0, "repro sweep", "process_name")]
    tids: dict[str, int] = {}
    for span in timeline.spans:
        tid = tids.get(span.config)
        if tid is None:
            tid = len(tids) + 1
            tids[span.config] = tid
            events.append(_meta(pid, tid, span.config, "thread_name"))
        args = {
            "benchmark": span.benchmark,
            "status": span.status,
            "attempt": span.attempt,
            "seconds": round(span.duration, 4),
        }
        args.update({k: _jsonable(v) for k, v in span.annotations.items()})
        start_us = round(span.start * 1e6)
        if span.status == "restored":
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "ts": start_us,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": args,
                }
            )
            continue
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": start_us,
                "dur": max(round(span.duration * 1e6), 1),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return events


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_trace(
    path: Union[str, Path],
    events: Iterable[dict],
    meta: Optional[dict] = None,
) -> Path:
    """Write a trace-event JSON file; returns the path written."""
    path = Path(path)
    payload = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.telemetry",
            "time_unit": "1 ts = 1 simulated cycle (spans) / 1 us wall (sweep)",
            **(meta or {}),
        },
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def validate_trace(data: Union[dict, list]) -> dict:
    """Check trace-event invariants; return a summary or raise ValueError.

    Enforced: the JSON object shape, known phase codes, required fields
    per phase, non-negative timestamps, and per-``(pid, tid)``
    ``B``/``E`` stack discipline (every ``E`` closes the most recent
    open ``B`` of the same name; nothing left open at the end).
    """
    events = data.get("traceEvents") if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError("trace must be a list or contain 'traceEvents'")
    stacks: dict[tuple, list[dict]] = {}
    counts = {"events": 0, "spans": 0, "counters": 0, "instants": 0}
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"non-object event: {event!r}")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"unknown phase {phase!r} in {event!r}")
        counts["events"] += 1
        if phase == "M":
            continue
        if "name" not in event or "ts" not in event:
            raise ValueError(f"event missing name/ts: {event!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"bad timestamp in {event!r}")
        key = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(key, []).append(event)
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"E without open B on {key}: {event!r}")
            opener = stack.pop()
            if opener["name"] != event["name"]:
                raise ValueError(
                    f"E {event['name']!r} does not close B "
                    f"{opener['name']!r} on {key}"
                )
            if ts < opener["ts"]:
                raise ValueError(
                    f"span {event['name']!r} ends at {ts} before its "
                    f"begin {opener['ts']}"
                )
            counts["spans"] += 1
        elif phase == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(f"X event missing/negative dur: {event!r}")
            counts["spans"] += 1
        elif phase == "C":
            counts["counters"] += 1
        else:  # instant
            counts["instants"] += 1
    open_spans = {key: stack for key, stack in stacks.items() if stack}
    if open_spans:
        leftovers = {
            key: [event["name"] for event in stack]
            for key, stack in open_spans.items()
        }
        raise ValueError(f"unclosed B spans at end of trace: {leftovers}")
    return counts


def validate_trace_file(path: Union[str, Path]) -> dict:
    """Load a trace file, validate it, and return the summary counts."""
    with open(path) as handle:
        data = json.load(handle)
    return validate_trace(data)

"""Wall-clock timeline of a sweep: where the hours actually go.

The fault-tolerant scheduler (:mod:`repro.core.parallel`) and the
sequential suite driver record one :class:`WallSpan` per cell *attempt*
into a :class:`SweepTimeline` — so retries, timeouts, in-process
fallbacks, and store-restored cells are all visible — plus instant
events for cells resumed from the run store.  Export via
:func:`repro.telemetry.chrometrace.sweep_trace_events` renders one
timeline row per machine configuration in Perfetto.

Timestamps are ``time.monotonic()`` seconds from the timeline's own
start, taken in whichever process does the work; all spans of one
sweep share the parent's clock (worker attempts are timed by the
parent scheduler around the worker's lifetime).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SweepTimeline", "WallSpan"]


@dataclass(frozen=True)
class WallSpan:
    """One wall-clock interval of sweep work.

    ``status`` is ``ok``, ``error``, ``crash``, ``timeout``,
    ``restored`` (cell skipped via the run store), or ``prepare``
    (parent-side optimizer + trace generation).  ``attempt`` counts
    from 1; annotations carry scheduler context (retry delay, failure
    message, in-process fallback, ...).
    """

    name: str
    benchmark: str
    config: str
    start: float
    end: float
    status: str
    attempt: int = 1
    annotations: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SweepTimeline:
    """Collects :class:`WallSpan` records for one sweep invocation."""

    def __init__(self) -> None:
        self.origin = time.monotonic()
        self.spans: list[WallSpan] = []

    def clock(self) -> float:
        """Seconds since the timeline was created."""
        return time.monotonic() - self.origin

    def record(
        self,
        name: str,
        benchmark: str,
        config: str,
        start: float,
        status: str,
        attempt: int = 1,
        end: Optional[float] = None,
        **annotations,
    ) -> WallSpan:
        """Append a span; ``start``/``end`` are :meth:`clock` values."""
        span = WallSpan(
            name=name,
            benchmark=benchmark,
            config=config,
            start=start,
            end=self.clock() if end is None else end,
            status=status,
            attempt=attempt,
            annotations=annotations,
        )
        self.spans.append(span)
        return span

    def restored(self, benchmark: str, config: str, **annotations) -> WallSpan:
        """Record a cell skipped because its stored result verified."""
        now = self.clock()
        return self.record(
            f"{benchmark} (restored)",
            benchmark,
            config,
            start=now,
            end=now,
            status="restored",
            **annotations,
        )

    def total_busy_seconds(self) -> float:
        """Sum of span durations (not wall time: spans overlap)."""
        return sum(span.duration for span in self.spans)

    def by_status(self, status: str) -> list[WallSpan]:
        return [span for span in self.spans if span.status == status]

    def __len__(self) -> int:
        return len(self.spans)

"""The telemetry hub: counters, gauges, spans, interval sampling.

A :class:`Telemetry` instance is handed to a
:class:`~repro.cpu.pipeline.CPUSimulator`; the simulator binds it to
its memory hierarchy, advances ``now`` as simulated cycles pass, and
the hub records:

* **counters / gauges** — named integers (monotonic / last-value);
* **spans** — nested ``[begin, end)`` simulated-cycle intervals.  The
  hardware gate reports its ON/OFF transitions here, so every
  compiler-marked region becomes a span;
* **interval samples** — every ``interval`` cycles the hierarchy's
  cumulative counters are appended to a columnar
  :class:`~repro.telemetry.series.TimeSeries`;
* **boundary snapshots** — a full
  :class:`~repro.memory.stats.HierarchySnapshot` at run start, at every
  gate transition, and at run end.  Region-level statistics are exact
  differences of these snapshots (``HierarchySnapshot.__sub__``), not
  interpolations of the sampled series.

The hub is deliberately passive: it never touches simulator state, so
attaching one cannot perturb results (pinned by
``tests/telemetry/test_identity.py``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.telemetry.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.stats import HierarchySnapshot

__all__ = ["CycleSpan", "GateBoundary", "Telemetry"]

#: Span name used for hardware-gate ON regions.
GATE_SPAN = "hw_region"


@dataclass
class CycleSpan:
    """One completed simulated-cycle span."""

    name: str
    begin: int
    end: int
    args: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end - self.begin


@dataclass(frozen=True)
class GateBoundary:
    """Hierarchy state captured at a gate transition (or run edge)."""

    cycle: int
    instructions: int
    gate_on: bool
    memory: "HierarchySnapshot"


class Telemetry:
    """Instrumentation hub for one simulation run.

    ``interval`` is the sampling period in simulated cycles; 0 disables
    the time series but keeps spans, counters, and boundary snapshots.
    """

    def __init__(self, interval: int = 0, name: str = "") -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.interval = interval
        self.name = name
        self.counters: Counter = Counter()
        self.gauges: dict[str, int] = {}
        self.series = TimeSeries()
        self.spans: list[CycleSpan] = []
        self.boundaries: list[GateBoundary] = []
        #: Current simulated cycle; the simulator updates this before
        #: delegating rare events (gate toggles) to the hub.
        self.now = 0
        #: Instructions retired so far; updated alongside ``now``.
        self.instructions = 0
        self.total_cycles: Optional[int] = None
        self._stack: list[CycleSpan] = []
        self._counters_fn: Optional[Callable[[], tuple[int, ...]]] = None
        self._snapshot_fn: Optional[Callable[[], "HierarchySnapshot"]] = None
        self._gate_on = False

    # ------------------------------------------------------------------
    # counters and gauges

    def incr(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] += amount

    def set_gauge(self, gauge: str, value: int) -> None:
        self.gauges[gauge] = value

    # ------------------------------------------------------------------
    # binding to a simulation

    def bind(
        self,
        counters_fn: Callable[[], tuple[int, ...]],
        snapshot_fn: Callable[[], "HierarchySnapshot"],
        gate_on: bool,
    ) -> None:
        """Attach the hierarchy's counter sources; record the t=0 edge.

        Called by :class:`~repro.cpu.pipeline.CPUSimulator` at the top
        of a run.  Re-binding (one hub per run is the contract) resets
        nothing — a hub records exactly one run.
        """
        if self._counters_fn is not None:
            raise RuntimeError(
                "telemetry hub is already bound; use one hub per run"
            )
        self._counters_fn = counters_fn
        self._snapshot_fn = snapshot_fn
        self._gate_on = gate_on
        self.set_gauge("gate_on", int(gate_on))
        self.boundaries.append(
            GateBoundary(0, 0, gate_on, snapshot_fn())
        )
        if gate_on:
            # A run that starts ON (pure_hw, or a base gate) opens its
            # hardware span at cycle 0.
            self.begin_span(GATE_SPAN, 0, source="initial")

    @property
    def bound(self) -> bool:
        return self._counters_fn is not None

    # ------------------------------------------------------------------
    # sampling

    def sample(self, cycle: int, instructions: int) -> None:
        """Append one interval sample row at ``cycle``."""
        if self._counters_fn is None:
            raise RuntimeError("telemetry hub is not bound to a run")
        self.series.append(
            (cycle, instructions)
            + self._counters_fn()
            + (int(self._gate_on),)
        )

    # ------------------------------------------------------------------
    # spans

    def begin_span(self, span_name: str, cycle: Optional[int] = None, **args) -> None:
        """Open a span at ``cycle`` (default: the current cycle)."""
        begin = self.now if cycle is None else cycle
        self._stack.append(CycleSpan(span_name, begin, begin, dict(args)))

    def end_span(self, cycle: Optional[int] = None, **args) -> Optional[CycleSpan]:
        """Close the innermost open span; returns it (None if unbalanced)."""
        end = self.now if cycle is None else cycle
        if not self._stack:
            self.incr("unbalanced_span_ends")
            return None
        span = self._stack.pop()
        span.end = end
        span.args.update(args)
        self.spans.append(span)
        return span

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    # gate transitions (called by repro.hwopt.gate.HardwareGate)

    def gate_changed(self, enabled: bool) -> None:
        """Record one ON/OFF transition at the current cycle.

        The simulator sets ``now``/``instructions`` before the gate
        delegates here, so the span timestamps and the boundary
        snapshot are exact at the marker instruction.
        """
        self.incr("gate_activations" if enabled else "gate_deactivations")
        if enabled == self._gate_on:
            # Redundant marker (e.g. double ON): count it, no new span.
            self.incr("redundant_gate_markers")
            return
        self._gate_on = enabled
        self.set_gauge("gate_on", int(enabled))
        if self._snapshot_fn is not None:
            self.boundaries.append(
                GateBoundary(
                    self.now, self.instructions, enabled, self._snapshot_fn()
                )
            )
        if enabled:
            self.begin_span(GATE_SPAN)
        elif self._stack and self._stack[-1].name == GATE_SPAN:
            self.end_span()
        else:
            self.incr("unbalanced_span_ends")
        if self.interval > 0 and self._counters_fn is not None:
            # Force a sample at the transition so the series shows the
            # regime change even between interval ticks.
            self.sample(self.now, self.instructions)

    # ------------------------------------------------------------------
    # run end

    def finish(self, total_cycles: int, instructions: int) -> None:
        """Close the run: final sample, final boundary, close open spans."""
        self.now = total_cycles
        self.instructions = instructions
        self.total_cycles = total_cycles
        while self._stack:
            self.end_span(total_cycles, unterminated=True)
        if self._snapshot_fn is not None:
            self.boundaries.append(
                GateBoundary(
                    total_cycles, instructions, self._gate_on, self._snapshot_fn()
                )
            )
        if self.interval > 0 and self._counters_fn is not None:
            self.sample(total_cycles, instructions)

    # ------------------------------------------------------------------

    def gate_spans(self) -> list[CycleSpan]:
        """Completed hardware-ON spans in begin order."""
        return sorted(
            (span for span in self.spans if span.name == GATE_SPAN),
            key=lambda span: span.begin,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry({self.name!r}, interval={self.interval}, "
            f"{len(self.series)} samples, {len(self.spans)} spans)"
        )

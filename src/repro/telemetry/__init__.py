"""Observability subsystem: cycle-level telemetry and trace export.

The simulator stack can now explain *when* things happen instead of
only reporting end-of-run aggregates:

* :class:`~repro.telemetry.hub.Telemetry` — the instrumentation hub a
  :class:`~repro.cpu.pipeline.CPUSimulator` (and the hardware gate)
  report into: named counters, gauges, a simulated-cycle span stack,
  and interval sampling of the memory hierarchy's counters into
  columnar buffers.  When no hub is attached the hot loops pay a single
  local ``is None`` check per instruction — results are bit-identical
  with and without one (pinned by ``tests/telemetry``).
* :class:`~repro.telemetry.series.TimeSeries` — ``array``-backed
  columnar storage for the interval samples (miss ratios, occupancy,
  bypass rate, gate state over simulated cycles).
* :mod:`~repro.telemetry.chrometrace` — export to the Chrome
  trace-event JSON format; the files load directly in Perfetto or
  ``chrome://tracing`` and show HW_ON/HW_OFF region spans at
  simulated-cycle granularity alongside counter tracks.
* :class:`~repro.telemetry.sweeptrace.SweepTimeline` — wall-clock
  spans of sweep cells (one per attempt, with retry / timeout / resume
  annotations) recorded by :mod:`repro.core.parallel` and
  :mod:`repro.core.runner`, exported to the same trace format.

Entry points: ``repro profile <benchmark>`` renders a per-region
summary and writes the cycle timeline; ``--trace-out`` on
``run``/``table2``/``table3``/``figure`` writes the sweep timeline.
"""

from repro.telemetry.chrometrace import (
    sweep_trace_events,
    telemetry_trace_events,
    validate_trace,
    validate_trace_file,
    write_trace,
)
from repro.telemetry.hub import CycleSpan, Telemetry
from repro.telemetry.series import SAMPLE_FIELDS, TimeSeries
from repro.telemetry.sweeptrace import SweepTimeline, WallSpan

__all__ = [
    "CycleSpan",
    "SAMPLE_FIELDS",
    "SweepTimeline",
    "Telemetry",
    "TimeSeries",
    "WallSpan",
    "sweep_trace_events",
    "telemetry_trace_events",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]

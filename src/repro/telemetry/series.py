"""Columnar time-series storage for interval samples.

One row is appended per sampling interval (and at every span boundary,
so per-region deltas are exact).  Columns are ``array('q')`` — one
machine word per field, no per-sample objects — matching the packed
trace representation the rest of the stack uses for bulk data.
"""

from __future__ import annotations

from array import array
from typing import Iterator

__all__ = ["SAMPLE_FIELDS", "TimeSeries"]

#: Column order of one sample row.  All cumulative counts except
#: ``cycle`` (the sample's simulated-cycle timestamp), the two
#: occupancy gauges, and ``gate_on`` (0/1 hardware gate state).
SAMPLE_FIELDS = (
    "cycle",
    "instructions",
    "l1d_accesses",
    "l1d_misses",
    "l2_accesses",
    "l2_misses",
    "l1d_occupancy",
    "assist_occupancy",
    "mem_traffic",
    "assist_hits",
    "bypassed_fills",
    "gate_on",
)


class TimeSeries:
    """Fixed-schema columnar sample buffer (see :data:`SAMPLE_FIELDS`)."""

    __slots__ = ("_columns",)

    def __init__(self) -> None:
        self._columns = {name: array("q") for name in SAMPLE_FIELDS}

    def __len__(self) -> int:
        return len(self._columns["cycle"])

    def append(self, row: tuple[int, ...]) -> None:
        """Append one sample; ``row`` must match :data:`SAMPLE_FIELDS`."""
        if len(row) != len(SAMPLE_FIELDS):
            raise ValueError(
                f"sample row has {len(row)} fields, "
                f"expected {len(SAMPLE_FIELDS)}"
            )
        for name, value in zip(SAMPLE_FIELDS, row):
            self._columns[name].append(value)

    def column(self, name: str) -> array:
        """One column by field name, by reference — do not mutate."""
        return self._columns[name]

    def last_cycle(self) -> int:
        """Timestamp of the most recent sample (-1 when empty)."""
        cycles = self._columns["cycle"]
        return cycles[-1] if cycles else -1

    def rows(self) -> Iterator[dict[str, int]]:
        """Samples as dicts, in time order (reporting, not hot-path)."""
        columns = [self._columns[name] for name in SAMPLE_FIELDS]
        for values in zip(*columns):
            yield dict(zip(SAMPLE_FIELDS, values))

    def interval_rates(
        self, numerator: str, denominator: str
    ) -> list[tuple[int, float]]:
        """Per-interval ratio of two cumulative columns.

        Returns ``(cycle, rate)`` per sample, where ``rate`` is the
        delta of ``numerator`` over the delta of ``denominator`` since
        the previous sample (0.0 for an idle interval).  This is how
        cumulative miss columns become the interval miss-ratio track.
        """
        nums = self._columns[numerator]
        dens = self._columns[denominator]
        cycles = self._columns["cycle"]
        out: list[tuple[int, float]] = []
        prev_num = prev_den = 0
        for cycle, num, den in zip(cycles, nums, dens):
            delta_den = den - prev_den
            rate = (num - prev_num) / delta_den if delta_den else 0.0
            out.append((cycle, rate))
            prev_num, prev_den = num, den
        return out

"""The sweep service: asyncio HTTP front end over the run store.

Request lifecycle::

    POST /v1/jobs ──▶ decompose() ──▶ one CellState per store cell
                                           │
                          ┌────────────────┼─────────────────┐
                          ▼                ▼                 ▼
                     warm (store)    in-flight (dup)    cold (miss)
                     store.get()     await the same     execute_cell()
                     microseconds    future — one       in a worker
                     no scheduler    computation for    process, with
                     involvement     N requests         timeout/retry

    ──▶ aggregate_result() ──▶ canonical JSON, byte-identical to the
        offline runner's payload for the same store keys.

Single-flight coalescing leans on the event loop for atomicity: the
in-flight check, the (synchronous) store probe, and the future
registration happen with **no await in between**, so two concurrent
requests for one cold cell can never both miss the registry.  Cold
cells run on :func:`repro.core.parallel.execute_cell` in worker
threads (one blocking call per cell), so a hung or killed worker
process is the scheduler's problem — never the event loop's — and a
``REPRO_FAULTS`` chaos spec degrades to a structured per-cell failure
while the server keeps serving.

Concurrency is capped twice: a global semaphore sized to the service's
worker budget, and a per-job semaphore sized to the request's explicit
``jobs`` override (threaded end to end as a parameter; the service
never mutates ``REPRO_JOBS``).

On top of that sits the resilience layer:

* **Admission control** — at most ``max_pending`` non-terminal jobs
  and ``client_cap`` per client (``X-Repro-Client`` header, else peer
  address); excess submissions are shed with a structured ``429`` and
  a ``Retry-After`` header while admitted jobs run to completion.
* **Lifecycle control** — ``DELETE /v1/jobs/{id}`` (and per-job
  ``deadline`` seconds) sets the job's cancel event: in-flight cell
  workers are killed through :func:`execute_cell`'s kill path, queued
  cells never start, and the job finishes ``cancelled``.
* **Graceful drain** — SIGTERM/SIGINT stop admission (503 +
  ``Retry-After``), emit a ``draining`` event on every live stream,
  let in-flight jobs finish within ``drain_grace`` seconds (completed
  cells are already checkpointed to the store as they land), cancel
  stragglers, then exit cleanly.
* **Circuit breaker** — ``breaker_threshold`` consecutive worker-pool
  failures trip warm-only mode: store hits keep serving, cold work is
  shed with a structured ``503`` until a half-open probe succeeds
  after ``breaker_cooldown`` seconds.

``/v1/healthz`` answers whenever the event loop does; ``/v1/readyz``
additionally requires admission to be open (not draining, executor
accepting) and reports the breaker state.

``POST /v1/predict`` sits apart from the job machinery: it answers
with the *analytic* locality model (:mod:`repro.analytic`) — a
predicted MRC, per-region gating, and tile choices computed straight
from the IR in milliseconds — so it responds synchronously, runs no
simulation, and touches no store cell.  Payloads are single-flighted
and cached per (benchmark, scale, threshold, miss_floor).
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import threading
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.core.faults import FaultPlan, corrupt_stored_entry
from repro.core.parallel import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    CellAttempt,
    CellFailure,
    _slim_codes,
    execute_cell,
    resolve_jobs,
)
from repro.core.runstore import RunStore, trace_checksum
from repro.core.versions import prepare_codes
from repro.hwopt.policy import DEFAULT_MISS_FLOOR
from repro.params import base_config
from repro.service.cells import (
    SCALES,
    CellSpec,
    JobRequest,
    aggregate_result,
    canonical_json,
    decompose,
)
from repro.service.jobs import CellState, Job
from repro.telemetry import SweepTimeline, sweep_trace_events
from repro.workloads.base import SMALL, Scale
from repro.workloads.registry import get_spec

__all__ = [
    "BackgroundServer",
    "CircuitBreaker",
    "JobOptions",
    "ServiceConfig",
    "SweepService",
    "serve_forever",
]

#: Hard ceilings on what one HTTP request may carry.
_MAX_BODY = 1 << 20
_MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Startup parameters of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is reported)
    store: Union[str, Path] = "runs"
    #: Baseline worker budget; ``None`` resolves REPRO_JOBS/CPU count
    #: once at startup.  Per-request ``jobs`` overrides never exceed it.
    jobs: Optional[int] = None
    scale: Scale = SMALL
    timeout: Optional[float] = None
    retries: int = DEFAULT_RETRIES
    backoff: float = DEFAULT_BACKOFF
    #: Service-wide chaos plan; ``None`` reads ``REPRO_FAULTS``.
    faults: Optional[FaultPlan] = None
    #: Admission high-water mark: max non-terminal jobs before load
    #: shedding (429 + Retry-After).
    max_pending: int = 64
    #: Per-client in-flight job cap (X-Repro-Client header, else the
    #: peer address).
    client_cap: int = 16
    #: Retry-After hint (seconds) attached to shed responses.
    shed_retry_after: float = 1.0
    #: Seconds a SIGTERM drain waits for in-flight jobs before
    #: cancelling them (killing their workers).
    drain_grace: float = 20.0
    #: Consecutive worker-pool failures that trip the circuit breaker
    #: into warm-only mode.
    breaker_threshold: int = 5
    #: Seconds an open breaker waits before the half-open probe.
    breaker_cooldown: float = 30.0


@dataclass(frozen=True)
class JobOptions:
    """Per-request execution knobs (all optional in the body)."""

    jobs: int
    timeout: Optional[float]
    retries: int
    backoff: float
    plan: FaultPlan
    #: Wall-clock budget for the whole job; exceeded → cancelled.
    deadline: Optional[float] = None
    semaphore: asyncio.Semaphore = field(compare=False, repr=False, default=None)


class CircuitBreaker:
    """Worker-pool circuit breaker (closed → open → half-open).

    Counts *consecutive* scheduler-execution failures (error, crash,
    timeout — never cancellations or breaker refusals).  At
    ``threshold`` the breaker opens: cold cells are refused (the
    service serves warm store hits only) until ``cooldown`` seconds
    pass, after which exactly one cold execution is admitted as the
    half-open probe.  A probe success closes the breaker; a probe
    failure reopens it for another cooldown.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"  # closed|open|half-open
        self.failures = 0  # consecutive
        self.trips = 0
        self._clock = clock
        self._opened_at = 0.0
        self._probing = False

    def allow_cold(self) -> bool:
        """May a cold execution start right now?  (May start a probe.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self.state = "half-open"
            self._probing = False
        if self._probing:
            return False  # one probe at a time
        self._probing = True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._probing = False
        self.state = "closed"

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self._opened_at = self._clock()
            self._probing = False

    def release_probe(self) -> None:
        """Abort an admitted cold slot without a verdict (cancellation).

        Without this, a cancelled half-open probe would leave the
        breaker waiting forever for a result that never comes.
        """
        self._probing = False

    def retry_after(self) -> float:
        """Seconds until a cold retry could be admitted (>= 0)."""
        if self.state != "open":
            return 0.0
        return max(
            0.0, self.cooldown - (self._clock() - self._opened_at)
        )

    def to_json(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "trips": self.trips,
            "retry_after": round(self.retry_after(), 3),
        }


class _BadRequest(ValueError):
    """Client error surfaced as an HTTP 400."""


class _Shed(Exception):
    """An admission refusal: HTTP 429/503 + Retry-After + JSON body."""

    def __init__(
        self,
        status: int,
        reason: str,
        message: str,
        retry_after: float,
        **extra: Any,
    ):
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message
        self.retry_after = retry_after
        self.extra = extra

    def body(self) -> dict:
        return {
            "error": self.message,
            "reason": self.reason,
            "retry_after": round(self.retry_after, 3),
            **self.extra,
        }


class SweepService:
    """All service state; every method runs on the event loop."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.store = (
            config.store
            if isinstance(config.store, RunStore)
            else RunStore(config.store)
        )
        self.workers = resolve_jobs(config.jobs)
        self.faults = (
            config.faults if config.faults is not None else FaultPlan.from_env()
        )
        self.jobs: dict[str, Job] = {}
        self.metrics: dict[str, int] = {
            "requests": 0,
            "jobs_submitted": 0,
            "admitted": 0,
            "shed_overload": 0,
            "shed_client_cap": 0,
            "shed_breaker": 0,
            "shed_draining": 0,
            "jobs_cancelled": 0,
            "cells_total": 0,
            "warm_hits": 0,
            "coalesced": 0,
            "scheduler_executions": 0,
            "cell_failures": 0,
            "degraded_cells": 0,
            "attempts": 0,
            "prepares": 0,
            "predicts": 0,
            "errors": 0,
            "drains": 0,
        }
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
        )
        self.draining = False
        #: client id → number of that client's non-terminal jobs.
        self._client_inflight: dict[str, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # +2 so benchmark preparation never starves behind a full grid
        # of executing cells.
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers + 2,
            thread_name_prefix="repro-service",
        )
        self._sem = asyncio.Semaphore(self.workers)
        #: Single-flight registry: store key → future of the in-flight
        #: computation.  Entries exist only while a cell is executing.
        self._inflight: dict[str, asyncio.Future] = {}
        #: (benchmark, scale.name) → (slimmed codes, trace digests).
        self._prep_cache: dict[tuple[str, str], tuple] = {}
        self._prep_inflight: dict[tuple[str, str], asyncio.Future] = {}
        #: (benchmark, scale, threshold, miss_floor) → analytic payload.
        self._predict_cache: dict[tuple, dict] = {}
        self._predict_inflight: dict[tuple, asyncio.Future] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # job submission and execution

    def parse_options(self, body: dict) -> JobOptions:
        jobs = body.get("jobs")
        if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
            raise _BadRequest(f"jobs must be a positive integer, got {jobs!r}")
        jobs = min(resolve_jobs(jobs, default=self.workers), self.workers)
        timeout = body.get("timeout", self.config.timeout)
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            raise _BadRequest(f"timeout must be positive, got {timeout!r}")
        retries = body.get("retries", self.config.retries)
        if not isinstance(retries, int) or retries < 0:
            raise _BadRequest(f"retries must be an integer >= 0, got {retries!r}")
        faults = body.get("faults")
        if faults is not None and not isinstance(faults, str):
            raise _BadRequest("faults must be a spec string")
        try:
            plan = (
                FaultPlan.parse(faults) if faults is not None else self.faults
            )
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        deadline = body.get("deadline")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise _BadRequest(
                f"deadline must be positive seconds, got {deadline!r}"
            )
        return JobOptions(
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            backoff=self.config.backoff,
            plan=plan,
            deadline=deadline,
            semaphore=asyncio.Semaphore(jobs),
        )

    # ------------------------------------------------------------------
    # admission control

    def pending_jobs(self) -> int:
        return sum(1 for job in self.jobs.values() if not job.done)

    def _all_warm(self, request: JobRequest) -> bool:
        """Can every cell of ``request`` be served from the store now?

        Used by the open-breaker admission gate: warm-only mode still
        serves jobs that will never touch the scheduler.  Cells that
        need prepared codes are only resolvable if their benchmark's
        trace digests are already cached; otherwise computing the key
        itself would need a (cold) prepare, so they count as cold.
        """
        for spec in request.specs:
            digests: tuple = ()
            if spec.needs_codes:
                cached = self._prep_cache.get(
                    (spec.benchmark, spec.scale.name)
                )
                if cached is None:
                    return False
                digests = cached[1]
            key = spec.store_key(self.store, digests)
            if not spec.payload_valid(self.store.get(key)):
                return False
        return True

    def _admit(self, request: JobRequest, client: str) -> None:
        """Shed-or-admit; raises :class:`_Shed` to refuse."""
        if self.draining:
            self.metrics["shed_draining"] += 1
            raise _Shed(
                503,
                "draining",
                "service is draining; not accepting new jobs",
                self.config.drain_grace,
            )
        pending = self.pending_jobs()
        if pending >= self.config.max_pending:
            self.metrics["shed_overload"] += 1
            raise _Shed(
                429,
                "overload",
                f"pending job high-water mark reached "
                f"({pending}/{self.config.max_pending})",
                self.config.shed_retry_after,
                pending=pending,
                high_water=self.config.max_pending,
            )
        inflight = self._client_inflight.get(client, 0)
        if inflight >= self.config.client_cap:
            self.metrics["shed_client_cap"] += 1
            raise _Shed(
                429,
                "client_cap",
                f"client {client!r} has {inflight} jobs in flight "
                f"(cap {self.config.client_cap})",
                self.config.shed_retry_after,
                client=client,
                inflight=inflight,
                cap=self.config.client_cap,
            )
        if (
            self.breaker.state == "open"
            and self.breaker.retry_after() > 0
            and not self._all_warm(request)
        ):
            self.metrics["shed_breaker"] += 1
            raise _Shed(
                503,
                "breaker_open",
                "circuit breaker open: serving warm store cells only",
                max(self.breaker.retry_after(), 0.1),
                breaker=self.breaker.to_json(),
            )

    def submit(self, body: dict, client: str = "") -> Job:
        """Validate, admit, decompose, and launch one job.

        Returns immediately; raises :class:`_BadRequest` (400) on an
        invalid body and :class:`_Shed` (429/503) on admission refusal.
        """
        try:
            request = decompose(body, self.config.scale)
            options = self.parse_options(body)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        self._admit(request, client)
        job = Job(
            kind=request.kind,
            params=request.params,
            cells=[CellState(spec) for spec in request.specs],
            client=client,
        )
        self.jobs[job.id] = job
        self._client_inflight[client] = (
            self._client_inflight.get(client, 0) + 1
        )
        self.metrics["jobs_submitted"] += 1
        self.metrics["admitted"] += 1
        self.metrics["cells_total"] += len(job.cells)
        job.emit("job", state="queued", cells=len(job.cells))
        self._loop.create_task(self._run_job(job, request, options))
        return job

    # ------------------------------------------------------------------
    # cancellation and drain

    def cancel_job(self, job: Job, reason: str) -> bool:
        """Request cancellation; False if already terminal/cancelling.

        Sets the job's cancel event: executing cell workers are killed
        by :func:`execute_cell` within one poll period, cells queued on
        the worker semaphores abort before starting, and the job
        finishes in state ``cancelled``.
        """
        if job.done or job.cancelling:
            return False
        job.cancel_reason = reason
        job.cancel_event.set()
        self.metrics["jobs_cancelled"] += 1
        job.emit("job", state="cancelling", reason=reason)
        return True

    async def drain(self, budget: Optional[float] = None) -> dict:
        """Graceful shutdown: stop admitting, finish or cancel jobs.

        Emits a ``draining`` event on every live job's stream, waits up
        to ``budget`` seconds for in-flight jobs to finish (their
        completed cells are already checkpointed to the run store as
        they land), cancels the stragglers (killing their worker
        processes), and returns a summary once every job is terminal.
        Idempotent; admission stays closed afterwards.
        """
        budget = (
            budget if budget is not None else self.config.drain_grace
        )
        first = not self.draining
        self.draining = True
        if first:
            self.metrics["drains"] += 1
        active = [job for job in self.jobs.values() if not job.done]
        for job in active:
            job.emit("draining", budget=budget)
        deadline = self._loop.time() + budget
        while (
            any(not job.done for job in active)
            and self._loop.time() < deadline
        ):
            await asyncio.sleep(0.05)
        stragglers = [job for job in active if not job.done]
        for job in stragglers:
            self.cancel_job(job, "drain budget exceeded")
        # Cancellation lands within ~one scheduler poll period; give it
        # a hard bound so drain always returns.
        grace = self._loop.time() + 10.0
        while (
            any(not job.done for job in active)
            and self._loop.time() < grace
        ):
            await asyncio.sleep(0.05)
        return {
            "jobs": len(active),
            "finished": len(active) - len(stragglers),
            "cancelled": len(stragglers),
        }

    async def _run_job(
        self, job: Job, request: JobRequest, options: JobOptions
    ) -> None:
        job.state = "running"
        job.emit("job", state="running")
        deadline_handle = None
        if options.deadline is not None:
            deadline_handle = self._loop.call_later(
                options.deadline,
                self.cancel_job,
                job,
                f"deadline of {options.deadline:g}s exceeded",
            )
        timeline = SweepTimeline()
        try:
            values = await asyncio.gather(
                *(
                    self._resolve_cell(job, cell, options, timeline)
                    for cell in job.cells
                ),
                return_exceptions=True,
            )
        finally:
            if deadline_handle is not None:
                deadline_handle.cancel()
            count = self._client_inflight.get(job.client, 0) - 1
            if count > 0:
                self._client_inflight[job.client] = count
            else:
                self._client_inflight.pop(job.client, None)
        values = [
            value
            if not isinstance(value, BaseException)
            else CellFailure(
                benchmark=cell.spec.benchmark,
                config=cell.spec.config,
                kind="error",
                attempts=max(cell.attempts, 1),
                message=f"{type(value).__name__}: {value}",
            )
            for cell, value in zip(job.cells, values)
        ]
        document = aggregate_result(
            request.kind,
            [cell.spec for cell in job.cells],
            [cell.key for cell in job.cells],
            values,
        )
        job.result_bytes = canonical_json(document)
        job.trace_document = self._trace_document(job, timeline, values)
        if job.cancelling:
            job.finish("cancelled", error=job.cancel_reason)
            return
        failed = any(isinstance(value, CellFailure) for value in values)
        job.finish("failed" if failed else "done")

    async def _resolve_cell(
        self,
        job: Job,
        cell: CellState,
        options: JobOptions,
        timeline: SweepTimeline,
    ) -> Any:
        spec = cell.spec
        digests: tuple = ()
        codes = None
        if spec.needs_codes:
            job.cell_event(cell, "preparing")
            try:
                codes, digests = await self._prepared(spec.benchmark, spec.scale)
            except Exception as exc:  # noqa: BLE001 - degrade per-cell
                failure = CellFailure(
                    benchmark=spec.benchmark,
                    config=spec.config,
                    kind="error",
                    attempts=1,
                    message=f"prepare failed: {type(exc).__name__}: {exc}",
                )
                self.metrics["cell_failures"] += 1
                job.cell_event(cell, "failed", message=failure.message)
                return failure
        key = spec.store_key(self.store, digests)
        cell.key = key

        while True:
            if job.cancelling:
                value = self._cancelled_failure(cell)
                break
            # --- single-flight critical section: the in-flight probe,
            # the store probe, and the future registration must see a
            # consistent world, so there is deliberately NO await
            # between them.
            existing = self._inflight.get(key)
            if existing is not None:
                self.metrics["coalesced"] += 1
                job.cell_event(cell, "running", source="coalesced")
                value = await asyncio.shield(existing)
                if (
                    isinstance(value, CellFailure)
                    and value.kind == "cancelled"
                    and not job.cancelling
                ):
                    # We coalesced onto a job that got cancelled; this
                    # job is still live, so re-resolve from scratch
                    # (store probe or own execution).
                    continue
                break
            cached = self.store.get(key)
            if spec.payload_valid(cached):
                self.metrics["warm_hits"] += 1
                timeline.restored(spec.benchmark, spec.config)
                job.cell_event(cell, "done", source="store")
                return cached
            future: asyncio.Future = self._loop.create_future()
            self._inflight[key] = future
            job.cell_event(cell, "running", source="scheduler")
            try:
                value = await self._execute(job, cell, options, timeline, codes)
            except Exception as exc:  # noqa: BLE001 - degrade per-cell
                value = CellFailure(
                    benchmark=spec.benchmark,
                    config=spec.config,
                    kind="error",
                    attempts=max(cell.attempts, 1),
                    message=f"{type(exc).__name__}: {exc}",
                )
            if not isinstance(value, CellFailure):
                self.store.put(key, value, meta=spec.store_meta())
                fault = options.plan.store_fault(
                    spec.benchmark, spec.config, max(cell.attempts - 1, 0)
                )
                if fault is not None:
                    corrupt_stored_entry(self.store, key)
                    job.emit(
                        "store-corruption",
                        benchmark=spec.benchmark,
                        config=spec.config,
                        fault=fault.spec(),
                    )
            self._inflight.pop(key, None)
            future.set_result(value)
            break

        if isinstance(value, CellFailure):
            if value.kind == "cancelled":
                job.cell_event(
                    cell,
                    "cancelled",
                    attempts=value.attempts,
                    message=value.message,
                )
            else:
                self.metrics["cell_failures"] += 1
                job.cell_event(
                    cell,
                    "failed",
                    attempts=value.attempts,
                    message=f"{value.kind}: {value.message}",
                )
        else:
            job.cell_event(cell, "done")
        return value

    @staticmethod
    def _cancelled_failure(cell: CellState) -> CellFailure:
        return CellFailure(
            benchmark=cell.spec.benchmark,
            config=cell.spec.config,
            kind="cancelled",
            attempts=cell.attempts,
            message="cell cancelled",
        )

    async def _execute(
        self,
        job: Job,
        cell: CellState,
        options: JobOptions,
        timeline: SweepTimeline,
        codes,
    ) -> Any:
        """Run one cold cell on the scheduler, off the event loop."""
        spec = cell.spec
        if not self.breaker.allow_cold():
            self.metrics["degraded_cells"] += 1
            return CellFailure(
                benchmark=spec.benchmark,
                config=spec.config,
                kind="degraded",
                attempts=0,
                message=(
                    "circuit breaker open (warm-only mode); retry after "
                    f"{self.breaker.retry_after():.1f}s"
                ),
            )
        fn, make_task = spec.worker(codes)

        def on_attempt(record: CellAttempt) -> None:
            self._loop.call_soon_threadsafe(
                self._note_attempt, job, cell, record, timeline
            )

        def run() -> Any:
            value, _attempts = execute_cell(
                fn,
                make_task,
                benchmark=spec.benchmark,
                config=spec.config,
                timeout=options.timeout,
                retries=options.retries,
                backoff=options.backoff,
                plan=options.plan or None,
                on_attempt=on_attempt,
                cancel=job.cancel_event,
            )
            return value

        async with options.semaphore, self._sem:
            if job.cancelling:
                # Cancelled while queued behind the worker semaphores;
                # never executed, so the admitted slot yields no
                # breaker verdict.
                self.breaker.release_probe()
                return self._cancelled_failure(cell)
            self.metrics["scheduler_executions"] += 1
            try:
                value = await self._loop.run_in_executor(self._executor, run)
            except Exception:
                self.breaker.record_failure()
                raise
        if isinstance(value, CellFailure):
            if value.kind == "cancelled":
                self.breaker.release_probe()
            else:
                self.breaker.record_failure()
        else:
            self.breaker.record_success()
        return value

    def _note_attempt(
        self,
        job: Job,
        cell: CellState,
        record: CellAttempt,
        timeline: SweepTimeline,
    ) -> None:
        cell.attempts = record.attempt
        self.metrics["attempts"] += 1
        timeline.record(
            cell.spec.benchmark,
            cell.spec.benchmark,
            cell.spec.config,
            start=max(timeline.clock() - record.seconds, 0.0),
            status=record.status,
            attempt=record.attempt,
            **(
                {"message": record.message} if record.message else {}
            ),
            **({"fallback": "in-process"} if record.fallback else {}),
        )
        job.emit(
            "attempt",
            benchmark=cell.spec.benchmark,
            config=cell.spec.config,
            attempt=record.attempt,
            status=record.status,
            seconds=round(record.seconds, 4),
            fallback=record.fallback,
            message=record.message,
        )

    # ------------------------------------------------------------------
    # preparation (parent-side codes + digests for "cell" kind)

    async def _prepared(self, benchmark: str, scale: Scale) -> tuple:
        key = (benchmark, scale.name)
        cached = self._prep_cache.get(key)
        if cached is not None:
            return cached
        pending = self._prep_inflight.get(key)
        if pending is not None:
            status, value = await asyncio.shield(pending)
            if status == "error":
                raise RuntimeError(value)
            return value

        pending = self._loop.create_future()
        self._prep_inflight[key] = pending

        def build() -> tuple:
            # Exactly the offline driver's preparation (run_suite):
            # optimizer planned against the base machine, traces slimmed
            # before digesting — so keys match cells written by
            # ``repro table3 --store``.
            spec = get_spec(benchmark)
            reference = base_config().scaled(scale.machine_divisor)
            codes = _slim_codes(prepare_codes(spec, scale, reference))
            digests = (
                trace_checksum(codes.base_trace),
                trace_checksum(codes.optimized_trace),
                trace_checksum(codes.selective_trace),
            )
            return codes, digests

        try:
            self.metrics["prepares"] += 1
            value = await self._loop.run_in_executor(self._executor, build)
        except Exception as exc:  # noqa: BLE001 - waiters fail too
            self._prep_inflight.pop(key, None)
            pending.set_result(("error", f"{type(exc).__name__}: {exc}"))
            raise
        self._prep_cache[key] = value
        self._prep_inflight.pop(key, None)
        pending.set_result(("ok", value))
        return value

    # ------------------------------------------------------------------
    # analytic prediction ("predict" endpoint — no trace, no cells)

    async def predict(self, body: dict) -> dict:
        """Closed-form locality prediction for one benchmark.

        Runs :func:`repro.analytic.predict.predict_benchmark` in the
        executor — milliseconds of model evaluation, no simulation, no
        store cell.  Single-flight per (benchmark, scale, threshold,
        miss_floor): concurrent duplicates await the first build, and
        completed payloads are cached (the model is deterministic, so
        repeats are dictionary lookups; ``elapsed_ms`` reports the
        original computation).
        """
        benchmark = body.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            raise _BadRequest("predict requires a 'benchmark' string")
        scale_name = body.get("scale", self.config.scale.name)
        if scale_name not in SCALES:
            raise _BadRequest(
                f"unknown scale {scale_name!r}; "
                f"known: {', '.join(sorted(SCALES))}"
            )
        scale = SCALES[scale_name]
        threshold = body.get("threshold")
        if threshold is not None and not isinstance(
            threshold, (int, float)
        ):
            raise _BadRequest(
                f"threshold must be a number, got {threshold!r}"
            )
        miss_floor = body.get("miss_floor", DEFAULT_MISS_FLOOR)
        if (
            not isinstance(miss_floor, (int, float))
            or not 0.0 <= miss_floor <= 1.0
        ):
            raise _BadRequest(
                f"miss_floor must be a ratio in [0, 1], got {miss_floor!r}"
            )

        key = (benchmark, scale_name, threshold, float(miss_floor))
        cached = self._predict_cache.get(key)
        if cached is not None:
            return cached
        pending = self._predict_inflight.get(key)
        if pending is not None:
            status, value = await asyncio.shield(pending)
            if status == "bad":
                raise _BadRequest(value)
            if status == "error":
                raise RuntimeError(value)
            return value

        pending = self._loop.create_future()
        self._predict_inflight[key] = pending

        def build() -> dict:
            from repro.analytic.predict import predict_benchmark

            return predict_benchmark(
                benchmark,
                scale,
                threshold=threshold,
                miss_floor=miss_floor,
            )

        try:
            self.metrics["predicts"] += 1
            value = await self._loop.run_in_executor(self._executor, build)
        except (KeyError, ValueError) as exc:
            self._predict_inflight.pop(key, None)
            message = str(exc.args[0] if exc.args else exc)
            pending.set_result(("bad", message))
            raise _BadRequest(message) from None
        except Exception as exc:  # noqa: BLE001 - waiters fail too
            self._predict_inflight.pop(key, None)
            pending.set_result(("error", f"{type(exc).__name__}: {exc}"))
            raise
        self._predict_cache[key] = value
        self._predict_inflight.pop(key, None)
        pending.set_result(("ok", value))
        return value

    # ------------------------------------------------------------------
    # artifacts and introspection documents

    def _trace_document(
        self, job: Job, timeline: SweepTimeline, values: list
    ) -> dict:
        if job.kind == "profile" and values and isinstance(values[0], dict):
            events = values[0]["trace_events"]
        else:
            events = sweep_trace_events(timeline)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.service",
                "job": job.id,
                "kind": job.kind,
            },
        }

    def status_json(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "service": {
                "workers": self.workers,
                "scale": self.config.scale.name,
                "faults": self.faults.spec(),
            },
            "store": {
                "root": str(self.store.root),
                **self.store.stats().to_json(),
            },
            "jobs": {"total": len(self.jobs), "states": states},
            "inflight_cells": len(self._inflight),
            "draining": self.draining,
            "admission": {
                "pending": self.pending_jobs(),
                "high_water": self.config.max_pending,
                "client_cap": self.config.client_cap,
                "clients_inflight": len(self._client_inflight),
                "admitted": self.metrics["admitted"],
                "shed": {
                    "overload": self.metrics["shed_overload"],
                    "client_cap": self.metrics["shed_client_cap"],
                    "breaker": self.metrics["shed_breaker"],
                    "draining": self.metrics["shed_draining"],
                },
            },
            "breaker": self.breaker.to_json(),
        }

    def ready_json(self) -> tuple[bool, dict]:
        """(ready?, body) for ``/v1/readyz``.

        Ready means the service would admit a new job right now, modulo
        per-client caps: not draining and pending below the high-water
        mark.  An open breaker degrades (warm-only) but stays ready —
        warm jobs are still served.
        """
        ready = (
            not self.draining
            and self.pending_jobs() < self.config.max_pending
        )
        return ready, {
            "ready": ready,
            "draining": self.draining,
            "pending": self.pending_jobs(),
            "high_water": self.config.max_pending,
            "breaker": self.breaker.to_json(),
        }

    def cells_json(self) -> list[dict]:
        return [
            {
                "key": entry.key,
                "kind": entry.kind,
                "benchmark": entry.benchmark,
                "config": entry.config,
                "bytes": entry.size,
                "ok": entry.ok,
                "error": entry.error,
            }
            for entry in self.store.entries()
        ]


# ----------------------------------------------------------------------
# HTTP layer (asyncio streams; one request per connection)


async def _read_request(reader: asyncio.StreamReader):
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > _MAX_HEADERS:
            raise _BadRequest("too many headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length") from None
    if not 0 <= length <= _MAX_BODY:
        raise _BadRequest(f"body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return method, path, urllib.parse.parse_qs(query), headers, body


def _response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[dict] = None,
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += "\r\n"
    return head.encode() + body


def _json_response(
    status: int, payload: Any, extra_headers: Optional[dict] = None
) -> bytes:
    return _response(
        status, canonical_json(payload), extra_headers=extra_headers
    )


def _shed_response(exc: _Shed) -> bytes:
    """Structured load-shed response with a Retry-After header."""
    return _json_response(
        exc.status,
        exc.body(),
        extra_headers={
            "Retry-After": str(max(1, math.ceil(exc.retry_after)))
        },
    )


def _error(status: int, message: str) -> bytes:
    return _json_response(status, {"error": message})


async def _stream_events(
    writer: asyncio.StreamWriter, job: Job, since: int
) -> None:
    """NDJSON event stream: replay from ``since``, then follow live."""
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )
    seq = since
    while True:
        pending = job.events[seq:]
        if pending:
            for event in pending:
                writer.write(canonical_json(event))
            seq = pending[-1]["seq"] + 1
            await writer.drain()
        if job.done and len(job.events) <= seq:
            return
        if not pending:
            await job.wait_events(seq)


async def _handle_request(
    service: SweepService, method, path, query, body, headers=None, peer=""
):
    """Route one parsed request; returns response bytes or a coroutine
    marker ``("stream", job, since)`` for NDJSON endpoints."""
    service.metrics["requests"] += 1
    headers = headers or {}

    if path == "/v1/healthz" and method == "GET":
        # Liveness: answers whenever the event loop does.
        return _json_response(200, {"ok": True})
    if path == "/v1/readyz" and method == "GET":
        ready, payload = service.ready_json()
        return _json_response(200 if ready else 503, payload)
    if path == "/v1/status" and method == "GET":
        return _json_response(200, service.status_json())
    if path == "/v1/metrics" and method == "GET":
        return _json_response(200, service.metrics)
    if path == "/v1/cells" and method == "GET":
        return _json_response(200, {"cells": service.cells_json()})
    if path == "/v1/jobs" and method == "POST":
        try:
            payload = json.loads(body.decode() or "{}")
        except ValueError:
            return _error(400, "request body is not valid JSON")
        client = headers.get("x-repro-client") or peer or "anonymous"
        try:
            job = service.submit(payload, client=client)
        except _Shed as exc:
            return _shed_response(exc)
        return _json_response(201, job.to_json())
    if path == "/v1/jobs" and method == "GET":
        return _json_response(
            200, {"jobs": [job.to_json() for job in service.jobs.values()]}
        )
    if path == "/v1/predict" and method == "POST":
        try:
            payload = json.loads(body.decode() or "{}")
        except ValueError:
            return _error(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            return _error(400, "request body must be a JSON object")
        return _json_response(200, await service.predict(payload))

    if path.startswith("/v1/jobs/"):
        rest = path[len("/v1/jobs/"):]
        job_id, _, sub = rest.partition("/")
        job = service.jobs.get(job_id)
        if job is None:
            return _error(404, f"no such job {job_id!r}")
        if method == "DELETE" and sub == "":
            if job.done:
                return _error(
                    409, f"job {job.id} is already {job.state}"
                )
            service.cancel_job(job, "cancelled by client request")
            return _json_response(202, job.to_json())
        if method != "GET":
            return _error(405, "only GET and DELETE on job endpoints")
        since = 0
        if "since" in query:
            try:
                since = int(query["since"][0])
            except ValueError:
                return _error(400, "since must be an integer")
        if sub == "" and "events" not in query:
            return _json_response(200, job.to_json())
        if sub == "events" or (sub == "" and "events" in query):
            return ("stream", job, since)
        if sub == "result":
            if not job.done:
                return _error(409, f"job {job.id} is {job.state}")
            return _response(200, job.result_bytes)
        if sub == "trace":
            if not job.done:
                return _error(409, f"job {job.id} is {job.state}")
            return _json_response(200, job.trace_document)
        return _error(404, f"unknown job endpoint {sub!r}")

    return _error(404, f"no route for {method} {path}")


async def _handle_connection(service, reader, writer) -> None:
    try:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, query, headers, body = request
            peername = writer.get_extra_info("peername")
            peer = peername[0] if peername else ""
            result = await _handle_request(
                service, method, path, query, body, headers, peer
            )
        except _BadRequest as exc:
            service.metrics["errors"] += 1
            result = _error(400, str(exc))
        except asyncio.IncompleteReadError:
            return
        except Exception as exc:  # noqa: BLE001 - keep serving
            service.metrics["errors"] += 1
            result = _error(500, f"{type(exc).__name__}: {exc}")
        if isinstance(result, tuple):
            _, job, since = result
            await _stream_events(writer, job, since)
        else:
            writer.write(result)
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-response; nothing to salvage
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_server(
    config: ServiceConfig,
) -> tuple[asyncio.AbstractServer, SweepService, int]:
    """Bind and start serving; returns (server, service, bound port)."""
    service = SweepService(config)
    service.attach(asyncio.get_running_loop())

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    server = await asyncio.start_server(handler, config.host, config.port)
    port = server.sockets[0].getsockname()[1]
    return server, service, port


def serve_forever(config: ServiceConfig, notify=print) -> None:
    """``repro serve``: run until SIGTERM/SIGINT, then drain and exit.

    The first signal starts a graceful drain: admission closes (503 +
    Retry-After), live event streams get a ``draining`` event,
    in-flight jobs finish or checkpoint within ``config.drain_grace``
    seconds, stragglers are cancelled (their workers killed), and the
    process exits 0.  Completed cells are already in the run store, so
    a restarted server resumes warm.
    """

    async def main() -> None:
        server, service, port = await start_server(config)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop; KeyboardInterrupt still works
        notify(
            f"repro service listening on http://{config.host}:{port} "
            f"(store {service.store.root}, {service.workers} worker(s), "
            f"scale {config.scale.name})"
        )
        try:
            async with server:
                await stop.wait()
                notify(
                    "repro service draining "
                    f"(budget {config.drain_grace:g}s)"
                )
                summary = await service.drain(config.drain_grace)
                notify(
                    f"repro service drained: {summary['finished']} "
                    f"finished, {summary['cancelled']} cancelled"
                )
        finally:
            service.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    notify("repro service stopped")


class BackgroundServer:
    """A service running on a daemon thread (tests, bench harness).

    Usage::

        with BackgroundServer(ServiceConfig(store=tmp)) as server:
            client = ServiceClient("127.0.0.1", server.port)
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.port: Optional[int] = None
        self.service: Optional[SweepService] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service-main", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            try:
                server, service, port = await start_server(self.config)
            except BaseException as exc:
                self._failure = exc
                self._started.set()
                raise
            self.service = service
            self.port = port
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._started.set()
            try:
                async with server:
                    await self._stop.wait()
            finally:
                service.close()

        try:
            asyncio.run(main())
        except BaseException:  # noqa: BLE001 - surfaced via _failure
            pass

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError(
                f"service failed to start: {self._failure}"
            ) from self._failure
        if self.port is None:
            raise RuntimeError("service did not start within 30s")
        self._await_ready()
        return self

    def _await_ready(self, timeout: float = 30.0) -> None:
        """Block until ``/v1/readyz`` answers 200 over real HTTP.

        The port being bound does not mean the accept loop is serving;
        polling readiness closes that gap (and is exactly what an
        external orchestrator would do).
        """
        from repro.service.client import ServiceClient, ServiceError

        client = ServiceClient("127.0.0.1", self.port, timeout=5.0)
        deadline = time.monotonic() + timeout
        while True:
            try:
                ready, _ = client.readyz()
                if ready:
                    return
            except (ServiceError, OSError):
                pass
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"service on port {self.port} did not become ready "
                    f"within {timeout:g}s"
                )
            time.sleep(0.02)

    def drain(self, budget: Optional[float] = None) -> dict:
        """Run a graceful drain on the service loop; returns a summary."""
        if self._loop is None or self.service is None:
            raise RuntimeError("service is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(budget), self._loop
        )
        wait = (
            budget if budget is not None else self.config.drain_grace
        )
        return future.result(timeout=wait + 30)

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

"""The sweep service: asyncio HTTP front end over the run store.

Request lifecycle::

    POST /v1/jobs ──▶ decompose() ──▶ one CellState per store cell
                                           │
                          ┌────────────────┼─────────────────┐
                          ▼                ▼                 ▼
                     warm (store)    in-flight (dup)    cold (miss)
                     store.get()     await the same     execute_cell()
                     microseconds    future — one       in a worker
                     no scheduler    computation for    process, with
                     involvement     N requests         timeout/retry

    ──▶ aggregate_result() ──▶ canonical JSON, byte-identical to the
        offline runner's payload for the same store keys.

Single-flight coalescing leans on the event loop for atomicity: the
in-flight check, the (synchronous) store probe, and the future
registration happen with **no await in between**, so two concurrent
requests for one cold cell can never both miss the registry.  Cold
cells run on :func:`repro.core.parallel.execute_cell` in worker
threads (one blocking call per cell), so a hung or killed worker
process is the scheduler's problem — never the event loop's — and a
``REPRO_FAULTS`` chaos spec degrades to a structured per-cell failure
while the server keeps serving.

Concurrency is capped twice: a global semaphore sized to the service's
worker budget, and a per-job semaphore sized to the request's explicit
``jobs`` override (threaded end to end as a parameter; the service
never mutates ``REPRO_JOBS``).
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.core.faults import FaultPlan, corrupt_stored_entry
from repro.core.parallel import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    CellAttempt,
    CellFailure,
    _slim_codes,
    execute_cell,
    resolve_jobs,
)
from repro.core.runstore import RunStore, trace_checksum
from repro.core.versions import prepare_codes
from repro.params import base_config
from repro.service.cells import (
    SCALES,
    CellSpec,
    JobRequest,
    aggregate_result,
    canonical_json,
    decompose,
)
from repro.service.jobs import CellState, Job
from repro.telemetry import SweepTimeline, sweep_trace_events
from repro.workloads.base import SMALL, Scale
from repro.workloads.registry import get_spec

__all__ = [
    "BackgroundServer",
    "JobOptions",
    "ServiceConfig",
    "SweepService",
    "serve_forever",
]

#: Hard ceilings on what one HTTP request may carry.
_MAX_BODY = 1 << 20
_MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Startup parameters of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is reported)
    store: Union[str, Path] = "runs"
    #: Baseline worker budget; ``None`` resolves REPRO_JOBS/CPU count
    #: once at startup.  Per-request ``jobs`` overrides never exceed it.
    jobs: Optional[int] = None
    scale: Scale = SMALL
    timeout: Optional[float] = None
    retries: int = DEFAULT_RETRIES
    backoff: float = DEFAULT_BACKOFF
    #: Service-wide chaos plan; ``None`` reads ``REPRO_FAULTS``.
    faults: Optional[FaultPlan] = None


@dataclass(frozen=True)
class JobOptions:
    """Per-request execution knobs (all optional in the body)."""

    jobs: int
    timeout: Optional[float]
    retries: int
    backoff: float
    plan: FaultPlan
    semaphore: asyncio.Semaphore = field(compare=False, repr=False, default=None)


class _BadRequest(ValueError):
    """Client error surfaced as an HTTP 400."""


class SweepService:
    """All service state; every method runs on the event loop."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.store = (
            config.store
            if isinstance(config.store, RunStore)
            else RunStore(config.store)
        )
        self.workers = resolve_jobs(config.jobs)
        self.faults = (
            config.faults if config.faults is not None else FaultPlan.from_env()
        )
        self.jobs: dict[str, Job] = {}
        self.metrics: dict[str, int] = {
            "requests": 0,
            "jobs_submitted": 0,
            "cells_total": 0,
            "warm_hits": 0,
            "coalesced": 0,
            "scheduler_executions": 0,
            "cell_failures": 0,
            "attempts": 0,
            "prepares": 0,
            "errors": 0,
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # +2 so benchmark preparation never starves behind a full grid
        # of executing cells.
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers + 2,
            thread_name_prefix="repro-service",
        )
        self._sem = asyncio.Semaphore(self.workers)
        #: Single-flight registry: store key → future of the in-flight
        #: computation.  Entries exist only while a cell is executing.
        self._inflight: dict[str, asyncio.Future] = {}
        #: (benchmark, scale.name) → (slimmed codes, trace digests).
        self._prep_cache: dict[tuple[str, str], tuple] = {}
        self._prep_inflight: dict[tuple[str, str], asyncio.Future] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # job submission and execution

    def parse_options(self, body: dict) -> JobOptions:
        jobs = body.get("jobs")
        if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
            raise _BadRequest(f"jobs must be a positive integer, got {jobs!r}")
        jobs = min(resolve_jobs(jobs, default=self.workers), self.workers)
        timeout = body.get("timeout", self.config.timeout)
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            raise _BadRequest(f"timeout must be positive, got {timeout!r}")
        retries = body.get("retries", self.config.retries)
        if not isinstance(retries, int) or retries < 0:
            raise _BadRequest(f"retries must be an integer >= 0, got {retries!r}")
        faults = body.get("faults")
        if faults is not None and not isinstance(faults, str):
            raise _BadRequest("faults must be a spec string")
        try:
            plan = (
                FaultPlan.parse(faults) if faults is not None else self.faults
            )
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        return JobOptions(
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            backoff=self.config.backoff,
            plan=plan,
            semaphore=asyncio.Semaphore(jobs),
        )

    def submit(self, body: dict) -> Job:
        """Validate, decompose, and launch one job (returns immediately)."""
        try:
            request = decompose(body, self.config.scale)
            options = self.parse_options(body)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        job = Job(
            kind=request.kind,
            params=request.params,
            cells=[CellState(spec) for spec in request.specs],
        )
        self.jobs[job.id] = job
        self.metrics["jobs_submitted"] += 1
        self.metrics["cells_total"] += len(job.cells)
        job.emit("job", state="queued", cells=len(job.cells))
        self._loop.create_task(self._run_job(job, request, options))
        return job

    async def _run_job(
        self, job: Job, request: JobRequest, options: JobOptions
    ) -> None:
        job.state = "running"
        job.emit("job", state="running")
        timeline = SweepTimeline()
        values = await asyncio.gather(
            *(
                self._resolve_cell(job, cell, options, timeline)
                for cell in job.cells
            ),
            return_exceptions=True,
        )
        values = [
            value
            if not isinstance(value, BaseException)
            else CellFailure(
                benchmark=cell.spec.benchmark,
                config=cell.spec.config,
                kind="error",
                attempts=max(cell.attempts, 1),
                message=f"{type(value).__name__}: {value}",
            )
            for cell, value in zip(job.cells, values)
        ]
        document = aggregate_result(
            request.kind,
            [cell.spec for cell in job.cells],
            [cell.key for cell in job.cells],
            values,
        )
        job.result_bytes = canonical_json(document)
        job.trace_document = self._trace_document(job, timeline, values)
        failed = any(isinstance(value, CellFailure) for value in values)
        job.finish("failed" if failed else "done")

    async def _resolve_cell(
        self,
        job: Job,
        cell: CellState,
        options: JobOptions,
        timeline: SweepTimeline,
    ) -> Any:
        spec = cell.spec
        digests: tuple = ()
        codes = None
        if spec.needs_codes:
            job.cell_event(cell, "preparing")
            try:
                codes, digests = await self._prepared(spec.benchmark, spec.scale)
            except Exception as exc:  # noqa: BLE001 - degrade per-cell
                failure = CellFailure(
                    benchmark=spec.benchmark,
                    config=spec.config,
                    kind="error",
                    attempts=1,
                    message=f"prepare failed: {type(exc).__name__}: {exc}",
                )
                self.metrics["cell_failures"] += 1
                job.cell_event(cell, "failed", message=failure.message)
                return failure
        key = spec.store_key(self.store, digests)
        cell.key = key

        # --- single-flight critical section: the in-flight probe, the
        # store probe, and the future registration must see a consistent
        # world, so there is deliberately NO await between them.
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics["coalesced"] += 1
            job.cell_event(cell, "running", source="coalesced")
            value = await asyncio.shield(existing)
        else:
            cached = self.store.get(key)
            if spec.payload_valid(cached):
                self.metrics["warm_hits"] += 1
                timeline.restored(spec.benchmark, spec.config)
                job.cell_event(cell, "done", source="store")
                return cached
            future: asyncio.Future = self._loop.create_future()
            self._inflight[key] = future
            job.cell_event(cell, "running", source="scheduler")
            try:
                value = await self._execute(job, cell, options, timeline, codes)
            except Exception as exc:  # noqa: BLE001 - degrade per-cell
                value = CellFailure(
                    benchmark=spec.benchmark,
                    config=spec.config,
                    kind="error",
                    attempts=max(cell.attempts, 1),
                    message=f"{type(exc).__name__}: {exc}",
                )
            if not isinstance(value, CellFailure):
                self.store.put(key, value, meta=spec.store_meta())
                fault = options.plan.store_fault(
                    spec.benchmark, spec.config, max(cell.attempts - 1, 0)
                )
                if fault is not None:
                    corrupt_stored_entry(self.store, key)
                    job.emit(
                        "store-corruption",
                        benchmark=spec.benchmark,
                        config=spec.config,
                        fault=fault.spec(),
                    )
            self._inflight.pop(key, None)
            future.set_result(value)

        if isinstance(value, CellFailure):
            self.metrics["cell_failures"] += 1
            job.cell_event(
                cell,
                "failed",
                attempts=value.attempts,
                message=f"{value.kind}: {value.message}",
            )
        else:
            job.cell_event(cell, "done")
        return value

    async def _execute(
        self,
        job: Job,
        cell: CellState,
        options: JobOptions,
        timeline: SweepTimeline,
        codes,
    ) -> Any:
        """Run one cold cell on the scheduler, off the event loop."""
        spec = cell.spec
        fn, make_task = spec.worker(codes)

        def on_attempt(record: CellAttempt) -> None:
            self._loop.call_soon_threadsafe(
                self._note_attempt, job, cell, record, timeline
            )

        def run() -> Any:
            value, _attempts = execute_cell(
                fn,
                make_task,
                benchmark=spec.benchmark,
                config=spec.config,
                timeout=options.timeout,
                retries=options.retries,
                backoff=options.backoff,
                plan=options.plan or None,
                on_attempt=on_attempt,
            )
            return value

        async with options.semaphore, self._sem:
            self.metrics["scheduler_executions"] += 1
            return await self._loop.run_in_executor(self._executor, run)

    def _note_attempt(
        self,
        job: Job,
        cell: CellState,
        record: CellAttempt,
        timeline: SweepTimeline,
    ) -> None:
        cell.attempts = record.attempt
        self.metrics["attempts"] += 1
        timeline.record(
            cell.spec.benchmark,
            cell.spec.benchmark,
            cell.spec.config,
            start=max(timeline.clock() - record.seconds, 0.0),
            status=record.status,
            attempt=record.attempt,
            **(
                {"message": record.message} if record.message else {}
            ),
            **({"fallback": "in-process"} if record.fallback else {}),
        )
        job.emit(
            "attempt",
            benchmark=cell.spec.benchmark,
            config=cell.spec.config,
            attempt=record.attempt,
            status=record.status,
            seconds=round(record.seconds, 4),
            fallback=record.fallback,
            message=record.message,
        )

    # ------------------------------------------------------------------
    # preparation (parent-side codes + digests for "cell" kind)

    async def _prepared(self, benchmark: str, scale: Scale) -> tuple:
        key = (benchmark, scale.name)
        cached = self._prep_cache.get(key)
        if cached is not None:
            return cached
        pending = self._prep_inflight.get(key)
        if pending is not None:
            status, value = await asyncio.shield(pending)
            if status == "error":
                raise RuntimeError(value)
            return value

        pending = self._loop.create_future()
        self._prep_inflight[key] = pending

        def build() -> tuple:
            # Exactly the offline driver's preparation (run_suite):
            # optimizer planned against the base machine, traces slimmed
            # before digesting — so keys match cells written by
            # ``repro table3 --store``.
            spec = get_spec(benchmark)
            reference = base_config().scaled(scale.machine_divisor)
            codes = _slim_codes(prepare_codes(spec, scale, reference))
            digests = (
                trace_checksum(codes.base_trace),
                trace_checksum(codes.optimized_trace),
                trace_checksum(codes.selective_trace),
            )
            return codes, digests

        try:
            self.metrics["prepares"] += 1
            value = await self._loop.run_in_executor(self._executor, build)
        except Exception as exc:  # noqa: BLE001 - waiters fail too
            self._prep_inflight.pop(key, None)
            pending.set_result(("error", f"{type(exc).__name__}: {exc}"))
            raise
        self._prep_cache[key] = value
        self._prep_inflight.pop(key, None)
        pending.set_result(("ok", value))
        return value

    # ------------------------------------------------------------------
    # artifacts and introspection documents

    def _trace_document(
        self, job: Job, timeline: SweepTimeline, values: list
    ) -> dict:
        if job.kind == "profile" and values and isinstance(values[0], dict):
            events = values[0]["trace_events"]
        else:
            events = sweep_trace_events(timeline)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.service",
                "job": job.id,
                "kind": job.kind,
            },
        }

    def status_json(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "service": {
                "workers": self.workers,
                "scale": self.config.scale.name,
                "faults": self.faults.spec(),
            },
            "store": {
                "root": str(self.store.root),
                **self.store.stats().to_json(),
            },
            "jobs": {"total": len(self.jobs), "states": states},
            "inflight_cells": len(self._inflight),
        }

    def cells_json(self) -> list[dict]:
        return [
            {
                "key": entry.key,
                "kind": entry.kind,
                "benchmark": entry.benchmark,
                "config": entry.config,
                "bytes": entry.size,
                "ok": entry.ok,
                "error": entry.error,
            }
            for entry in self.store.entries()
        ]


# ----------------------------------------------------------------------
# HTTP layer (asyncio streams; one request per connection)


async def _read_request(reader: asyncio.StreamReader):
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > _MAX_HEADERS:
            raise _BadRequest("too many headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length") from None
    if not 0 <= length <= _MAX_BODY:
        raise _BadRequest(f"body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return method, path, urllib.parse.parse_qs(query), headers, body


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode() + body


def _json_response(status: int, payload: Any) -> bytes:
    return _response(status, canonical_json(payload))


def _error(status: int, message: str) -> bytes:
    return _json_response(status, {"error": message})


async def _stream_events(
    writer: asyncio.StreamWriter, job: Job, since: int
) -> None:
    """NDJSON event stream: replay from ``since``, then follow live."""
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )
    seq = since
    while True:
        pending = job.events[seq:]
        if pending:
            for event in pending:
                writer.write(canonical_json(event))
            seq = pending[-1]["seq"] + 1
            await writer.drain()
        if job.done and len(job.events) <= seq:
            return
        if not pending:
            await job.wait_events(seq)


async def _handle_request(service: SweepService, method, path, query, body):
    """Route one parsed request; returns response bytes or a coroutine
    marker ``("stream", job, since)`` for NDJSON endpoints."""
    service.metrics["requests"] += 1

    if path == "/v1/status" and method == "GET":
        return _json_response(200, service.status_json())
    if path == "/v1/metrics" and method == "GET":
        return _json_response(200, service.metrics)
    if path == "/v1/cells" and method == "GET":
        return _json_response(200, {"cells": service.cells_json()})
    if path == "/v1/jobs" and method == "POST":
        try:
            payload = json.loads(body.decode() or "{}")
        except ValueError:
            return _error(400, "request body is not valid JSON")
        job = service.submit(payload)
        return _json_response(201, job.to_json())
    if path == "/v1/jobs" and method == "GET":
        return _json_response(
            200, {"jobs": [job.to_json() for job in service.jobs.values()]}
        )

    if path.startswith("/v1/jobs/"):
        rest = path[len("/v1/jobs/"):]
        job_id, _, sub = rest.partition("/")
        job = service.jobs.get(job_id)
        if job is None:
            return _error(404, f"no such job {job_id!r}")
        if method != "GET":
            return _error(405, "job endpoints are read-only")
        since = 0
        if "since" in query:
            try:
                since = int(query["since"][0])
            except ValueError:
                return _error(400, "since must be an integer")
        if sub == "" and "events" not in query:
            return _json_response(200, job.to_json())
        if sub == "events" or (sub == "" and "events" in query):
            return ("stream", job, since)
        if sub == "result":
            if not job.done:
                return _error(409, f"job {job.id} is {job.state}")
            return _response(200, job.result_bytes)
        if sub == "trace":
            if not job.done:
                return _error(409, f"job {job.id} is {job.state}")
            return _json_response(200, job.trace_document)
        return _error(404, f"unknown job endpoint {sub!r}")

    return _error(404, f"no route for {method} {path}")


async def _handle_connection(service, reader, writer) -> None:
    try:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, query, headers, body = request
            result = await _handle_request(service, method, path, query, body)
        except _BadRequest as exc:
            service.metrics["errors"] += 1
            result = _error(400, str(exc))
        except asyncio.IncompleteReadError:
            return
        except Exception as exc:  # noqa: BLE001 - keep serving
            service.metrics["errors"] += 1
            result = _error(500, f"{type(exc).__name__}: {exc}")
        if isinstance(result, tuple):
            _, job, since = result
            await _stream_events(writer, job, since)
        else:
            writer.write(result)
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-response; nothing to salvage
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_server(
    config: ServiceConfig,
) -> tuple[asyncio.AbstractServer, SweepService, int]:
    """Bind and start serving; returns (server, service, bound port)."""
    service = SweepService(config)
    service.attach(asyncio.get_running_loop())

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    server = await asyncio.start_server(handler, config.host, config.port)
    port = server.sockets[0].getsockname()[1]
    return server, service, port


def serve_forever(config: ServiceConfig, notify=print) -> None:
    """``repro serve``: run until interrupted."""

    async def main() -> None:
        server, service, port = await start_server(config)
        notify(
            f"repro service listening on http://{config.host}:{port} "
            f"(store {service.store.root}, {service.workers} worker(s), "
            f"scale {config.scale.name})"
        )
        try:
            async with server:
                await server.serve_forever()
        finally:
            service.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        notify("repro service stopped")


class BackgroundServer:
    """A service running on a daemon thread (tests, bench harness).

    Usage::

        with BackgroundServer(ServiceConfig(store=tmp)) as server:
            client = ServiceClient("127.0.0.1", server.port)
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.port: Optional[int] = None
        self.service: Optional[SweepService] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service-main", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            try:
                server, service, port = await start_server(self.config)
            except BaseException as exc:
                self._failure = exc
                self._started.set()
                raise
            self.service = service
            self.port = port
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._started.set()
            try:
                async with server:
                    await self._stop.wait()
            finally:
                service.close()

        try:
            asyncio.run(main())
        except BaseException:  # noqa: BLE001 - surfaced via _failure
            pass

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError(
                f"service failed to start: {self._failure}"
            ) from self._failure
        if self.port is None:
            raise RuntimeError("service did not start within 30s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

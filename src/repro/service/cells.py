"""Request decomposition: service jobs become run-store cells.

Every service request is decomposed into :class:`CellSpec` records —
the independent units the run store content-addresses.  A ``simulate``
or ``sweep`` request maps onto exactly the same ``cell`` entries the
offline sweep engine writes (:func:`repro.core.parallel.run_grid`), a
``table2`` request onto the ``table2`` rows of
:func:`repro.evaluation.table2.table2_rows`, and so on — so a store
warmed by an offline ``repro table3 --store DIR`` serves the matching
service requests without a single scheduler execution, and vice versa.

Worker entries here are module-level (picklable) functions run by
:func:`repro.core.parallel.execute_cell` in child processes; each
applies the deterministic fault plan first, so the ``REPRO_FAULTS``
chaos suite exercises the service exactly as it does the sweep
scheduler.

Result payloads are serialized with :func:`canonical_json` (sorted
keys, no whitespace), so a cell's response bytes depend only on its
content — warm and cold paths, and the offline runner, produce
byte-identical JSON for the same key.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.core.experiment import BenchmarkRun, expected_version_keys
from repro.core.faults import FaultPlan
from repro.core.parallel import CellFailure, _run_cell
from repro.core.runstore import RunStore
from repro.core.sweep import SweepResult
from repro.core.versions import MECHANISMS, PREFETCH
from repro.evaluation.locality import LocalityRow, locality_row
from repro.evaluation.table2 import Table2Row, _characterize
from repro.evaluation.table3 import TABLE3_COLUMNS
from repro.params import SENSITIVITY_CONFIGS, MachineParams, base_config
from repro.workloads.base import MEDIUM, SMALL, TINY, Scale
from repro.workloads.registry import all_specs, get_spec

__all__ = [
    "JOB_KINDS",
    "SCALES",
    "CellSpec",
    "JobRequest",
    "aggregate_result",
    "canonical_json",
    "decompose",
    "run_to_json",
]

SCALES = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}

JOB_KINDS = ("simulate", "sweep", "table2", "locality", "profile")

_KNOWN_MECHANISMS = MECHANISMS + (PREFETCH,)

#: Profile versions accepted by ``repro profile`` and the service.
_PROFILE_VERSIONS = ("base", "pure_sw", "pure_hw", "combined", "selective")


def canonical_json(payload: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, minimal separators."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def run_to_json(run: BenchmarkRun) -> dict:
    """A :class:`BenchmarkRun` as a JSON-able dict (full fidelity)."""
    return {
        "benchmark": run.benchmark,
        "category": run.category,
        "machine": run.machine_name,
        "results": {
            key: dataclasses.asdict(result)
            for key, result in run.results.items()
        },
        "improvements": {
            key: run.improvement(key)
            for key in run.version_keys()
            if key != "base"
        },
    }


def failure_to_json(failure: CellFailure) -> dict:
    """A permanent cell failure, without wall-clock noise.

    ``duration`` is deliberately excluded: the result document must be
    byte-identical across repeats of the same deterministic request.
    """
    return {
        "benchmark": failure.benchmark,
        "config": failure.config,
        "kind": failure.kind,
        "attempts": failure.attempts,
        "message": failure.message,
    }


# ----------------------------------------------------------------------
# worker entries (module-level: run via execute_cell in child processes)


def _table2_cell(task):
    name, scale, machine, attempt, plan = task
    if plan is not None:
        plan.apply_execution(name, machine.name, attempt)
    return _characterize(name, scale, machine)


def _locality_cell(task):
    name, scale, machine, attempt, plan = task
    if plan is not None:
        plan.apply_execution(name, machine.name, attempt)
    return locality_row(get_spec(name), scale, machine)


def _profile_cell(task):
    (
        name,
        scale,
        machine,
        config_name,
        version,
        mechanism,
        interval,
        attempt,
        plan,
    ) = task
    if plan is not None:
        plan.apply_execution(name, config_name, attempt)
    from repro.evaluation.profile import profile_benchmark
    from repro.evaluation.report import render_profile
    from repro.telemetry import telemetry_trace_events

    profile = profile_benchmark(
        name,
        scale,
        machine,
        config_name,
        version=version,
        mechanism=mechanism,
        interval=interval,
    )
    return {
        "benchmark": name,
        "version": profile.version,
        "config": config_name,
        "interval": interval,
        "result": dataclasses.asdict(profile.result),
        "regions": [
            dataclasses.asdict(region) for region in profile.regions
        ],
        "consistent": profile.consistent(),
        "rendered": render_profile(profile),
        "trace_events": telemetry_trace_events(
            profile.telemetry, label=f"{name}/{profile.version}"
        ),
    }


# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One content-addressed unit of service work.

    ``kind`` is the run-store payload kind (``cell``, ``table2``,
    ``locality``, ``profile``); ``needs_codes`` marks the kinds whose
    store key embeds trace digests and whose worker task ships prepared
    (slimmed) codes — the others prepare inside the worker, keyed over
    benchmark × scale × machine alone (workload builders are
    deterministic, the same argument Table 2 keys rely on).
    """

    kind: str
    benchmark: str
    config: str
    scale: Scale
    machine: MachineParams
    mechanisms: tuple[str, ...] = ()
    classify_misses: bool = False
    extra_digests: tuple[str, ...] = ()
    needs_codes: bool = False

    # -- keys ----------------------------------------------------------

    def store_key(self, store: RunStore, digests: Iterable[str] = ()) -> str:
        return store.cell_key(
            self.kind,
            self.benchmark,
            self.config,
            scale=self.scale,
            machine=self.machine,
            mechanisms=self.mechanisms,
            classify_misses=self.classify_misses,
            digests=tuple(digests) + self.extra_digests,
        )

    def store_meta(self) -> dict:
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "config": self.config,
            "scale": self.scale.name,
        }

    # -- execution -----------------------------------------------------

    def worker(self, codes=None):
        """(fn, make_task) for :func:`repro.core.parallel.execute_cell`.

        ``codes`` (slimmed :class:`BenchmarkCodes`) is required exactly
        when ``needs_codes`` is true.
        """
        if self.kind == "cell":
            if codes is None:
                raise ValueError("cell kind requires prepared codes")

            def make_cell_task(attempt: int, plan: Optional[FaultPlan]):
                return (
                    codes,
                    self.machine,
                    self.mechanisms,
                    self.classify_misses,
                    self.config,
                    attempt,
                    plan,
                )

            return _run_cell, make_cell_task
        if self.kind == "table2":

            def make_table2_task(attempt: int, plan: Optional[FaultPlan]):
                return (self.benchmark, self.scale, self.machine, attempt, plan)

            return _table2_cell, make_table2_task
        if self.kind == "locality":

            def make_locality_task(attempt: int, plan: Optional[FaultPlan]):
                return (self.benchmark, self.scale, self.machine, attempt, plan)

            return _locality_cell, make_locality_task
        if self.kind == "profile":
            version, mechanism, interval = self._profile_identity()

            def make_profile_task(attempt: int, plan: Optional[FaultPlan]):
                return (
                    self.benchmark,
                    self.scale,
                    self.machine,
                    self.config,
                    version,
                    mechanism,
                    interval,
                    attempt,
                    plan,
                )

            return _profile_cell, make_profile_task
        raise ValueError(f"unknown cell kind {self.kind!r}")

    def _profile_identity(self) -> tuple[str, str, int]:
        identity = dict(
            field.split("=", 1) for field in self.extra_digests
        )
        return (
            identity["version"],
            identity["mechanism"],
            int(identity["interval"]),
        )

    # -- warm-hit validation ------------------------------------------

    def payload_valid(self, payload: Any) -> bool:
        """Whether a store payload is a trustworthy warm hit."""
        if payload is None:
            return False
        if self.kind == "cell":
            return isinstance(payload, BenchmarkRun) and list(
                payload.results
            ) == expected_version_keys(self.mechanisms)
        if self.kind == "table2":
            return (
                isinstance(payload, Table2Row)
                and payload.benchmark == self.benchmark
            )
        if self.kind == "locality":
            return (
                isinstance(payload, LocalityRow)
                and payload.benchmark == self.benchmark
            )
        if self.kind == "profile":
            return (
                isinstance(payload, dict)
                and payload.get("benchmark") == self.benchmark
                and "result" in payload
                and "trace_events" in payload
            )
        return False

    # -- serialization -------------------------------------------------

    def payload_json(self, payload: Any) -> dict:
        if self.kind == "cell":
            return run_to_json(payload)
        if self.kind in ("table2", "locality"):
            return dataclasses.asdict(payload)
        if self.kind == "profile":
            return {
                key: value
                for key, value in payload.items()
                if key != "trace_events"
            }
        raise ValueError(f"unknown cell kind {self.kind!r}")


@dataclass(frozen=True)
class JobRequest:
    """A validated, decomposed ``POST /v1/jobs`` body."""

    kind: str
    specs: tuple[CellSpec, ...]
    params: dict  # sanitized echo for the job document


def _as_names(value, fallback: list[str], what: str) -> list[str]:
    if value is None:
        return list(fallback)
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, list) or not value:
        raise ValueError(f"{what} must be a non-empty list of names")
    return [str(name) for name in value]


def _benchmarks(body: dict) -> list[str]:
    names = _as_names(
        body.get("benchmarks", body.get("benchmark")),
        [spec.name for spec in all_specs()],
        "benchmarks",
    )
    for name in names:
        try:
            get_spec(name)
        except KeyError:
            raise ValueError(f"unknown benchmark {name!r}") from None
    return names


def _configs(body: dict, fallback: list[str]) -> list[str]:
    names = _as_names(
        body.get("configs", body.get("config")), fallback, "configs"
    )
    for name in names:
        if name not in SENSITIVITY_CONFIGS:
            raise ValueError(
                f"unknown config {name!r}; expected one of "
                f"{list(SENSITIVITY_CONFIGS)}"
            )
    return names


def _mechanisms(body: dict) -> tuple[str, ...]:
    value = body.get("mechanisms")
    if value is None:
        return MECHANISMS
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, list) or not value:
        raise ValueError("mechanisms must be a non-empty list")
    for mechanism in value:
        if mechanism not in _KNOWN_MECHANISMS:
            raise ValueError(
                f"unknown mechanism {mechanism!r}; expected one of "
                f"{_KNOWN_MECHANISMS}"
            )
    return tuple(value)


def decompose(body: dict, default_scale: Scale) -> JobRequest:
    """Validate a job request and expand it into cell specs.

    Raises ``ValueError`` with a client-facing message on any invalid
    field (the server answers 400).
    """
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    kind = body.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(
            f"kind must be one of {list(JOB_KINDS)}, got {kind!r}"
        )
    scale_name = body.get("scale", default_scale.name)
    if scale_name not in SCALES:
        raise ValueError(
            f"unknown scale {scale_name!r}; expected one of {list(SCALES)}"
        )
    scale = SCALES[scale_name]

    params: dict = {"kind": kind, "scale": scale.name}
    specs: list[CellSpec] = []

    if kind in ("simulate", "sweep"):
        if kind == "simulate" and "benchmark" not in body and (
            "benchmarks" not in body
        ):
            raise ValueError("simulate requires a benchmark")
        benchmarks = _benchmarks(body)
        fallback = (
            ["Base Confg."] if kind == "simulate"
            else list(SENSITIVITY_CONFIGS)
        )
        configs = _configs(body, fallback)
        mechanisms = _mechanisms(body)
        classify = bool(body.get("classify_misses", False))
        params.update(
            benchmarks=benchmarks,
            configs=configs,
            mechanisms=list(mechanisms),
            classify_misses=classify,
        )
        for benchmark in benchmarks:
            for config in configs:
                machine = SENSITIVITY_CONFIGS[config]().scaled(
                    scale.machine_divisor
                )
                specs.append(
                    CellSpec(
                        kind="cell",
                        benchmark=benchmark,
                        config=config,
                        scale=scale,
                        machine=machine,
                        mechanisms=mechanisms,
                        classify_misses=classify,
                        needs_codes=True,
                    )
                )
    elif kind in ("table2", "locality"):
        benchmarks = _benchmarks(body)
        machine = base_config().scaled(scale.machine_divisor)
        params.update(benchmarks=benchmarks, config=machine.name)
        for benchmark in benchmarks:
            specs.append(
                CellSpec(
                    kind=kind,
                    benchmark=benchmark,
                    config=machine.name,
                    scale=scale,
                    machine=machine,
                    classify_misses=kind == "table2",
                )
            )
    elif kind == "profile":
        if "benchmark" not in body:
            raise ValueError("profile requires a benchmark")
        benchmark = _benchmarks({"benchmark": body["benchmark"]})[0]
        config = _configs(body, ["Base Confg."])[0]
        version = body.get("version", "selective")
        if version not in _PROFILE_VERSIONS:
            raise ValueError(
                f"unknown version {version!r}; expected one of "
                f"{_PROFILE_VERSIONS}"
            )
        mechanism = body.get("mechanism", "bypass")
        if mechanism not in _KNOWN_MECHANISMS:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        interval = body.get("interval", 1000)
        if not isinstance(interval, int) or interval < 0:
            raise ValueError(f"interval must be an integer >= 0, got {interval!r}")
        machine = SENSITIVITY_CONFIGS[config]().scaled(scale.machine_divisor)
        params.update(
            benchmark=benchmark,
            config=config,
            version=version,
            mechanism=mechanism,
            interval=interval,
        )
        specs.append(
            CellSpec(
                kind="profile",
                benchmark=benchmark,
                config=config,
                scale=scale,
                machine=machine,
                mechanisms=(mechanism,),
                extra_digests=(
                    f"version={version}",
                    f"mechanism={mechanism}",
                    f"interval={interval}",
                ),
            )
        )
    return JobRequest(kind=kind, specs=tuple(specs), params=params)


def aggregate_result(
    kind: str,
    specs: Iterable[CellSpec],
    keys: Iterable[str],
    values: Iterable[Any],
) -> dict:
    """Fold resolved cell payloads into the job's result document.

    Deterministic: depends only on the request and the cell payloads
    (no timestamps, job ids, or wall-clock durations), so identical
    requests produce byte-identical ``canonical_json`` documents.
    """
    specs = list(specs)
    keys = list(keys)
    values = list(values)
    failures = [
        failure_to_json(value)
        for value in values
        if isinstance(value, CellFailure)
    ]
    document: dict = {"kind": kind, "failures": failures}

    if kind in ("simulate", "sweep"):
        cells = []
        sweeps: dict[str, SweepResult] = {}
        for spec, key, value in zip(specs, keys, values):
            if isinstance(value, CellFailure):
                continue
            cells.append(
                {
                    "benchmark": spec.benchmark,
                    "config": spec.config,
                    "key": key,
                    "run": run_to_json(value),
                }
            )
            sweeps.setdefault(
                spec.config, SweepResult(spec.machine.name)
            ).runs[spec.benchmark] = value
        document["cells"] = cells
        summary = {}
        for config, sweep in sweeps.items():
            if not sweep.runs:
                continue
            summary[config] = {
                column: sweep.average_improvement(version_key)
                for column, version_key in TABLE3_COLUMNS.items()
                if all(
                    version_key in run.results
                    for run in sweep.runs.values()
                )
            }
        document["summary"] = summary
    elif kind in ("table2", "locality"):
        document["rows"] = [
            spec.payload_json(value)
            for spec, value in zip(specs, values)
            if not isinstance(value, CellFailure)
        ]
    elif kind == "profile":
        document["profile"] = (
            specs[0].payload_json(values[0])
            if values and not isinstance(values[0], CellFailure)
            else None
        )
    return document

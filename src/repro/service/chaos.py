"""Fault-injecting TCP proxy for sweep-service chaos testing.

Sits between a :class:`~repro.service.client.ServiceClient` and a live
server, sabotaging chosen connections according to a
:class:`~repro.core.faults.NetworkFaultPlan`:

* ``drop``     — the connection is closed the moment it is accepted,
  before a single byte is forwarded (connection refused, mid-handshake
  LB failure);
* ``stall``    — upstream bytes are forwarded until the first response
  chunk, then the stream freezes for ``amount`` seconds (half-dead
  peer, network partition) before resuming;
* ``truncate`` — at most ``amount`` response bytes are forwarded, then
  both sides are closed (crash mid-response; lands mid-NDJSON-event by
  construction for the service's event streams).

Which connections are sabotaged is deterministic — a function of the
0-based accept index and the plan's ``every`` strides — so every chaos
test is reproducible.  The proxy is plain blocking sockets on daemon
threads: it must not share an event loop with the server under test,
or a server bug could deadlock the harness that is meant to catch it.

Usage::

    plan = NetworkFaultPlan.parse("truncate:2:150")
    with ChaosProxy("127.0.0.1", server_port, plan) as proxy:
        client = ServiceClient("127.0.0.1", proxy.port, retries=4)
        ...  # connections 1, 3, 5... are cut after 150 bytes

``tools/chaos_proxy.py`` wraps this in a CLI for manual prodding.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.core.faults import (
    DROP,
    STALL,
    TRUNCATE,
    NetworkFault,
    NetworkFaultPlan,
)

__all__ = ["ChaosProxy"]

_CHUNK = 4096


class ChaosProxy:
    """A TCP proxy applying one :class:`NetworkFault` per connection.

    Context manager; binds on construction (ephemeral port by default,
    read it from ``self.port``), serves on daemon threads, and closes
    every tracked socket on exit so no test leaks file descriptors.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: NetworkFaultPlan,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._live: set = set()
        self.connections = 0  # accepted
        self.faults: dict[str, int] = {DROP: 0, STALL: 0, TRUNCATE: 0}
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"chaos-proxy-{self.port}",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # lifecycle

    def __enter__(self) -> "ChaosProxy":
        self._accept_thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            live = list(self._live)
        for sock in live:
            try:
                sock.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=5)

    def _track(self, sock: socket.socket) -> socket.socket:
        with self._lock:
            self._live.add(sock)
        return sock

    def _untrack(self, sock: socket.socket) -> None:
        with self._lock:
            self._live.discard(sock)
        try:
            sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # proxying

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            index = self.connections
            self.connections += 1
            fault = self.plan.fault_for(index)
            if fault is not None:
                self.faults[fault.kind] = self.faults.get(fault.kind, 0) + 1
            if fault is not None and fault.kind == DROP:
                # Sabotage before a single byte crosses.
                try:
                    downstream.close()
                except OSError:
                    pass
                continue
            self._track(downstream)
            threading.Thread(
                target=self._serve_connection,
                args=(downstream, fault),
                name=f"chaos-conn-{index}",
                daemon=True,
            ).start()

    def _serve_connection(
        self, downstream: socket.socket, fault: Optional[NetworkFault]
    ) -> None:
        try:
            upstream = socket.create_connection(
                (self.upstream_host, self.upstream_port), timeout=30
            )
        except OSError:
            self._untrack(downstream)
            return
        self._track(upstream)
        # Request direction is always clean (the chaos vocabulary
        # targets responses); pump it on a side thread so streaming
        # endpoints still work.
        pump = threading.Thread(
            target=self._pump_requests,
            args=(downstream, upstream),
            daemon=True,
        )
        pump.start()
        try:
            self._pump_responses(upstream, downstream, fault)
        finally:
            self._untrack(upstream)
            self._untrack(downstream)

    def _pump_requests(
        self, downstream: socket.socket, upstream: socket.socket
    ) -> None:
        try:
            while True:
                chunk = downstream.recv(_CHUNK)
                if not chunk:
                    break
                upstream.sendall(chunk)
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass  # either side closed; response pump owns cleanup

    def _pump_responses(
        self,
        upstream: socket.socket,
        downstream: socket.socket,
        fault: Optional[NetworkFault],
    ) -> None:
        forwarded = 0
        stalled = False
        try:
            while True:
                chunk = upstream.recv(_CHUNK)
                if not chunk:
                    break
                if fault is not None and fault.kind == TRUNCATE:
                    budget = int(fault.amount) - forwarded
                    if budget <= 0:
                        return
                    chunk = chunk[:budget]
                    downstream.sendall(chunk)
                    forwarded += len(chunk)
                    if forwarded >= int(fault.amount):
                        return  # cut mid-response
                    continue
                downstream.sendall(chunk)
                forwarded += len(chunk)
                if fault is not None and fault.kind == STALL and not stalled:
                    stalled = True
                    # Freeze after the first forwarded chunk; wake early
                    # if the proxy is torn down.
                    if self._stop.wait(fault.amount):
                        return
        except OSError:
            pass

"""Stdlib client for the sweep service (``http.client``, no deps).

Used by the test suite, the CI smoke step, and the benchmark harness;
also a reference for talking to the service from anything that can
speak HTTP.  One connection per call — the server closes connections
after each response anyway.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Thin convenience wrapper over the service's JSON endpoints."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
    ) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode() if body is not None else None
            )
            headers = (
                {"Content-Type": "application/json"} if payload else {}
            )
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _json(self, method: str, path: str, body: Optional[dict] = None) -> Any:
        status, raw = self.request(method, path, body)
        if not 200 <= status < 300:
            try:
                message = json.loads(raw).get("error", raw.decode())
            except ValueError:
                message = raw.decode("utf-8", "replace")
            raise ServiceError(status, message)
        return json.loads(raw)

    def get(self, path: str) -> Any:
        return self._json("GET", path)

    def post(self, path: str, body: dict) -> Any:
        return self._json("POST", path, body)

    # ------------------------------------------------------------------
    # endpoints

    def status(self) -> dict:
        return self.get("/v1/status")

    def metrics(self) -> dict:
        return self.get("/v1/metrics")

    def cells(self) -> list[dict]:
        return self.get("/v1/cells")["cells"]

    def submit(self, body: dict) -> dict:
        """POST /v1/jobs; returns the job document."""
        return self.post("/v1/jobs", body)

    def job(self, job_id: str) -> dict:
        return self.get(f"/v1/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Stream the job's NDJSON events until it finishes."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceError(
                    response.status, response.read().decode("utf-8", "replace")
                )
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Follow the event stream until the job's terminal event.

        Falls back to polling if the stream drops; returns the final
        job document.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                for event in self.events(job_id):
                    if event.get("event") == "job" and event.get("state") in (
                        "done",
                        "failed",
                    ):
                        return self.job(job_id)
            except (ServiceError, OSError):
                pass
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            time.sleep(0.2)
        raise TimeoutError(f"job {job_id} did not finish within {timeout}s")

    def run(self, body: dict, timeout: float = 300.0) -> dict:
        """Submit a job and wait for its terminal state."""
        job = self.submit(body)
        return self.wait(job["id"], timeout=timeout)

    def result_bytes(self, job_id: str) -> bytes:
        """The job's canonical result document (exact bytes)."""
        status, raw = self.request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            raise ServiceError(status, raw.decode("utf-8", "replace"))
        return raw

    def result(self, job_id: str) -> dict:
        return json.loads(self.result_bytes(job_id))

    def trace(self, job_id: str) -> dict:
        return self.get(f"/v1/jobs/{job_id}/trace")

"""Stdlib client for the sweep service (``http.client``, no deps).

Used by the test suite, the CI smoke step, and the benchmark harness;
also a reference for talking to the service from anything that can
speak HTTP.  One connection per call — the server closes connections
after each response anyway.

Failure behaviour is deliberate, because the chaos suite drives this
client through a fault-injecting proxy:

* transport errors (dropped connections, resets) retry with
  decorrelated-jitter exponential backoff up to ``retries`` times;
* a truncated NDJSON event stream ends the :meth:`events` generator
  cleanly, and :meth:`wait` falls back to polling the job document;
* :meth:`wait` honours ``Retry-After`` on 429/503 shed responses and
  **fails fast** on any other 4xx — a missing job will not exist no
  matter how long we retry.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Iterator, Optional

from repro.service.jobs import TERMINAL

__all__ = ["ServiceClient", "ServiceError"]

#: Decorrelated-jitter backoff bounds (seconds) for transient errors.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    ``retry_after`` carries the server's Retry-After hint in seconds
    (0.0 when absent); shed responses (429/503) always set it.
    """

    def __init__(self, status: int, message: str, retry_after: float = 0.0):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after

    @property
    def transient(self) -> bool:
        """Worth retrying? (load shedding / server-side trouble)"""
        return self.status == 429 or self.status >= 500


def _next_backoff(previous: float) -> float:
    """Decorrelated jitter: sleep ~ U(base, 3*previous), capped."""
    return min(_BACKOFF_CAP, random.uniform(_BACKOFF_BASE, previous * 3))


class ServiceClient:
    """Thin convenience wrapper over the service's JSON endpoints.

    ``retries`` bounds transport-level retries (connection refused or
    reset before a response lands) per :meth:`request` call; responses,
    once received, are never retried at this layer.  ``client_id`` is
    sent as ``X-Repro-Client`` so the server's per-client admission cap
    keys on it rather than on the peer address.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retries: int = 0,
        client_id: Optional[str] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.client_id = client_id

    # ------------------------------------------------------------------
    # transport

    def _request_once(
        self, method: str, path: str, body: Optional[dict]
    ) -> tuple[int, dict, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode() if body is not None else None
            )
            headers = (
                {"Content-Type": "application/json"} if payload else {}
            )
            if self.client_id:
                headers["X-Repro-Client"] = self.client_id
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            response_headers = {
                name.lower(): value
                for name, value in response.getheaders()
            }
            return response.status, response_headers, response.read()
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
    ) -> tuple[int, dict, bytes]:
        """One HTTP exchange; returns (status, headers, body bytes).

        Retries transport failures — connection errors *and* torn
        responses (``IncompleteRead``, ``BadStatusLine`` from a peer
        dying mid-response) — up to ``self.retries`` times with
        decorrelated-jitter backoff.  POSTs are retried too: job
        submission is idempotent at the cell level (the store and
        single-flight registry dedupe), so a duplicate submit costs a
        duplicate job document, never duplicate work.
        """
        attempts = self.retries + 1
        sleep = _BACKOFF_BASE
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, body)
            except (OSError, http.client.HTTPException):
                if attempt + 1 >= attempts:
                    raise
                sleep = _next_backoff(sleep)
                time.sleep(sleep)
        raise AssertionError("unreachable")

    @staticmethod
    def _retry_after(headers: dict) -> float:
        try:
            return max(0.0, float(headers.get("retry-after", "0")))
        except ValueError:
            return 0.0

    def _json(self, method: str, path: str, body: Optional[dict] = None) -> Any:
        status, headers, raw = self.request(method, path, body)
        if not 200 <= status < 300:
            try:
                message = json.loads(raw).get("error", raw.decode())
            except ValueError:
                message = raw.decode("utf-8", "replace")
            raise ServiceError(status, message, self._retry_after(headers))
        return json.loads(raw)

    def get(self, path: str) -> Any:
        return self._json("GET", path)

    def post(self, path: str, body: dict) -> Any:
        return self._json("POST", path, body)

    # ------------------------------------------------------------------
    # endpoints

    def healthz(self) -> bool:
        """Liveness: True iff the event loop answered 200."""
        status, _, _ = self.request("GET", "/v1/healthz")
        return status == 200

    def readyz(self) -> tuple[bool, dict]:
        """Readiness: (admitting?, readiness document)."""
        status, _, raw = self.request("GET", "/v1/readyz")
        return status == 200, json.loads(raw)

    def status(self) -> dict:
        return self.get("/v1/status")

    def metrics(self) -> dict:
        return self.get("/v1/metrics")

    def cells(self) -> list[dict]:
        return self.get("/v1/cells")["cells"]

    def predict(
        self,
        benchmark: str,
        scale: Optional[str] = None,
        threshold: Optional[float] = None,
        miss_floor: Optional[float] = None,
    ) -> dict:
        """POST /v1/predict — analytic locality prediction, no job.

        Synchronous: the model runs in milliseconds, so the response
        carries the full payload (predicted MRC, per-region gating,
        tile choices) directly instead of a job document.
        """
        body: dict = {"benchmark": benchmark}
        if scale is not None:
            body["scale"] = scale
        if threshold is not None:
            body["threshold"] = threshold
        if miss_floor is not None:
            body["miss_floor"] = miss_floor
        return self.post("/v1/predict", body)

    def submit(self, body: dict) -> dict:
        """POST /v1/jobs; returns the job document.

        Raises :class:`ServiceError` with ``retry_after`` set when the
        server sheds the submission (429/503).
        """
        return self.post("/v1/jobs", body)

    def job(self, job_id: str) -> dict:
        return self.get(f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """DELETE /v1/jobs/{id}; returns the (cancelling) job document."""
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Stream the job's NDJSON events until it finishes.

        A connection drop or a line truncated mid-event (chaos proxy,
        server drain) ends the generator cleanly instead of raising —
        callers that need the terminal state poll :meth:`job`, which is
        exactly what :meth:`wait` does.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceError(
                    response.status, response.read().decode("utf-8", "replace")
                )
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    return  # truncated mid-event; stream is unusable
        except (ConnectionError, TimeoutError, http.client.HTTPException):
            return  # dropped mid-stream; fall back to polling
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Follow the event stream until the job's terminal event.

        Falls back to polling if the stream drops; returns the final
        job document.  Transient errors (connection trouble, 429/503
        shedding) back off with decorrelated jitter, honouring the
        server's ``Retry-After``; any other 4xx raises immediately —
        retrying a 404 will never make the job exist.
        """
        deadline = time.monotonic() + timeout
        sleep = _BACKOFF_BASE
        while True:
            streamed = False
            try:
                for event in self.events(job_id):
                    streamed = True
                    if (
                        event.get("event") == "job"
                        and event.get("state") in TERMINAL
                    ):
                        return self.job(job_id)
            except ServiceError as exc:
                if not exc.transient:
                    raise
            try:
                job = self.job(job_id)
            except ServiceError as exc:
                if not exc.transient:
                    raise
                job = None
                sleep = max(_next_backoff(sleep), exc.retry_after)
            except (OSError, http.client.HTTPException):
                job = None
                sleep = _next_backoff(sleep)
            if job is not None:
                if job["state"] in TERMINAL:
                    return job
                # Stream progress resets the backoff: the service is
                # alive and the job is moving.
                sleep = _BACKOFF_BASE if streamed else _next_backoff(sleep)
            if time.monotonic() + sleep > deadline:
                raise TimeoutError(
                    f"job {job_id} did not finish within {timeout}s"
                )
            time.sleep(sleep)

    def run(self, body: dict, timeout: float = 300.0) -> dict:
        """Submit a job and wait for its terminal state."""
        job = self.submit(body)
        return self.wait(job["id"], timeout=timeout)

    def result_bytes(self, job_id: str) -> bytes:
        """The job's canonical result document (exact bytes)."""
        status, headers, raw = self.request(
            "GET", f"/v1/jobs/{job_id}/result"
        )
        if status != 200:
            raise ServiceError(
                status,
                raw.decode("utf-8", "replace"),
                self._retry_after(headers),
            )
        return raw

    def result(self, job_id: str) -> dict:
        return json.loads(self.result_bytes(job_id))

    def trace(self, job_id: str) -> dict:
        return self.get(f"/v1/jobs/{job_id}/trace")

"""Job lifecycle and event streams for the sweep service.

A :class:`Job` is one ``POST /v1/jobs`` request: a set of cell specs
plus mutable progress state.  Everything a client can observe — cell
transitions (``warm``/``coalesced``/``running``/``done``/``failed``),
scheduler attempts, and the terminal job event — is an entry in the
job's append-only event log, numbered by ``seq``.  ``GET
/v1/jobs/{id}/events`` streams the log as NDJSON: the server replays
existing events and then blocks on :meth:`Job.wait_events` for new
ones, so a client never misses or double-sees an event regardless of
when it connects.

All mutation happens on the event loop (worker threads hand records
over via ``loop.call_soon_threadsafe``), so no locks are needed.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.service.cells import CellSpec

__all__ = ["TERMINAL", "CellState", "Job"]

_JOB_IDS = itertools.count(1)

#: Terminal job states (``state`` in the job document).  Shared with
#: the client so both sides agree on when to stop waiting.
TERMINAL = ("done", "failed", "cancelled")


@dataclass
class CellState:
    """Client-visible progress of one cell within a job.

    ``source`` records how the value was obtained: ``store`` (warm
    hit), ``coalesced`` (another job's in-flight computation),
    ``scheduler`` (cold execution), or ``""`` while undecided.
    """

    spec: CellSpec
    state: str = "queued"  # queued|preparing|running|done|failed|cancelled
    source: str = ""
    attempts: int = 0
    key: str = ""
    message: str = ""

    def to_json(self) -> dict:
        return {
            "benchmark": self.spec.benchmark,
            "config": self.spec.config,
            "kind": self.spec.kind,
            "state": self.state,
            "source": self.source,
            "attempts": self.attempts,
            "key": self.key,
            "message": self.message,
        }


@dataclass
class Job:
    """One submitted request and its observable lifecycle."""

    kind: str
    params: dict
    cells: list[CellState]
    id: str = field(default_factory=lambda: f"job-{next(_JOB_IDS):06d}")
    state: str = "queued"  # queued|running|done|failed|cancelled
    created: float = field(default_factory=time.time)
    finished: Optional[float] = None
    error: str = ""
    #: Admission identity (``X-Repro-Client`` header or peer address);
    #: the per-client in-flight cap is keyed on it.
    client: str = ""
    events: list[dict] = field(default_factory=list)
    #: Canonical result document bytes, set exactly once at completion.
    result_bytes: Optional[bytes] = None
    #: Chrome-trace artifact (traceEvents document), set at completion.
    trace_document: Optional[dict] = None
    #: Set (from any thread) to abort the job: in-flight cell workers
    #: are killed via :func:`repro.core.parallel.execute_cell`'s cancel
    #: path, queued cells never start.  Checked by the event-loop side
    #: at every cell boundary.
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: Why the job was cancelled (client request, deadline, drain).
    cancel_reason: str = ""
    _waiters: list[asyncio.Future] = field(default_factory=list)

    @property
    def cancelling(self) -> bool:
        return self.cancel_event.is_set()

    # ------------------------------------------------------------------
    # event log

    def emit(self, event: str, **fields: Any) -> dict:
        """Append one event and wake every pending :meth:`wait_events`."""
        record = {"seq": len(self.events), "event": event, "job": self.id}
        record.update(fields)
        self.events.append(record)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)
        return record

    async def wait_events(self, since: int) -> list[dict]:
        """Events with ``seq >= since``, blocking until at least one."""
        while len(self.events) <= since:
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter
        return self.events[since:]

    # ------------------------------------------------------------------
    # transitions (event-loop only)

    def cell_event(self, cell: CellState, state: str, **fields) -> None:
        cell.state = state
        for name, value in fields.items():
            if hasattr(cell, name):
                setattr(cell, name, value)
        self.emit(
            "cell",
            benchmark=cell.spec.benchmark,
            config=cell.spec.config,
            state=state,
            source=cell.source,
            attempts=cell.attempts,
            **{
                name: value
                for name, value in fields.items()
                if not hasattr(cell, name)
            },
        )

    def finish(self, state: str, error: str = "") -> None:
        self.state = state
        self.error = error
        self.finished = time.time()
        self.emit("job", state=state, error=error)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL

    async def wait(self) -> None:
        """Block until the job reaches a terminal state."""
        seq = 0
        while not self.done:
            events = await self.wait_events(seq)
            seq = events[-1]["seq"] + 1

    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.state] = counts.get(cell.state, 0) + 1
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "params": self.params,
            "created": self.created,
            "finished": self.finished,
            "error": self.error,
            "client": self.client,
            "cancel_reason": self.cancel_reason,
            "cells": [cell.to_json() for cell in self.cells],
            "cell_counts": counts,
            "events": len(self.events),
        }

"""Sweep-as-a-service: an asyncio HTTP front end for the run store.

The run store already content-addresses every completed evaluation
cell; this package puts a server in front of it.  ``repro serve``
exposes JSON endpoints to submit simulation/sweep/locality/profile
jobs, poll or stream their progress, and fetch results and Chrome-trace
artifacts — with warm cells served straight from the store (no
scheduler involvement), identical in-flight cells single-flight
coalesced onto one computation, and cold cells executed on the
hardened process-per-cell machinery of :mod:`repro.core.parallel`.

Zero new dependencies: the server is asyncio streams + a minimal
HTTP/1.1 layer, the client is ``http.client``.
"""

from repro.service.cells import CellSpec, canonical_json, decompose
from repro.service.chaos import ChaosProxy
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import TERMINAL, Job
from repro.service.server import (
    BackgroundServer,
    CircuitBreaker,
    ServiceConfig,
    SweepService,
    serve_forever,
)

__all__ = [
    "BackgroundServer",
    "CellSpec",
    "ChaosProxy",
    "CircuitBreaker",
    "Job",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepService",
    "TERMINAL",
    "canonical_json",
    "decompose",
    "serve_forever",
]

"""The trace-driven timing model.

Model (one pass over the trace, O(N)):

* **Issue bandwidth** — up to ``issue_width`` instructions issue per
  cycle; compressed ALU bursts advance the issue clock in bulk.
* **Load/store window** — outstanding memory operations occupy LSQ
  slots; a new memory op cannot issue until the op ``lsq_entries``
  before it has completed.  Independent misses therefore overlap
  (memory-level parallelism) up to the window size.
* **Memory ports** — at most ``mem_ports`` memory operations can start
  per cycle; port contention delays the start of an access.
* **Refill bandwidth** — every L1 miss occupies a shared refill bus
  for its line's transfer beats (4 beats for a 32-byte line over the
  8-byte bus), so miss-thrashing code pays for its miss *count* even
  when the latencies would overlap in the LSQ window.
* **MSHRs** — at most ``max_outstanding_misses`` DRAM misses are in
  flight; a storm streams at that many per memory latency.  This keeps
  DRAM-bound code *latency*-sensitive (as in SimpleScalar's
  fixed-latency memory) instead of purely bandwidth-bound, which is
  what reproduces the paper's Figure 5 trend.
* **Branches** — a bimodal predictor; a mispredict adds the redirect
  penalty to the issue clock.
* **Instruction fetch** — the pc stream is run through the L1I/L2 path;
  a front-end miss stalls issue by the access time beyond an L1I hit.
  Sequential fetches within one I-cache line are free.
* **HW_ON/HW_OFF** — occupy an issue slot each and toggle the hardware
  gate, so the paper's "overhead of ON/OFF instructions" is counted.

Final cycle count is the completion time of the last instruction.

Three implementations produce bit-identical results (pinned by
``tests/cpu/test_packed_equivalence.py`` and the hypothesis suite in
``tests/cpu/test_vector_property.py``):

* ``_run_objects`` — the per-record reference loop over
  :class:`Instruction` tuples;
* ``_run_packed`` — the same loop over packed columns, restructured as
  ``_run_packed_range`` so it can process any half-open record range
  against a shared :class:`_PackedState`;
* :func:`repro.cpu.vector.run_vectorized` — block-batched numpy
  kernels, dispatched automatically for :class:`PackedTrace` inputs.

**How the batched kernels preserve bit-identity.**  Nothing in the
memory system depends on simulated *time* — caches, TLBs and the
branch predictor are deterministic state machines driven purely by the
access *sequence*, and the timing recurrence reads their outcomes but
never feeds cycles back into them (interval-sampling telemetry, which
does observe counters at cycle boundaries, forces the scalar path).
The vector path therefore splits each HW_ON/HW_OFF-delimited segment
into two phases: a replay phase that resolves every cache/TLB/branch
outcome in bulk (grouping accesses by set, where LRU evolution is
independent, and replaying each set's short sequence against the live
``SetAssociativeCache`` state), and a timing phase that folds the
resulting per-access latency/provenance columns through the identical
issue/LSQ/port/refill/MSHR recurrence.  Segments where the hardware
assist is enabled fall back to ``_run_packed_range`` on the same
shared state, so mechanisms whose decisions interleave with the access
stream (MAT bypass, victim swaps) keep the reference semantics and the
vector kernels resume mid-trace afterwards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cpu.branch import BimodalPredictor
from repro.cpu.results import SimulationResult
from repro.hwopt.gate import HardwareGate
from repro.isa.instructions import Opcode
from repro.isa.packed import AnyTrace, PackedTrace
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["CPUSimulator"]

# Opcodes as plain ints for the packed hot loop (int == int beats
# int == IntEnum by a wide margin at trace scale).
_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ALU = int(Opcode.ALU)
_BRANCH = int(Opcode.BRANCH)
_HW_ON = int(Opcode.HW_ON)
_HW_OFF = int(Opcode.HW_OFF)


class _PackedState:
    """Mutable timing-loop state threaded through packed record ranges.

    One instance lives for a whole simulation; ``_run_packed_range``
    and the vector kernels both read it at entry and write it back at
    exit, which is what lets scalar fallback segments and vectorized
    segments alternate mid-trace without any loss of fidelity.

    ``port_free`` is kept as a plain per-port list of free times.  Only
    the *multiset* of values is observable (arbitration always picks a
    port with the minimum free time, and which physical port wins a tie
    affects nothing downstream), so the vector path may rotate it
    through a sorted ring and write back any permutation.
    """

    __slots__ = (
        "issue_cycle",
        "slot",
        "last_done",
        "lsq_done",
        "lsq_index",
        "port_free",
        "refill_bus_free",
        "mshr_done",
        "mshr_index",
        "instructions",
        "loads",
        "stores",
        "branches",
        "current_ifetch_line",
        "next_sample",
    )

    def __init__(self, machine: MachineParams, sample_step: int = 0):
        self.issue_cycle = 0  # cycle currently being filled with issues
        self.slot = 0  # issue slots used in issue_cycle
        self.last_done = 0  # completion time of the latest-finishing op
        self.lsq_done = [0] * machine.lsq_entries  # completion ring
        self.lsq_index = 0
        self.port_free = [0] * machine.mem_ports
        self.refill_bus_free = 0
        self.mshr_done = [0] * machine.max_outstanding_misses
        self.mshr_index = 0
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.current_ifetch_line = -1
        self.next_sample = sample_step if sample_step > 0 else None


class CPUSimulator:
    """Times a trace (object or packed form) against a memory hierarchy."""

    def __init__(
        self,
        machine: MachineParams,
        hierarchy: MemoryHierarchy,
        gate: Optional[HardwareGate] = None,
        model_ifetch: bool = True,
        telemetry: Optional["Telemetry"] = None,
        vectorize: Optional[bool] = None,
    ):
        self.machine = machine
        self.hierarchy = hierarchy
        self.gate = gate or HardwareGate(hierarchy.assist)
        self.predictor = BimodalPredictor(machine.bimodal_entries)
        self.model_ifetch = model_ifetch
        self.telemetry = telemetry
        #: None = use the vector kernels when numpy is importable and
        #: the run is eligible; True/False force the choice (True raises
        #: if numpy is unavailable — used by the equivalence tests).
        self.vectorize = vectorize

    def run(self, trace: AnyTrace) -> SimulationResult:
        """Simulate the whole trace; return cycles and statistics.

        Packed traces take the block-batched vector path when eligible
        (falling back to the columnar scalar loop otherwise); object
        traces take the reference loop.  All paths produce bit-identical
        results (pinned by ``tests/cpu/test_packed_equivalence.py``) —
        any change to the timing model must be made to every loop.

        An attached telemetry hub only *reads* simulator and hierarchy
        counters, so results are bit-identical with or without one
        (pinned by ``tests/telemetry/test_identity.py``).
        """
        if self.telemetry is not None:
            self.telemetry.bind(
                self.hierarchy.sample_counters,
                self.hierarchy.snapshot,
                gate_on=self.gate.enabled,
            )
            self.gate.telemetry = self.telemetry
        if isinstance(trace, PackedTrace):
            if self._vector_eligible():
                from repro.cpu.vector import run_vectorized

                return run_vectorized(self, trace)
            return self._run_packed(trace)
        return self._run_objects(trace)

    def _vector_eligible(self) -> bool:
        """Whether this run may use the block-batched numpy kernels.

        Interval-sampling telemetry reads hierarchy counters at cycle
        thresholds *interleaved* with the access stream, which the
        phase-split kernels cannot honour — those runs use the scalar
        loop.  (An ``interval=0`` hub only observes segment boundaries
        and final totals, which the vector driver reports identically.)
        """
        if self.vectorize is False:
            return False
        from repro.cpu import vector

        if not vector.available():
            if self.vectorize:
                raise RuntimeError(
                    "vectorize=True requested but numpy is not importable"
                )
            return False
        if self.telemetry is not None and self.telemetry.interval > 0:
            return False
        return True

    def _run_objects(self, trace) -> SimulationResult:
        """Reference implementation over per-instruction records."""
        machine = self.machine
        hierarchy = self.hierarchy
        gate = self.gate
        predictor = self.predictor
        issue_width = machine.issue_width
        mispredict_penalty = machine.branch_mispredict_penalty
        l1i_hit = machine.l1i.latency
        ifetch_line_mask = ~(machine.l1i.block_size - 1)
        model_ifetch = self.model_ifetch

        lsq_size = machine.lsq_entries
        lsq_done = [0] * lsq_size  # completion time per LSQ slot (ring)
        lsq_index = 0
        num_ports = machine.mem_ports
        # Port arbitration picks the earliest-free port; the 1- and
        # 2-port cases (every Table 1 machine) are hoisted out of the
        # general scan into plain int locals.
        single_port = num_ports == 1
        dual_port = num_ports == 2
        port0 = port1 = 0
        port_free = [0] * num_ports
        # Shared refill bus: beats to move one L1 line from L2.  DRAM
        # fills occupy the same L1-side bus slot; their own (much
        # longer) DRAM-bus transfer is part of the access latency, as
        # in SimpleScalar — modelling DRAM-side *contention* on top
        # would make miss-storm code bandwidth-bound and insensitive
        # to memory latency, which the paper's simulator is not.
        l2_refill_beats = max(
            machine.l1d.block_size // machine.mem_bus_width, 1
        )
        refill_bus_free = 0
        # MSHR ring: a DRAM-served miss waits for the one issued
        # max_outstanding_misses earlier to complete.
        mshr_count = machine.max_outstanding_misses
        mshr_done = [0] * mshr_count
        mshr_index = 0

        issue_cycle = 0  # cycle currently being filled with issues
        slot = 0  # issue slots used in issue_cycle
        last_done = 0  # completion time of the latest-finishing op

        instructions = loads = stores = branches = 0
        current_ifetch_line = -1

        data_access = hierarchy.data_access
        inst_fetch = hierarchy.inst_fetch

        # Telemetry: ``next_sample`` is None unless interval sampling is
        # on, so a disabled run pays one local ``is None`` check per
        # record.  Sampling and span bookkeeping only read state.
        telemetry = self.telemetry
        sample_step = telemetry.interval if telemetry is not None else 0
        next_sample = sample_step if sample_step > 0 else None

        for op, arg, pc in trace.instructions:
            if next_sample is not None and issue_cycle >= next_sample:
                telemetry.sample(issue_cycle, instructions)
                next_sample = (
                    issue_cycle - issue_cycle % sample_step + sample_step
                )

            # -- front end: instruction fetch ---------------------------
            if model_ifetch:
                line = pc & ifetch_line_mask
                if line != current_ifetch_line:
                    current_ifetch_line = line
                    fetch_latency = inst_fetch(pc)
                    if fetch_latency > l1i_hit:
                        issue_cycle += fetch_latency - l1i_hit
                        slot = 0

            # -- issue slot accounting ----------------------------------
            if op == Opcode.ALU:
                count = arg if arg > 0 else 1
                instructions += count
                slot += count
                if slot >= issue_width:
                    issue_cycle += slot // issue_width
                    slot %= issue_width
                continue

            instructions += 1
            slot += 1
            if slot >= issue_width:
                issue_cycle += 1
                slot = 0

            if op == Opcode.LOAD or op == Opcode.STORE:
                is_write = op == Opcode.STORE
                if is_write:
                    stores += 1
                else:
                    loads += 1
                # The op at this LSQ slot lsq_size ago must have finished.
                pending = lsq_done[lsq_index]
                if pending > issue_cycle:
                    issue_cycle = pending
                    slot = 0
                # Port arbitration: earliest free port.
                if single_port:
                    start = issue_cycle if issue_cycle > port0 else port0
                    port0 = start + 1
                elif dual_port:
                    if port0 <= port1:
                        start = issue_cycle if issue_cycle > port0 else port0
                        port0 = start + 1
                    else:
                        start = issue_cycle if issue_cycle > port1 else port1
                        port1 = start + 1
                else:
                    port = 0
                    earliest = port_free[0]
                    for p in range(1, num_ports):
                        if port_free[p] < earliest:
                            earliest = port_free[p]
                            port = p
                    start = (
                        issue_cycle if issue_cycle > earliest else earliest
                    )
                    port_free[port] = start + 1
                access = data_access(arg, is_write)
                if access.l1_hit or access.served_by == "assist":
                    done = start + access.latency
                else:
                    # A refill: serialize on the shared L1 fill bus.
                    if refill_bus_free > start:
                        start = refill_bus_free
                    refill_bus_free = start + l2_refill_beats
                    if access.served_by == "mem":
                        # DRAM: bounded memory-level parallelism.
                        pending_miss = mshr_done[mshr_index]
                        if pending_miss > start:
                            start = pending_miss
                        done = start + access.latency
                        mshr_done[mshr_index] = done
                        mshr_index += 1
                        if mshr_index == mshr_count:
                            mshr_index = 0
                    else:
                        done = start + access.latency
                lsq_done[lsq_index] = done
                lsq_index += 1
                if lsq_index == lsq_size:
                    lsq_index = 0
                if done > last_done:
                    last_done = done
            elif op == Opcode.BRANCH:
                branches += 1
                if not predictor.predict_and_update(pc, arg != 0):
                    issue_cycle += mispredict_penalty
                    slot = 0
            elif op == Opcode.HW_ON:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                gate.activate()
            elif op == Opcode.HW_OFF:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                gate.deactivate()
            else:  # pragma: no cover - exhaustive over Opcode
                raise ValueError(f"unknown opcode {op!r}")

        total_cycles = max(issue_cycle + (1 if slot else 0), last_done)
        if telemetry is not None:
            telemetry.finish(total_cycles, instructions)
        return self._result(
            trace.name, total_cycles, instructions, loads, stores, branches
        )

    def _run_packed(self, trace: PackedTrace) -> SimulationResult:
        """Columnar scalar path over the three packed columns.

        Semantically identical to :meth:`_run_objects`; the loop body
        lives in :meth:`_run_packed_range` so the vector driver can run
        the same code over fallback segments mid-trace.
        """
        telemetry = self.telemetry
        sample_step = telemetry.interval if telemetry is not None else 0
        state = _PackedState(self.machine, sample_step)
        ops, args, pcs = trace.columns()
        self._run_packed_range(state, ops, args, pcs, 0, len(ops))
        return self._finalize_packed(trace.name, state)

    def _finalize_packed(
        self, trace_name: str, state: _PackedState
    ) -> SimulationResult:
        total_cycles = max(
            state.issue_cycle + (1 if state.slot else 0), state.last_done
        )
        if self.telemetry is not None:
            self.telemetry.finish(total_cycles, state.instructions)
        return self._result(
            trace_name,
            total_cycles,
            state.instructions,
            state.loads,
            state.stores,
            state.branches,
        )

    def _run_packed_range(
        self, state: _PackedState, ops, args, pcs, lo: int, hi: int
    ) -> None:
        """Scalar reference loop over packed records ``lo..hi-1``.

        Reads ``state`` into locals, runs the per-record loop (opcodes
        compared as plain ints; iterating the machine-word columns in
        lockstep replaces per-record NamedTuple traversal, measured
        ~2.5× cheaper per record than indexed column access), and
        writes the updated timing state back, so vectorized and scalar
        segments can alternate over one simulation.
        """
        machine = self.machine
        hierarchy = self.hierarchy
        gate = self.gate
        issue_width = machine.issue_width
        mispredict_penalty = machine.branch_mispredict_penalty
        l1i_hit = machine.l1i.latency
        ifetch_line_mask = ~(machine.l1i.block_size - 1)
        model_ifetch = self.model_ifetch

        lsq_size = machine.lsq_entries
        lsq_done = state.lsq_done
        lsq_index = state.lsq_index
        num_ports = machine.mem_ports
        # Port arbitration: the 1- and 2-port cases (every Table 1
        # machine) are hoisted out of the general scan into int locals.
        port_free = state.port_free
        single_port = num_ports == 1
        dual_port = num_ports == 2
        port0 = port_free[0]
        port1 = port_free[1] if dual_port else 0
        # Shared refill bus / MSHR ring: same model as the object loop
        # (see the block comments there).
        l2_refill_beats = max(
            machine.l1d.block_size // machine.mem_bus_width, 1
        )
        refill_bus_free = state.refill_bus_free
        mshr_count = machine.max_outstanding_misses
        mshr_done = state.mshr_done
        mshr_index = state.mshr_index

        issue_cycle = state.issue_cycle
        slot = state.slot
        last_done = state.last_done

        instructions = state.instructions
        loads = state.loads
        stores = state.stores
        branches = state.branches
        current_ifetch_line = state.current_ifetch_line

        data_access = hierarchy.data_access
        inst_fetch = hierarchy.inst_fetch
        predict_and_update = self.predictor.predict_and_update
        activate = gate.activate
        deactivate = gate.deactivate

        # Telemetry: same contract as the object loop — one local
        # ``is None`` check per record when disabled.
        telemetry = self.telemetry
        sample_step = telemetry.interval if telemetry is not None else 0
        next_sample = state.next_sample

        if lo != 0 or hi != len(ops):
            ops = ops[lo:hi]
            args = args[lo:hi]
            pcs = pcs[lo:hi]

        for op, arg, pc in zip(ops, args, pcs):
            if next_sample is not None and issue_cycle >= next_sample:
                telemetry.sample(issue_cycle, instructions)
                next_sample = (
                    issue_cycle - issue_cycle % sample_step + sample_step
                )

            # -- front end: instruction fetch ---------------------------
            if model_ifetch:
                line = pc & ifetch_line_mask
                if line != current_ifetch_line:
                    current_ifetch_line = line
                    fetch_latency = inst_fetch(pc)
                    if fetch_latency > l1i_hit:
                        issue_cycle += fetch_latency - l1i_hit
                        slot = 0

            # -- issue slot accounting ----------------------------------
            if op == _ALU:
                count = arg if arg > 0 else 1
                instructions += count
                slot += count
                if slot >= issue_width:
                    issue_cycle += slot // issue_width
                    slot %= issue_width
                continue

            instructions += 1
            slot += 1
            if slot >= issue_width:
                issue_cycle += 1
                slot = 0

            if op == _LOAD or op == _STORE:
                is_write = op == _STORE
                if is_write:
                    stores += 1
                else:
                    loads += 1
                # The op at this LSQ slot lsq_size ago must have finished.
                pending = lsq_done[lsq_index]
                if pending > issue_cycle:
                    issue_cycle = pending
                    slot = 0
                # Port arbitration: earliest free port.
                if single_port:
                    start = issue_cycle if issue_cycle > port0 else port0
                    port0 = start + 1
                elif dual_port:
                    if port0 <= port1:
                        start = issue_cycle if issue_cycle > port0 else port0
                        port0 = start + 1
                    else:
                        start = issue_cycle if issue_cycle > port1 else port1
                        port1 = start + 1
                else:
                    port = 0
                    earliest = port_free[0]
                    for p in range(1, num_ports):
                        if port_free[p] < earliest:
                            earliest = port_free[p]
                            port = p
                    start = (
                        issue_cycle if issue_cycle > earliest else earliest
                    )
                    port_free[port] = start + 1
                access = data_access(arg, is_write)
                if access.l1_hit or access.served_by == "assist":
                    done = start + access.latency
                else:
                    # A refill: serialize on the shared L1 fill bus.
                    if refill_bus_free > start:
                        start = refill_bus_free
                    refill_bus_free = start + l2_refill_beats
                    if access.served_by == "mem":
                        # DRAM: bounded memory-level parallelism.
                        pending_miss = mshr_done[mshr_index]
                        if pending_miss > start:
                            start = pending_miss
                        done = start + access.latency
                        mshr_done[mshr_index] = done
                        mshr_index += 1
                        if mshr_index == mshr_count:
                            mshr_index = 0
                    else:
                        done = start + access.latency
                lsq_done[lsq_index] = done
                lsq_index += 1
                if lsq_index == lsq_size:
                    lsq_index = 0
                if done > last_done:
                    last_done = done
            elif op == _BRANCH:
                branches += 1
                if not predict_and_update(pc, arg != 0):
                    issue_cycle += mispredict_penalty
                    slot = 0
            elif op == _HW_ON:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                activate()
            elif op == _HW_OFF:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                deactivate()
            else:  # pragma: no cover - exhaustive over Opcode
                raise ValueError(f"unknown opcode {op!r}")

        state.issue_cycle = issue_cycle
        state.slot = slot
        state.last_done = last_done
        state.lsq_index = lsq_index
        if single_port:
            port_free[0] = port0
        elif dual_port:
            port_free[0] = port0
            port_free[1] = port1
        state.refill_bus_free = refill_bus_free
        state.mshr_index = mshr_index
        state.instructions = instructions
        state.loads = loads
        state.stores = stores
        state.branches = branches
        state.current_ifetch_line = current_ifetch_line
        state.next_sample = next_sample

    def _result(
        self,
        trace_name: str,
        cycles: int,
        instructions: int,
        loads: int,
        stores: int,
        branches: int,
    ) -> SimulationResult:
        return SimulationResult(
            trace_name=trace_name,
            machine_name=self.machine.name,
            cycles=cycles,
            instructions=instructions,
            loads=loads,
            stores=stores,
            branches=branches,
            branch_mispredictions=self.predictor.mispredictions,
            hw_toggles=self.gate.toggles,
            memory=self.hierarchy.snapshot(),
        )

"""The trace-driven timing model.

Model (one pass over the trace, O(N)):

* **Issue bandwidth** — up to ``issue_width`` instructions issue per
  cycle; compressed ALU bursts advance the issue clock in bulk.
* **Load/store window** — outstanding memory operations occupy LSQ
  slots; a new memory op cannot issue until the op ``lsq_entries``
  before it has completed.  Independent misses therefore overlap
  (memory-level parallelism) up to the window size.
* **Memory ports** — at most ``mem_ports`` memory operations can start
  per cycle; port contention delays the start of an access.
* **Refill bandwidth** — every L1 miss occupies a shared refill bus
  for its line's transfer beats (4 beats for a 32-byte line over the
  8-byte bus), so miss-thrashing code pays for its miss *count* even
  when the latencies would overlap in the LSQ window.
* **MSHRs** — at most ``max_outstanding_misses`` DRAM misses are in
  flight; a storm streams at that many per memory latency.  This keeps
  DRAM-bound code *latency*-sensitive (as in SimpleScalar's
  fixed-latency memory) instead of purely bandwidth-bound, which is
  what reproduces the paper's Figure 5 trend.
* **Branches** — a bimodal predictor; a mispredict adds the redirect
  penalty to the issue clock.
* **Instruction fetch** — the pc stream is run through the L1I/L2 path;
  a front-end miss stalls issue by the access time beyond an L1I hit.
  Sequential fetches within one I-cache line are free.
* **HW_ON/HW_OFF** — occupy an issue slot each and toggle the hardware
  gate, so the paper's "overhead of ON/OFF instructions" is counted.

Final cycle count is the completion time of the last instruction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cpu.branch import BimodalPredictor
from repro.cpu.results import SimulationResult
from repro.hwopt.gate import HardwareGate
from repro.isa.instructions import Opcode
from repro.isa.packed import AnyTrace, PackedTrace
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["CPUSimulator"]

# Opcodes as plain ints for the packed hot loop (int == int beats
# int == IntEnum by a wide margin at trace scale).
_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ALU = int(Opcode.ALU)
_BRANCH = int(Opcode.BRANCH)
_HW_ON = int(Opcode.HW_ON)
_HW_OFF = int(Opcode.HW_OFF)


class CPUSimulator:
    """Times a trace (object or packed form) against a memory hierarchy."""

    def __init__(
        self,
        machine: MachineParams,
        hierarchy: MemoryHierarchy,
        gate: Optional[HardwareGate] = None,
        model_ifetch: bool = True,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.machine = machine
        self.hierarchy = hierarchy
        self.gate = gate or HardwareGate(hierarchy.assist)
        self.predictor = BimodalPredictor(machine.bimodal_entries)
        self.model_ifetch = model_ifetch
        self.telemetry = telemetry

    def run(self, trace: AnyTrace) -> SimulationResult:
        """Simulate the whole trace; return cycles and statistics.

        Packed traces take the columnar fast path; object traces take
        the reference loop.  Both produce bit-identical results (pinned
        by ``tests/cpu/test_packed_equivalence.py``) — any change to
        the timing model must be made to *both* loops.

        An attached telemetry hub only *reads* simulator and hierarchy
        counters, so results are bit-identical with or without one
        (pinned by ``tests/telemetry/test_identity.py``).
        """
        if self.telemetry is not None:
            self.telemetry.bind(
                self.hierarchy.sample_counters,
                self.hierarchy.snapshot,
                gate_on=self.gate.enabled,
            )
            self.gate.telemetry = self.telemetry
        if isinstance(trace, PackedTrace):
            return self._run_packed(trace)
        return self._run_objects(trace)

    def _run_objects(self, trace) -> SimulationResult:
        """Reference implementation over per-instruction records."""
        machine = self.machine
        hierarchy = self.hierarchy
        gate = self.gate
        predictor = self.predictor
        issue_width = machine.issue_width
        mispredict_penalty = machine.branch_mispredict_penalty
        l1i_hit = machine.l1i.latency
        ifetch_line_mask = ~(machine.l1i.block_size - 1)
        model_ifetch = self.model_ifetch

        lsq_size = machine.lsq_entries
        lsq_done = [0] * lsq_size  # completion time per LSQ slot (ring)
        lsq_index = 0
        num_ports = machine.mem_ports
        port_free = [0] * num_ports
        # Shared refill bus: beats to move one L1 line from L2.  DRAM
        # fills occupy the same L1-side bus slot; their own (much
        # longer) DRAM-bus transfer is part of the access latency, as
        # in SimpleScalar — modelling DRAM-side *contention* on top
        # would make miss-storm code bandwidth-bound and insensitive
        # to memory latency, which the paper's simulator is not.
        l2_refill_beats = max(
            machine.l1d.block_size // machine.mem_bus_width, 1
        )
        refill_bus_free = 0
        # MSHR ring: a DRAM-served miss waits for the one issued
        # max_outstanding_misses earlier to complete.
        mshr_count = machine.max_outstanding_misses
        mshr_done = [0] * mshr_count
        mshr_index = 0

        issue_cycle = 0  # cycle currently being filled with issues
        slot = 0  # issue slots used in issue_cycle
        last_done = 0  # completion time of the latest-finishing op

        instructions = loads = stores = branches = 0
        current_ifetch_line = -1

        data_access = hierarchy.data_access
        inst_fetch = hierarchy.inst_fetch

        # Telemetry: ``next_sample`` is None unless interval sampling is
        # on, so a disabled run pays one local ``is None`` check per
        # record.  Sampling and span bookkeeping only read state.
        telemetry = self.telemetry
        sample_step = telemetry.interval if telemetry is not None else 0
        next_sample = sample_step if sample_step > 0 else None

        for op, arg, pc in trace.instructions:
            if next_sample is not None and issue_cycle >= next_sample:
                telemetry.sample(issue_cycle, instructions)
                next_sample = (
                    issue_cycle - issue_cycle % sample_step + sample_step
                )

            # -- front end: instruction fetch ---------------------------
            if model_ifetch:
                line = pc & ifetch_line_mask
                if line != current_ifetch_line:
                    current_ifetch_line = line
                    fetch_latency = inst_fetch(pc)
                    if fetch_latency > l1i_hit:
                        issue_cycle += fetch_latency - l1i_hit
                        slot = 0

            # -- issue slot accounting ----------------------------------
            if op == Opcode.ALU:
                count = arg if arg > 0 else 1
                instructions += count
                slot += count
                if slot >= issue_width:
                    issue_cycle += slot // issue_width
                    slot %= issue_width
                continue

            instructions += 1
            slot += 1
            if slot >= issue_width:
                issue_cycle += 1
                slot = 0

            if op == Opcode.LOAD or op == Opcode.STORE:
                is_write = op == Opcode.STORE
                if is_write:
                    stores += 1
                else:
                    loads += 1
                # The op at this LSQ slot lsq_size ago must have finished.
                pending = lsq_done[lsq_index]
                if pending > issue_cycle:
                    issue_cycle = pending
                    slot = 0
                # Port arbitration: earliest free port.
                port = 0
                earliest = port_free[0]
                for p in range(1, num_ports):
                    if port_free[p] < earliest:
                        earliest = port_free[p]
                        port = p
                start = issue_cycle if issue_cycle > earliest else earliest
                port_free[port] = start + 1
                access = data_access(arg, is_write)
                if access.l1_hit or access.served_by == "assist":
                    done = start + access.latency
                else:
                    # A refill: serialize on the shared L1 fill bus.
                    if refill_bus_free > start:
                        start = refill_bus_free
                    refill_bus_free = start + l2_refill_beats
                    if access.served_by == "mem":
                        # DRAM: bounded memory-level parallelism.
                        pending_miss = mshr_done[mshr_index]
                        if pending_miss > start:
                            start = pending_miss
                        done = start + access.latency
                        mshr_done[mshr_index] = done
                        mshr_index += 1
                        if mshr_index == mshr_count:
                            mshr_index = 0
                    else:
                        done = start + access.latency
                lsq_done[lsq_index] = done
                lsq_index += 1
                if lsq_index == lsq_size:
                    lsq_index = 0
                if done > last_done:
                    last_done = done
            elif op == Opcode.BRANCH:
                branches += 1
                if not predictor.predict_and_update(pc, arg != 0):
                    issue_cycle += mispredict_penalty
                    slot = 0
            elif op == Opcode.HW_ON:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                gate.activate()
            elif op == Opcode.HW_OFF:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                gate.deactivate()
            else:  # pragma: no cover - exhaustive over Opcode
                raise ValueError(f"unknown opcode {op!r}")

        total_cycles = max(issue_cycle + (1 if slot else 0), last_done)
        if telemetry is not None:
            telemetry.finish(total_cycles, instructions)
        return self._result(
            trace.name, total_cycles, instructions, loads, stores, branches
        )

    def _run_packed(self, trace: PackedTrace) -> SimulationResult:
        """Columnar fast path over the three packed columns.

        Semantically identical to :meth:`_run_objects`; opcodes are
        compared as plain ints, and iterating the machine-word columns
        in lockstep replaces per-record NamedTuple traversal (measured
        ~2.5× cheaper per record than indexed column access).
        """
        machine = self.machine
        hierarchy = self.hierarchy
        gate = self.gate
        predictor = self.predictor
        issue_width = machine.issue_width
        mispredict_penalty = machine.branch_mispredict_penalty
        l1i_hit = machine.l1i.latency
        ifetch_line_mask = ~(machine.l1i.block_size - 1)
        model_ifetch = self.model_ifetch

        lsq_size = machine.lsq_entries
        lsq_done = [0] * lsq_size  # completion time per LSQ slot (ring)
        lsq_index = 0
        num_ports = machine.mem_ports
        port_free = [0] * num_ports
        # Shared refill bus / MSHR ring: same model as the object loop
        # (see the block comments there).
        l2_refill_beats = max(
            machine.l1d.block_size // machine.mem_bus_width, 1
        )
        refill_bus_free = 0
        mshr_count = machine.max_outstanding_misses
        mshr_done = [0] * mshr_count
        mshr_index = 0

        issue_cycle = 0  # cycle currently being filled with issues
        slot = 0  # issue slots used in issue_cycle
        last_done = 0  # completion time of the latest-finishing op

        instructions = loads = stores = branches = 0
        current_ifetch_line = -1

        data_access = hierarchy.data_access
        inst_fetch = hierarchy.inst_fetch
        predict_and_update = predictor.predict_and_update
        activate = gate.activate
        deactivate = gate.deactivate

        # Telemetry: same contract as the object loop — one local
        # ``is None`` check per record when disabled.
        telemetry = self.telemetry
        sample_step = telemetry.interval if telemetry is not None else 0
        next_sample = sample_step if sample_step > 0 else None

        ops, args, pcs = trace.columns()

        for op, arg, pc in zip(ops, args, pcs):
            if next_sample is not None and issue_cycle >= next_sample:
                telemetry.sample(issue_cycle, instructions)
                next_sample = (
                    issue_cycle - issue_cycle % sample_step + sample_step
                )

            # -- front end: instruction fetch ---------------------------
            if model_ifetch:
                line = pc & ifetch_line_mask
                if line != current_ifetch_line:
                    current_ifetch_line = line
                    fetch_latency = inst_fetch(pc)
                    if fetch_latency > l1i_hit:
                        issue_cycle += fetch_latency - l1i_hit
                        slot = 0

            # -- issue slot accounting ----------------------------------
            if op == _ALU:
                count = arg if arg > 0 else 1
                instructions += count
                slot += count
                if slot >= issue_width:
                    issue_cycle += slot // issue_width
                    slot %= issue_width
                continue

            instructions += 1
            slot += 1
            if slot >= issue_width:
                issue_cycle += 1
                slot = 0

            if op == _LOAD or op == _STORE:
                is_write = op == _STORE
                if is_write:
                    stores += 1
                else:
                    loads += 1
                # The op at this LSQ slot lsq_size ago must have finished.
                pending = lsq_done[lsq_index]
                if pending > issue_cycle:
                    issue_cycle = pending
                    slot = 0
                # Port arbitration: earliest free port.
                port = 0
                earliest = port_free[0]
                for p in range(1, num_ports):
                    if port_free[p] < earliest:
                        earliest = port_free[p]
                        port = p
                start = issue_cycle if issue_cycle > earliest else earliest
                port_free[port] = start + 1
                access = data_access(arg, is_write)
                if access.l1_hit or access.served_by == "assist":
                    done = start + access.latency
                else:
                    # A refill: serialize on the shared L1 fill bus.
                    if refill_bus_free > start:
                        start = refill_bus_free
                    refill_bus_free = start + l2_refill_beats
                    if access.served_by == "mem":
                        # DRAM: bounded memory-level parallelism.
                        pending_miss = mshr_done[mshr_index]
                        if pending_miss > start:
                            start = pending_miss
                        done = start + access.latency
                        mshr_done[mshr_index] = done
                        mshr_index += 1
                        if mshr_index == mshr_count:
                            mshr_index = 0
                    else:
                        done = start + access.latency
                lsq_done[lsq_index] = done
                lsq_index += 1
                if lsq_index == lsq_size:
                    lsq_index = 0
                if done > last_done:
                    last_done = done
            elif op == _BRANCH:
                branches += 1
                if not predict_and_update(pc, arg != 0):
                    issue_cycle += mispredict_penalty
                    slot = 0
            elif op == _HW_ON:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                activate()
            elif op == _HW_OFF:
                if telemetry is not None:
                    telemetry.now = issue_cycle
                    telemetry.instructions = instructions
                deactivate()
            else:  # pragma: no cover - exhaustive over Opcode
                raise ValueError(f"unknown opcode {op!r}")

        total_cycles = max(issue_cycle + (1 if slot else 0), last_done)
        if telemetry is not None:
            telemetry.finish(total_cycles, instructions)
        return self._result(
            trace.name, total_cycles, instructions, loads, stores, branches
        )

    def _result(
        self,
        trace_name: str,
        cycles: int,
        instructions: int,
        loads: int,
        stores: int,
        branches: int,
    ) -> SimulationResult:
        return SimulationResult(
            trace_name=trace_name,
            machine_name=self.machine.name,
            cycles=cycles,
            instructions=instructions,
            loads=loads,
            stores=stores,
            branches=branches,
            branch_mispredictions=self.predictor.mispredictions,
            hw_toggles=self.gate.toggles,
            memory=self.hierarchy.snapshot(),
        )

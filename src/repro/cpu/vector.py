"""Block-batched numpy execution of packed traces.

This is the fast path behind :meth:`CPUSimulator.run` for
:class:`PackedTrace` inputs.  It produces results bit-identical to the
scalar loops (see the bit-identity note in :mod:`repro.cpu.pipeline`)
by splitting the trace at HW_ON/HW_OFF markers and, for each span
where the hardware assist is off, running two phases:

1. **Replay phase** — all cache/TLB/branch-predictor outcomes for the
   span are resolved in bulk by the kernels in
   :mod:`repro.memory.bulk` (via ``MemoryHierarchy.bulk_classify``)
   and ``BimodalPredictor.bulk_predict_and_update``, operating on the
   same live structures the scalar loop uses.

2. **Timing phase** — per-access latency/refill columns are folded
   through the issue/LSQ/port/refill-bus/MSHR recurrence.  Between
   *timing events* (an instruction-fetch stall, a memory operation, a
   mispredicted branch) the issue clock advances by a fixed number of
   issue slots, so it is represented in closed form as
   ``cycle(c) = base + (off + c) // issue_width`` over the cumulative
   slot count ``c`` (an ``np.cumsum`` of per-record slot costs); only
   the events themselves run in a tight Python loop, and each event
   that zeroes the slot counter just rebases ``(base, off)``.

Marker records and assist-enabled spans execute through the scalar
``_run_packed_range`` against the same shared ``_PackedState``, so the
two execution styles alternate freely mid-trace.

Port arbitration note: the scalar loops pick the earliest-free port
with a linear scan.  Here the ports are a sorted ring rotated FIFO —
because access start times are non-decreasing within a span, the port
freed longest ago is always an earliest-free port, so the resulting
multiset of port-free times (the only observable) is identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the env
    np = None

from repro.isa.instructions import Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.pipeline import CPUSimulator, _PackedState
    from repro.isa.packed import PackedTrace

__all__ = ["available", "run_vectorized"]

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ALU = int(Opcode.ALU)
_BRANCH = int(Opcode.BRANCH)

#: Spans shorter than this run through the scalar loop: the fixed cost
#: of ~20 numpy kernel launches outweighs per-record interpretation on
#: tiny spans (frequent in selective traces with many gated regions).
#: ``vectorize=True`` overrides the floor so tests can force the
#: kernels onto arbitrarily small traces.
MIN_VECTOR_SPAN = 512


def available() -> bool:
    """Whether the vector kernels can run (numpy importable)."""
    return np is not None


def run_vectorized(sim: "CPUSimulator", trace: "PackedTrace"):
    """Simulate a packed trace with the block-batched kernels.

    Dispatched from :meth:`CPUSimulator.run`; bit-identical to
    ``_run_packed`` / ``_run_objects``.
    """
    from repro.cpu.pipeline import _PackedState

    state = _PackedState(sim.machine)
    ops, args, pcs = trace.numpy_columns()
    raw_cols = trace.columns()
    n = ops.size
    markers = trace.marker_positions()
    force = sim.vectorize is True

    lo = 0
    for m in markers.tolist():
        _run_span(sim, state, ops, args, pcs, raw_cols, lo, m, force)
        # The marker record itself: one scalar step (issue slot,
        # telemetry boundary, gate toggle).
        sim._run_packed_range(state, *raw_cols, m, m + 1)
        lo = m + 1
    _run_span(sim, state, ops, args, pcs, raw_cols, lo, n, force)
    return sim._finalize_packed(trace.name, state)


def _run_span(sim, state, ops, args, pcs, raw_cols, lo, hi, force):
    """Run records ``lo..hi-1`` (no markers inside) the fastest legal way."""
    if hi <= lo:
        return
    assist = sim.hierarchy.assist
    if (assist is not None and assist.enabled) or (
        hi - lo < MIN_VECTOR_SPAN and not force
    ):
        # Assist decisions (MAT bypass, victim swaps) interleave with
        # the access stream — keep the reference semantics.
        sim._run_packed_range(state, *raw_cols, lo, hi)
        return
    _simulate_span(sim, state, ops[lo:hi], args[lo:hi], pcs[lo:hi])


def _simulate_span(sim, state: "_PackedState", ops, args, pcs) -> None:
    """Two-phase (replay, then timing) execution of one gate-off span."""
    machine = sim.machine
    n = ops.size

    # ---- issue-slot costs per record ------------------------------------
    is_alu = ops == _ALU
    slots = np.where(is_alu, np.maximum(args, 1), 1)
    cum_slots = np.cumsum(slots)

    # ---- instruction fetch: records whose I-cache line changes ----------
    if sim.model_ifetch:
        line_mask = ~(machine.l1i.block_size - 1)
        lines = pcs & line_mask
        changed = np.empty(n, dtype=bool)
        changed[0] = lines[0] != state.current_ifetch_line
        np.not_equal(lines[1:], lines[:-1], out=changed[1:])
        fetch_rel = np.nonzero(changed)[0]
        fetch_pcs = pcs[fetch_rel]
    else:
        fetch_rel = np.empty(0, dtype=np.int64)
        fetch_pcs = fetch_rel

    # ---- replay phase: memory system and branch predictor ---------------
    is_mem = (ops == _LOAD) | (ops == _STORE)
    mem_rel = np.nonzero(is_mem)[0]
    writes = ops[mem_rel] == _STORE
    latency, refill, stall = sim.hierarchy.bulk_classify(
        args[mem_rel], writes, mem_rel, fetch_pcs, fetch_rel
    )

    br_rel = np.nonzero(ops == _BRANCH)[0]
    correct = sim.predictor.bulk_predict_and_update(
        pcs[br_rel], args[br_rel] != 0
    )
    miss_rel = br_rel[~correct]

    stalled = stall > 0
    stall_rel = fetch_rel[stalled]
    stall_vals = stall[stalled]

    # ---- merge timing events in (record, phase) order -------------------
    # Within one record the scalar loop handles the front-end stall
    # first (its clock reads the *pre*-slot cumulative count), then the
    # record's own action (memory op or branch, post-slot).  A record
    # is never both a memory op and a branch, so the phase order falls
    # out of inserting the sparse rebase events (stalls, mispredicts —
    # typically a few hundred) into the dense, already-sorted memory
    # stream at their searchsorted positions; ``side='left'`` puts a
    # record's stall ahead of its own memory op.  This replaces a
    # full-width stable argsort plus three gathers with O(events) work
    # on the sparse side and one linear merge copy.
    #
    # ``ev_code`` packs the event kind: 0/1/2 = memory op with that
    # refill class, 3 = issue-clock rebase (stall or mispredict, with
    # the added cycles carried in ``ev_lat``).
    width = machine.issue_width
    mispredict_penalty = machine.branch_mispredict_penalty
    n_stall, n_mem, n_miss = stall_rel.size, mem_rel.size, miss_rel.size
    if n_stall or n_miss:
        rebase_rel = np.concatenate((stall_rel, miss_rel))
        rebase_lat = np.concatenate(
            (stall_vals, np.full(n_miss, mispredict_penalty, np.int64))
        )
        rebase_cum = cum_slots[rebase_rel]
        if n_stall:
            rebase_cum[:n_stall] -= slots[stall_rel]
        # Stable sort of the sparse side only: at a shared record index
        # the stall (listed first) precedes the mispredict rebase.
        ro = np.argsort(rebase_rel, kind="stable")
        at = np.searchsorted(mem_rel, rebase_rel[ro], side="left")
        total = n_mem + at.size
        new_pos = at + np.arange(at.size)
        old_mask = np.ones(total, dtype=bool)
        old_mask[new_pos] = False
        ev_lat = np.empty(total, dtype=np.int64)
        ev_lat[new_pos] = rebase_lat[ro]
        ev_lat[old_mask] = latency
        ev_code = np.full(total, 3, dtype=np.int64)
        ev_code[old_mask] = refill
        ev_cum = np.empty(total, dtype=np.int64)
        ev_cum[new_pos] = rebase_cum[ro]
        ev_cum[old_mask] = cum_slots[mem_rel]
    else:
        ev_lat = latency
        ev_code = refill
        ev_cum = cum_slots[mem_rel]

    # ---- timing phase ----------------------------------------------------
    l2_refill_beats = max(machine.l1d.block_size // machine.mem_bus_width, 1)

    # Issue clock in closed form: cycle(c) = base + (off + c) // width,
    # folded into one scaled term ``clk = base * width + off`` so each
    # event computes it with a single add and floor divide; a rebase to
    # absolute cycle ``t`` at slot count ``c`` sets
    # ``clk = t * width - c``.
    clk = state.issue_cycle * width + state.slot
    lsq_done = state.lsq_done
    lsq_size = len(lsq_done)
    lsq_index = state.lsq_index
    ring = sorted(state.port_free)
    num_ports = len(ring)
    port_index = 0
    refill_bus_free = state.refill_bus_free
    mshr_done = state.mshr_done
    mshr_count = len(mshr_done)
    mshr_index = state.mshr_index
    last_done = state.last_done

    # Two specialisations of the same event loop: issue widths are
    # powers of two on every machine in Table 1, where ``// width``
    # becomes a shift (measurably cheaper in this, the hottest loop of
    # the vector path); the floor-divide body is the general fallback.
    shift = width.bit_length() - 1 if width & (width - 1) == 0 else -1
    ev_iter = zip(ev_code.tolist(), ev_lat.tolist(), ev_cum.tolist())
    if shift >= 0:
        for code, lat, cum in ev_iter:
            if code < 3:  # memory operation; code is the refill class
                issue = (clk + cum) >> shift
                pending = lsq_done[lsq_index]
                if pending > issue:
                    issue = pending
                    clk = (issue << shift) - cum
                free = ring[port_index]
                start = issue if issue > free else free
                ring[port_index] = start + 1
                port_index += 1
                if port_index == num_ports:
                    port_index = 0
                if code:
                    if refill_bus_free > start:
                        start = refill_bus_free
                    refill_bus_free = start + l2_refill_beats
                    if code == 2:
                        pending_miss = mshr_done[mshr_index]
                        if pending_miss > start:
                            start = pending_miss
                        done = start + lat
                        mshr_done[mshr_index] = done
                        mshr_index += 1
                        if mshr_index == mshr_count:
                            mshr_index = 0
                    else:
                        done = start + lat
                else:
                    done = start + lat
                lsq_done[lsq_index] = done
                lsq_index += 1
                if lsq_index == lsq_size:
                    lsq_index = 0
                if done > last_done:
                    last_done = done
            else:  # issue-clock rebase: front-end stall or mispredict
                clk = ((((clk + cum) >> shift) + lat) << shift) - cum
    else:
        for code, lat, cum in ev_iter:
            if code < 3:  # memory operation; code is the refill class
                issue = (clk + cum) // width
                pending = lsq_done[lsq_index]
                if pending > issue:
                    issue = pending
                    clk = issue * width - cum
                free = ring[port_index]
                start = issue if issue > free else free
                ring[port_index] = start + 1
                port_index += 1
                if port_index == num_ports:
                    port_index = 0
                if code:
                    if refill_bus_free > start:
                        start = refill_bus_free
                    refill_bus_free = start + l2_refill_beats
                    if code == 2:
                        pending_miss = mshr_done[mshr_index]
                        if pending_miss > start:
                            start = pending_miss
                        done = start + lat
                        mshr_done[mshr_index] = done
                        mshr_index += 1
                        if mshr_index == mshr_count:
                            mshr_index = 0
                    else:
                        done = start + lat
                else:
                    done = start + lat
                lsq_done[lsq_index] = done
                lsq_index += 1
                if lsq_index == lsq_size:
                    lsq_index = 0
                if done > last_done:
                    last_done = done
            else:  # issue-clock rebase: front-end stall or mispredict
                clk = ((clk + cum) // width + lat) * width - cum

    # ---- write the span's end state back --------------------------------
    end = int(cum_slots[-1])
    state.issue_cycle = (clk + end) // width
    state.slot = (clk + end) % width
    state.last_done = last_done
    state.lsq_index = lsq_index
    state.port_free[:] = ring
    state.refill_bus_free = refill_bus_free
    state.mshr_index = mshr_index
    state.instructions += end
    n_stores = int(np.count_nonzero(writes))
    state.stores += n_stores
    state.loads += n_mem - n_stores
    state.branches += br_rel.size
    if sim.model_ifetch:
        state.current_ifetch_line = int(lines[-1])

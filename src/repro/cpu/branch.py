"""Bimodal branch predictor (2048 two-bit counters, per Table 1)."""

from __future__ import annotations

__all__ = ["BimodalPredictor"]


class BimodalPredictor:
    """Classic bimodal predictor: a table of 2-bit saturating counters.

    Counters are indexed by ``(pc >> 2) % entries`` and initialised to
    weakly-taken (2), matching SimpleScalar's default.
    """

    def __init__(self, entries: int = 2048):
        if entries <= 0:
            raise ValueError("predictor needs at least one entry")
        self.entries = entries
        self._counters = [2] * entries
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; train on the outcome.

        Returns True when the prediction was correct.
        """
        index = (pc >> 2) % self.entries
        counter = self._counters[index]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        return correct

    def bulk_predict_and_update(self, pcs, takens):
        """Batched :meth:`predict_and_update` over whole columns.

        ``pcs``/``takens`` are numpy columns in trace order; returns the
        per-branch correctness flags as a bool array.  Counter evolution
        factorises over table indices (each 2-bit counter sees only its
        own sub-sequence), so the stream is stable-sorted by index and
        each counter's short history replayed in a tight loop against
        the live table — scalar prediction can resume afterwards.
        """
        import numpy as np

        n = pcs.size
        self.predictions += n
        if n == 0:
            return np.empty(0, dtype=bool)
        indices = (pcs >> 2) % self.entries
        order = np.argsort(indices, kind="stable")
        counters = self._counters
        correct_sorted = []
        append = correct_sorted.append
        counter = 0
        prev_index = -1
        for index, taken in zip(
            indices[order].tolist(), takens[order].tolist()
        ):
            if index != prev_index:
                if prev_index >= 0:
                    counters[prev_index] = counter
                counter = counters[index]
                prev_index = index
            append((counter >= 2) == taken)
            if taken:
                if counter < 3:
                    counter += 1
            elif counter > 0:
                counter -= 1
        counters[prev_index] = counter
        correct_arr = np.array(correct_sorted, dtype=bool)
        self.mispredictions += n - int(np.count_nonzero(correct_arr))
        correct = np.empty(n, dtype=bool)
        correct[order] = correct_arr
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

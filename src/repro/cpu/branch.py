"""Bimodal branch predictor (2048 two-bit counters, per Table 1)."""

from __future__ import annotations

__all__ = ["BimodalPredictor"]


class BimodalPredictor:
    """Classic bimodal predictor: a table of 2-bit saturating counters.

    Counters are indexed by ``(pc >> 2) % entries`` and initialised to
    weakly-taken (2), matching SimpleScalar's default.
    """

    def __init__(self, entries: int = 2048):
        if entries <= 0:
            raise ValueError("predictor needs at least one entry")
        self.entries = entries
        self._counters = [2] * entries
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; train on the outcome.

        Returns True when the prediction was correct.
        """
        index = (pc >> 2) % self.entries
        counter = self._counters[index]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

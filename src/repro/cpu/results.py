"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.stats import HierarchySnapshot

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of timing one trace on one machine configuration."""

    trace_name: str
    machine_name: str
    cycles: int
    instructions: int
    loads: int
    stores: int
    branches: int
    branch_mispredictions: int
    hw_toggles: int
    memory: HierarchySnapshot

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1d_miss_rate(self) -> float:
        return self.memory.l1d.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.memory.l2.miss_rate

    def improvement_over(self, baseline: "SimulationResult") -> float:
        """Percentage cycle improvement relative to ``baseline``.

        This is the paper's reported metric in Figures 4-9 and Table 3:
        positive numbers mean fewer cycles than the baseline.
        """
        if baseline.cycles == 0:
            return 0.0
        return 100.0 * (baseline.cycles - self.cycles) / baseline.cycles

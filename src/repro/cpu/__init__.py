"""Trace-driven processor timing model.

A simplified out-of-order core standing in for SimpleScalar's
sim-outorder (paper Table 1): 4-wide issue, a bounded load/store window
(LSQ) that lets independent misses overlap, two memory ports, a bimodal
branch predictor, and instruction-fetch stalls through the L1I path.
The substitution is documented in DESIGN.md — the paper's metric
(execution cycles dominated by data-cache behaviour) is preserved while
the model stays O(trace length).
"""

from repro.cpu.branch import BimodalPredictor
from repro.cpu.pipeline import CPUSimulator
from repro.cpu.results import SimulationResult

__all__ = ["BimodalPredictor", "CPUSimulator", "SimulationResult"]

"""Virtual-address assignment for program arrays.

Array bases are aligned to the L1 *way span* (sets × line size, 8 KB
for the paper's 32 KB 4-way L1) by default.  Same-index elements of
different arrays then map to the same cache set — the cross-array
conflict-miss regime the paper's benchmarks live in ("conflict misses
constitute ... between 53% and 72% of total cache misses", Section
4.2).  Pass a different ``alignment`` to study friendlier mappings.
"""

from __future__ import annotations

from repro.compiler.ir.program import Program

__all__ = ["assign_addresses", "DEFAULT_ALIGNMENT", "SCALAR_BASE"]

#: L1 way span of the base configuration (32 KB / 4 ways).
DEFAULT_ALIGNMENT = 8192

#: Where the scalar block lives (well below any array).
SCALAR_BASE = 0x8000

#: First array base.
ARRAY_BASE = 0x100000


def assign_addresses(
    program: Program,
    alignment: int = DEFAULT_ALIGNMENT,
    base: int = ARRAY_BASE,
) -> dict[str, int]:
    """Assign each array a base address in declaration order.

    Mutates the declarations in place and returns name → base.  Stable:
    re-running on the same program yields the same map, and clones of a
    program get identical maps, so base/optimized/selective versions of
    one benchmark are address-comparable.
    """
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError("alignment must be a positive power of two")
    cursor = base
    assigned: dict[str, int] = {}
    for name, decl in program.arrays.items():
        cursor = -(-cursor // alignment) * alignment  # round up
        # base_skew is the compiler's inter-array padding: dummy bytes
        # between the aligned slot and the array proper.
        decl.base = cursor + decl.base_skew
        assigned[name] = decl.base
        cursor = decl.base + decl.footprint_bytes
    return assigned

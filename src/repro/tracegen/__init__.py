"""Trace generation: executing IR programs into instruction streams."""

from repro.tracegen.interpreter import TraceGenerator
from repro.tracegen.memory_map import assign_addresses

__all__ = ["TraceGenerator", "assign_addresses"]

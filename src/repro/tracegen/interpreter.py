"""The IR interpreter: runs a program and records its instruction trace.

This stands in for the paper's compile-and-simulate flow (Section 4.4):
the (possibly transformed, possibly marker-carrying) program is
"executed" — loops iterate, references resolve to byte addresses under
the current layouts, markers become HW_ON/HW_OFF records — and the
resulting :class:`repro.isa.Trace` is what the CPU model times.

Program counters are synthetic but stable: every static statement and
loop branch owns fixed pc slots, so the instruction cache and branch
predictor see realistic repetition.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.compiler.ir.loops import Loop, Node
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import (
    AffineRef,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    Reference,
    RegisterRef,
    ScalarRef,
)
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.isa.packed import PackedTrace
from repro.isa.trace import Trace, TraceBuilder
from repro.tracegen.memory_map import SCALAR_BASE, assign_addresses

__all__ = ["TraceGenerator"]

_PC_BASE = 0x1000
_PC_STRIDE = 4


class TraceGenerator:
    """Executes one program into a trace.

    The generator assigns array addresses on construction (unless the
    caller has already done so and passes ``assign_bases=False``).
    Pointer-chase chains start at node 0 and persist across statements,
    so repeated traversals continue around the cycle like a real list
    walk.
    """

    def __init__(
        self,
        program: Program,
        trace_name: Optional[str] = None,
        assign_bases: bool = True,
        alignment: Optional[int] = None,
    ):
        self.program = program
        self.trace_name = trace_name or program.name
        if assign_bases:
            if alignment is None:
                assign_addresses(program)
            else:
                assign_addresses(program, alignment=alignment)
        self._scalar_addrs: dict[str, int] = {}
        self._pcs: dict[int, int] = {}
        self._assign_pcs()

    # ------------------------------------------------------------------

    def generate(self) -> Trace:
        """Run the program once; return the object-form trace."""
        return self._interpret().build()

    def generate_packed(self) -> PackedTrace:
        """Run the program once; return the packed columnar trace.

        Identical record stream to :meth:`generate`, but no
        per-instruction objects are ever materialized — this is the
        form the experiment drivers feed to the simulator hot loop.
        """
        return self._interpret().build_packed()

    def _interpret(self) -> TraceBuilder:
        builder = TraceBuilder(self.trace_name)
        chains: dict[str, int] = {}
        self._exec_nodes(self.program.body, {}, builder, chains)
        return builder

    # ------------------------------------------------------------------
    # static pc assignment

    def _assign_pcs(self) -> None:
        cursor = _PC_BASE
        scalar_cursor = SCALAR_BASE

        def visit(nodes) -> None:
            nonlocal cursor
            for node in nodes:
                if isinstance(node, Loop):
                    # One pc for the loop's increment+branch pair.
                    self._pcs[id(node)] = cursor
                    cursor += 2 * _PC_STRIDE
                    visit(node.body)
                elif isinstance(node, Statement):
                    self._pcs[id(node)] = cursor
                    slots = 2 * len(node.references) + 2
                    cursor += slots * _PC_STRIDE
                    self._register_scalars(node)
                else:  # MarkerStmt
                    self._pcs[id(node)] = cursor
                    cursor += _PC_STRIDE

        def register_scalar(name: str) -> None:
            nonlocal scalar_cursor
            if name not in self._scalar_addrs:
                self._scalar_addrs[name] = scalar_cursor
                scalar_cursor += 8

        self._register_scalar = register_scalar  # used by helper below
        visit(self.program.body)

    def _register_scalars(self, statement: Statement) -> None:
        for ref in statement.references:
            if isinstance(ref, ScalarRef):
                self._register_scalar(ref.name)
            elif isinstance(ref, RegisterRef) and isinstance(
                ref.original, ScalarRef
            ):
                self._register_scalar(ref.original.name)

    # ------------------------------------------------------------------
    # execution

    def _exec_nodes(
        self,
        nodes: list[Node],
        bindings: dict[str, int],
        builder: TraceBuilder,
        chains: dict[str, int],
    ) -> None:
        for node in nodes:
            if isinstance(node, Loop):
                self._exec_loop(node, bindings, builder, chains)
            elif isinstance(node, Statement):
                self._exec_statement(node, bindings, builder, chains)
            elif isinstance(node, MarkerStmt):
                builder.set_pc(self._pcs[id(node)])
                if node.activates:
                    builder.hw_on()
                else:
                    builder.hw_off()
            else:  # pragma: no cover - IR is closed over these types
                raise TypeError(f"cannot execute {node!r}")

    def _exec_loop(
        self,
        loop: Loop,
        bindings: dict[str, int],
        builder: TraceBuilder,
        chains: dict[str, int],
    ) -> None:
        lower = loop.lower.eval(bindings)
        upper = loop.upper.eval(bindings)
        step = loop.step
        branch_pc = self._pcs[id(loop)]
        body = loop.body
        variable = loop.var
        for value in range(lower, upper, step):
            bindings[variable] = value
            self._exec_nodes(body, bindings, builder, chains)
            builder.set_pc(branch_pc)
            builder.alu(1)  # induction increment + compare
            builder.branch(value + step < upper)

    def _exec_statement(
        self,
        statement: Statement,
        bindings: Mapping[str, int],
        builder: TraceBuilder,
        chains: dict[str, int],
    ) -> None:
        builder.set_pc(self._pcs[id(statement)])
        for ref in statement.reads:
            self._touch(ref, bindings, builder, chains, is_write=False)
        if statement.work:
            builder.alu(statement.work)
        for ref in statement.writes:
            self._touch(ref, bindings, builder, chains, is_write=True)

    def _touch(
        self,
        ref: Reference,
        bindings: Mapping[str, int],
        builder: TraceBuilder,
        chains: dict[str, int],
        is_write: bool,
    ) -> None:
        emit = builder.store if is_write else builder.load
        if isinstance(ref, AffineRef):
            emit(ref.address(bindings))
        elif isinstance(ref, ScalarRef):
            emit(self._scalar_addrs[ref.name])
        elif isinstance(ref, RegisterRef):
            pass  # promoted to a register: no memory traffic
        elif isinstance(ref, IndexedRef):
            index_addr, data_addr = ref.addresses(bindings)
            builder.load(index_addr)  # the subscript load is always a read
            emit(data_addr)
        elif isinstance(ref, PointerChaseRef):
            node = chains.get(ref.chain, 0)
            addr, nxt = ref.address_and_next(node)
            emit(addr)
            chains[ref.chain] = nxt
        elif isinstance(ref, NonAffineRef):
            emit(ref.address(bindings))
        else:  # pragma: no cover - reference taxonomy is closed
            raise TypeError(f"cannot execute reference {ref!r}")

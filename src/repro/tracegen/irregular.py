"""Synthetic irregular-access data for workload models.

The paper's irregular benchmarks (Perl, Li, Compress, and the TPC
probes) are modelled by loops whose targets come from run-time data:
pointer-successor arrays, skewed index streams, and hash-probe
sequences.  These helpers build that data deterministically from a
seed so traces are reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "permutation_chain",
    "zipf_indices",
    "uniform_indices",
    "clustered_indices",
    "hash_probe_indices",
]


def permutation_chain(n: int, seed: int) -> np.ndarray:
    """Successor array forming one n-cycle — a scattered linked list.

    Walking ``next = chain[next]`` visits every node exactly once per
    lap in a memory-random order, the worst-case pointer-chasing
    pattern of a fragmented cons-cell heap (the paper's *Li*).
    """
    if n <= 0:
        raise ValueError("chain needs at least one node")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    chain = np.empty(n, dtype=np.int64)
    chain[order[:-1]] = order[1:]
    chain[order[-1]] = order[0]
    return chain


def zipf_indices(count: int, universe: int, skew: float, seed: int) -> np.ndarray:
    """``count`` indices in [0, universe) with a Zipf-like hot/cold skew.

    High skew concentrates accesses on few hot entries — the regime in
    which the MAT-driven bypass pays off (hot macro-blocks stay cached,
    cold ones are bypassed).
    """
    if universe <= 0:
        raise ValueError("universe must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    hot_order = rng.permutation(universe)  # hot entries scattered in memory
    drawn = rng.choice(universe, size=count, p=weights)
    return hot_order[drawn].astype(np.int64)


def uniform_indices(count: int, universe: int, seed: int) -> np.ndarray:
    """Uniformly random indices — no exploitable frequency skew."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=count, dtype=np.int64)


def clustered_indices(
    count: int,
    universe: int,
    cluster: int,
    jumps: float,
    seed: int,
) -> np.ndarray:
    """A random walk that stays in a ``cluster``-sized neighbourhood and
    teleports with probability ``jumps`` — short-term locality with
    phase changes (the paper's *Compress* dictionary behaviour)."""
    if not 0.0 <= jumps <= 1.0:
        raise ValueError("jumps must be a probability")
    rng = np.random.default_rng(seed)
    indices = np.empty(count, dtype=np.int64)
    center = int(rng.integers(0, universe))
    for i in range(count):
        if rng.random() < jumps:
            center = int(rng.integers(0, universe))
        offset = int(rng.integers(-cluster, cluster + 1))
        indices[i] = (center + offset) % universe
    return indices


def hash_probe_indices(
    keys: int, table_size: int, seed: int, probes_per_key: int = 2
) -> np.ndarray:
    """Open-addressing probe sequences: h, h+1, ... per key.

    Deterministic multiplicative hashing of a random key stream; the
    result concatenates each key's probe positions.
    """
    rng = np.random.default_rng(seed)
    key_stream = rng.integers(0, 1 << 30, size=keys, dtype=np.int64)
    hashed = (key_stream * 2654435761) % table_size
    probes = np.empty(keys * probes_per_key, dtype=np.int64)
    for p in range(probes_per_key):
        probes[p::probes_per_key] = (hashed + p) % table_size
    return probes

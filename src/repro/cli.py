"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation artifacts:

* ``list``       — the benchmark suite with categories;
* ``run``        — the four versions of one benchmark on one config;
* ``regions``    — region detection + marker placement for a benchmark;
* ``table2``     — benchmark characteristics (Table 2);
* ``table3``     — average improvements across configurations (Table 3);
* ``figure N``   — one of Figures 4-9;
* ``locality``   — reuse-distance / miss-ratio-curve profile of each
  benchmark plus model-driven vs compiler ON/OFF gating (``--json``
  for machine-readable rows, ``--miss-floor`` to tune the policy);
* ``predict``    — the analytic locality model: predicted MRC,
  per-region gating, and tile choices computed straight from the IR
  in milliseconds — no trace, no simulation;
* ``lint``       — static IR verification (structure, markers, bounds,
  transform legality) of every benchmark's base and optimized+marked
  variants;
* ``profile``    — one version of one benchmark with telemetry
  attached: per-region statistics plus an optional Chrome trace
  (``--trace-out``, opens in Perfetto / chrome://tracing);
* ``runs``       — list and validate the cells of a ``--store`` run
  store (checkpointed sweep results);
* ``trace``      — dump a benchmark's trace to a file (binary format);
* ``serve``      — run the sweep service: an asyncio HTTP server that
  answers simulation/sweep/locality/profile jobs from the ``--store``
  run store (warm cells, microseconds) or the fault-tolerant scheduler
  (cold cells), with single-flight coalescing of duplicate requests.

``--trace-out FILE`` also works on the sweep commands (``table2``,
``table3``, ``figure``), where it exports a wall-clock timeline of
prepare/simulate/retry/restore spans, and on ``run --telemetry``,
where it exports simulated-cycle telemetry for all versions.

Long sweeps (``table2``/``table3``/``figure``) are fault-tolerant:
``--store DIR`` checkpoints every completed cell (atomic write +
checksum) and ``--resume`` skips verified-complete cells on a re-run;
``--timeout``/``--retries`` bound each cell's execution; a cell that
fails permanently is reported (partial results, exit status 1) instead
of aborting the sweep.  ``--faults``/``$REPRO_FAULTS`` inject
deterministic failures for testing the recovery paths.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.core.faults import FaultPlan
from repro.core.parallel import (
    DEFAULT_RETRIES,
    resolve_jobs,
    run_benchmark_parallel,
)
from repro.core.runner import SuiteResult, run_suite
from repro.core.runstore import RunStore
from repro.core.versions import prepare_codes
from repro.evaluation.figures import FIGURES, figure_series
from repro.evaluation.locality import locality_rows
from repro.evaluation.profile import profile_benchmark
from repro.evaluation.report import (
    render_failures,
    render_figure,
    render_locality,
    render_profile,
    render_runs,
    render_table2,
    render_table3,
)
from repro.evaluation.table2 import table2_rows
from repro.evaluation.table3 import sweep_to_row
from repro.hwopt.policy import DEFAULT_MISS_FLOOR
from repro.isa.encoding import encode_trace
from repro.params import SENSITIVITY_CONFIGS, base_config
from repro.telemetry import (
    SweepTimeline,
    Telemetry,
    sweep_trace_events,
    telemetry_trace_events,
    write_trace,
)
from repro.workloads.base import MEDIUM, SMALL, TINY, Scale
from repro.workloads.registry import all_specs, get_spec

__all__ = ["main"]

_SCALES = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Integrated Approach for Improving "
            "Cache Behavior' (DATE 2003)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="workload problem size (default: small)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for run/table2/table3/figure (default: "
            "$REPRO_JOBS or the CPU count; results are identical for "
            "any job count)"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "run-store directory: checkpoint each completed sweep cell "
            "(atomic write + checksum) for crash-safe restarts"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip cells already completed and verified in --store "
            "(without this flag the store is written but existing "
            "entries are recomputed)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any sweep cell running longer than this",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=DEFAULT_RETRIES,
        metavar="N",
        help=(
            "retry budget per sweep cell (crash/timeout/error); a cell "
            f"failing all attempts is reported, not fatal "
            f"(default: {DEFAULT_RETRIES})"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "inject deterministic faults into worker cells "
            "(kind:benchmark:config[:times][;...], kinds: raise, hang, "
            "exit, corrupt); overrides $REPRO_FAULTS"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help=(
            "write a Chrome trace-event JSON file (Perfetto / "
            "chrome://tracing): simulated-cycle telemetry for "
            "profile and run --telemetry, wall-clock sweep timeline "
            "for table2/table3/figure"
        ),
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=1000,
        metavar="CYCLES",
        help=(
            "telemetry sampling period in simulated cycles for "
            "profile / run --telemetry (default: 1000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def accept_trace_args(cmd: argparse.ArgumentParser) -> None:
        """Let --trace-out/--interval appear after the subcommand too.

        ``SUPPRESS`` keeps the parent parser's value when the option is
        absent, so both positions work and the subcommand wins.
        """
        cmd.add_argument(
            "--trace-out",
            metavar="FILE",
            default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )
        cmd.add_argument(
            "--interval",
            type=int,
            metavar="CYCLES",
            default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )

    def accept_miss_floor(cmd: argparse.ArgumentParser) -> None:
        """The gating policy's named miss-ratio floor knob."""
        cmd.add_argument(
            "--miss-floor",
            type=float,
            default=DEFAULT_MISS_FLOOR,
            metavar="RATIO",
            help=(
                "minimum miss ratio for the adaptive ON/OFF threshold "
                f"(default: {DEFAULT_MISS_FLOOR}) — regions missing "
                "less than this never get assists, however good the "
                "program average looks"
            ),
        )

    sub.add_parser("list", help="list the benchmark suite")

    run_cmd = sub.add_parser(
        "run", help="run the four versions of one benchmark"
    )
    run_cmd.add_argument("benchmark")
    run_cmd.add_argument(
        "--config",
        choices=list(SENSITIVITY_CONFIGS),
        default="Base Confg.",
    )
    run_cmd.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "attach a telemetry hub to every version (runs "
            "sequentially); combine with --trace-out for a Chrome trace"
        ),
    )
    accept_trace_args(run_cmd)

    regions_cmd = sub.add_parser(
        "regions", help="show region detection + markers for a benchmark"
    )
    regions_cmd.add_argument("benchmark")

    table2_cmd = sub.add_parser("table2", help="reproduce Table 2")
    accept_trace_args(table2_cmd)

    table3_cmd = sub.add_parser("table3", help="reproduce Table 3")
    table3_cmd.add_argument(
        "--config",
        action="append",
        choices=list(SENSITIVITY_CONFIGS),
        help="restrict to specific configurations (default: all six)",
    )
    table3_cmd.add_argument(
        "--benchmark",
        action="append",
        metavar="NAME",
        help="restrict to specific benchmarks (default: all 13)",
    )

    accept_trace_args(table3_cmd)

    figure_cmd = sub.add_parser("figure", help="reproduce one figure")
    figure_cmd.add_argument("number", type=int, choices=sorted(FIGURES))
    accept_trace_args(figure_cmd)

    locality_cmd = sub.add_parser(
        "locality",
        help=(
            "reuse-distance profile and miss-ratio curves per benchmark, "
            "plus model-driven ON/OFF gating vs the compiler's markers"
        ),
    )
    locality_cmd.add_argument(
        "benchmarks",
        nargs="*",
        metavar="benchmark",
        help="benchmarks to profile (default: the whole suite)",
    )
    locality_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the rows as a JSON array instead of the table",
    )
    accept_miss_floor(locality_cmd)

    predict_cmd = sub.add_parser(
        "predict",
        help=(
            "closed-form locality prediction straight from the IR: "
            "predicted MRC, per-region gating, and tile choices — no "
            "trace, no simulation (JSON output)"
        ),
    )
    predict_cmd.add_argument(
        "benchmarks",
        nargs="*",
        metavar="benchmark",
        help="benchmarks to predict (default: the whole suite)",
    )
    predict_cmd.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "explicit ON/OFF miss-ratio threshold (default: the "
            "program's predicted ratio floored at --miss-floor)"
        ),
    )
    accept_miss_floor(predict_cmd)

    lint_cmd = sub.add_parser(
        "lint",
        help=(
            "statically verify structure, markers, bounds, and transform "
            "legality for each benchmark's base and optimized variants"
        ),
    )
    lint_cmd.add_argument(
        "benchmarks",
        nargs="*",
        metavar="benchmark",
        help="benchmarks to lint (default: the whole suite)",
    )
    lint_cmd.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (e.g. removable markers) as failures",
    )
    lint_cmd.add_argument(
        "--deps",
        action="store_true",
        help=(
            "also print per-nest dependence-relation summaries: counts, "
            "flow/anti/output mix, '*' directions, unanalyzable "
            "references, and the transforms each nest received"
        ),
    )

    profile_cmd = sub.add_parser(
        "profile",
        help=(
            "simulate one version of one benchmark with telemetry: "
            "per-region statistics + optional Chrome trace (--trace-out)"
        ),
    )
    profile_cmd.add_argument("benchmark")
    profile_cmd.add_argument(
        "--config",
        choices=list(SENSITIVITY_CONFIGS),
        default="Base Confg.",
    )
    profile_cmd.add_argument(
        "--version",
        choices=["base", "pure_sw", "pure_hw", "combined", "selective"],
        default="selective",
        help="which version to profile (default: selective)",
    )
    profile_cmd.add_argument(
        "--mechanism",
        choices=["bypass", "victim", "prefetch"],
        default="bypass",
        help="hardware assist for hw-backed versions (default: bypass)",
    )
    accept_trace_args(profile_cmd)

    runs_cmd = sub.add_parser(
        "runs",
        help=(
            "list the cells of the --store run store, verifying each "
            "entry's checksum"
        ),
    )
    runs_cmd.add_argument(
        "--purge-bad",
        action="store_true",
        help="delete entries that fail verification",
    )
    runs_cmd.add_argument(
        "--scrub",
        action="store_true",
        help=(
            "re-verify every entry's embedded sha256 up front and "
            "print a scrub report (exit 1 if anything is corrupt)"
        ),
    )
    runs_cmd.add_argument(
        "--quarantine",
        action="store_true",
        help=(
            "with --scrub: move corrupt entries into the store's "
            "quarantine/ directory instead of leaving them in place"
        ),
    )

    trace_cmd = sub.add_parser(
        "trace", help="dump a benchmark's base trace to a file"
    )
    trace_cmd.add_argument("benchmark")
    trace_cmd.add_argument("output")
    trace_cmd.add_argument(
        "--version",
        choices=["base", "optimized", "selective"],
        default="base",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help=(
            "run the sweep service: an HTTP server that answers "
            "simulate/sweep/table2/locality/profile jobs from the "
            "--store run store (warm cells) or the fault-tolerant "
            "scheduler (cold cells)"
        ),
    )
    serve_cmd.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8023,
        help="TCP port; 0 picks an ephemeral port (default: 8023)",
    )
    serve_cmd.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help=(
            "admission high-water mark: shed (429) beyond this many "
            "non-terminal jobs (default: 64)"
        ),
    )
    serve_cmd.add_argument(
        "--client-cap",
        type=int,
        default=16,
        help="max in-flight jobs per client identity (default: 16)",
    )
    serve_cmd.add_argument(
        "--drain-grace",
        type=float,
        default=20.0,
        help=(
            "seconds a SIGTERM drain waits for in-flight jobs before "
            "cancelling them (default: 20)"
        ),
    )
    serve_cmd.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help=(
            "consecutive worker failures that trip warm-only mode "
            "(default: 5)"
        ),
    )
    serve_cmd.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help=(
            "seconds an open circuit breaker waits before its "
            "half-open probe (default: 30)"
        ),
    )
    return parser


def _cmd_list() -> int:
    print(f"{'name':<10} {'category':<10} description")
    for spec in all_specs():
        print(f"{spec.name:<10} {spec.category:<10} {spec.description}")
    return 0


def _run_with_telemetry(codes, machine, interval: int):
    """Sequential run of all versions, one telemetry hub per version."""
    from repro.core.experiment import BenchmarkRun, simulate_trace
    from repro.core.versions import MECHANISMS

    run = BenchmarkRun(codes.name, codes.category, machine.name)
    hubs: dict[str, Telemetry] = {}
    plan = [
        ("base", codes.base_trace, None, True),
        ("pure_sw", codes.optimized_trace, None, True),
    ]
    for mechanism in MECHANISMS:
        plan += [
            (f"pure_hw/{mechanism}", codes.base_trace, mechanism, True),
            (f"combined/{mechanism}", codes.optimized_trace, mechanism, True),
            (f"selective/{mechanism}", codes.selective_trace, mechanism, False),
        ]
    for key, trace, mechanism, initially_on in plan:
        hub = Telemetry(interval=interval, name=f"{codes.name}/{key}")
        run.results[key] = simulate_trace(
            trace, machine, mechanism, initially_on, telemetry=hub
        )
        hubs[key] = hub
    return run, hubs


def _cmd_run(
    name: str,
    config_name: str,
    scale: Scale,
    jobs: Optional[int],
    telemetry: bool,
    interval: int,
    trace_out: Optional[str],
) -> int:
    machine = SENSITIVITY_CONFIGS[config_name]().scaled(
        scale.machine_divisor
    )
    reference = base_config().scaled(scale.machine_divisor)
    started = time.time()
    codes = prepare_codes(get_spec(name), scale, reference)
    if telemetry or trace_out:
        run, hubs = _run_with_telemetry(codes, machine, interval)
        if trace_out:
            events = []
            for pid, (key, hub) in enumerate(hubs.items(), start=1):
                events += telemetry_trace_events(
                    hub, pid=pid, label=f"{name}/{key}"
                )
            write_trace(
                trace_out,
                events,
                meta={"benchmark": name, "config": config_name},
            )
            print(
                f"wrote Chrome trace ({len(events)} events) to "
                f"{trace_out}",
                file=sys.stderr,
            )
    else:
        run = run_benchmark_parallel(codes, machine, jobs=jobs)
    print(
        f"{name} on {config_name} (scale {scale.name}, "
        f"{time.time() - started:.1f}s)"
    )
    print(f"base: {run.baseline.cycles:,} cycles, "
          f"L1D miss rate {run.baseline.l1d_miss_rate:.3f}\n")
    print(f"{'version':<22}{'cycles':>12}{'improvement':>13}")
    for key in run.version_keys():
        if key == "base":
            continue
        result = run.results[key]
        print(f"{key:<22}{result.cycles:>12,}"
              f"{run.improvement(key):>12.2f}%")
    return 0


def _cmd_regions(name: str, scale: Scale) -> int:
    from repro.compiler.regions.detect import detect_regions
    from repro.compiler.regions.markers import insert_markers

    program = get_spec(name).instantiate(scale)
    detection = detect_regions(program)
    report = insert_markers(program, rerun_detection=False)
    print(detection.summary())
    print("regions in program order:", detection.preferences())
    print(
        f"markers: {report.activates} ON, {report.deactivates} OFF "
        f"({report.eliminated} redundant eliminated of "
        f"{report.naive_markers} naive)"
    )
    return 0


def _sweep_timeline(trace_out: Optional[str]) -> Optional[SweepTimeline]:
    return SweepTimeline() if trace_out else None


def _write_sweep_trace(
    timeline: Optional[SweepTimeline], trace_out: Optional[str]
) -> None:
    if timeline is None or trace_out is None:
        return
    events = sweep_trace_events(timeline)
    write_trace(trace_out, events, meta={"kind": "sweep"})
    print(
        f"wrote sweep timeline ({len(timeline)} spans, "
        f"{len(events)} events) to {trace_out}",
        file=sys.stderr,
    )


def _cmd_table2(
    scale: Scale,
    jobs: Optional[int],
    resilience: dict,
    trace_out: Optional[str],
) -> int:
    timeline = _sweep_timeline(trace_out)
    rows = table2_rows(
        scale,
        jobs=jobs,
        store=resilience["store"],
        resume=resilience["resume"],
        timeline=timeline,
    )
    print(render_table2(rows))
    _write_sweep_trace(timeline, trace_out)
    return 0


def _report_failures(suite: SuiteResult) -> int:
    """Print the partial-results warning; exit status 1 if any cell died."""
    if suite.failures:
        print(render_failures(suite.failures), file=sys.stderr)
        return 1
    return 0


def _cmd_table3(
    config_names: Optional[list[str]],
    benchmarks: Optional[list[str]],
    scale: Scale,
    jobs: Optional[int],
    resilience: dict,
    trace_out: Optional[str],
) -> int:
    names = config_names or list(SENSITIVITY_CONFIGS)
    configs = {name: SENSITIVITY_CONFIGS[name] for name in names}
    timeline = _sweep_timeline(trace_out)
    suite = run_suite(
        scale,
        benchmarks=benchmarks,
        configs=configs,
        progress=_progress,
        jobs=jobs,
        timeline=timeline,
        **resilience,
    )
    rows = [
        sweep_to_row(name, suite.sweeps[name]) for name in suite.sweeps
    ]
    print(render_table3(rows))
    _write_sweep_trace(timeline, trace_out)
    return _report_failures(suite)


def _cmd_figure(
    number: int,
    scale: Scale,
    jobs: Optional[int],
    resilience: dict,
    trace_out: Optional[str],
) -> int:
    config_name = FIGURES[number]
    timeline = _sweep_timeline(trace_out)
    suite = run_suite(
        scale,
        configs={config_name: SENSITIVITY_CONFIGS[config_name]},
        progress=_progress,
        jobs=jobs,
        timeline=timeline,
        **resilience,
    )
    print(render_figure(figure_series(number, suite.sweep(config_name))))
    _write_sweep_trace(timeline, trace_out)
    return _report_failures(suite)


def _cmd_profile(
    name: str,
    config_name: str,
    version: str,
    mechanism: str,
    scale: Scale,
    interval: int,
    trace_out: Optional[str],
) -> int:
    machine = SENSITIVITY_CONFIGS[config_name]().scaled(
        scale.machine_divisor
    )
    profile = profile_benchmark(
        name,
        scale,
        machine,
        config_name,
        version=version,
        mechanism=mechanism,
        interval=interval,
    )
    print(render_profile(profile))
    if trace_out:
        events = telemetry_trace_events(
            profile.telemetry, label=f"{name}/{profile.version}"
        )
        write_trace(
            trace_out,
            events,
            meta={
                "benchmark": name,
                "version": profile.version,
                "config": config_name,
                "interval": interval,
            },
        )
        print(
            f"wrote Chrome trace ({len(events)} events) to {trace_out}; "
            "open in Perfetto (ui.perfetto.dev) or chrome://tracing"
        )
    return 0 if profile.consistent() else 1


def _cmd_runs(
    store: Optional[RunStore],
    purge_bad: bool,
    scrub: bool = False,
    quarantine: bool = False,
) -> int:
    if store is None:
        print("error: 'runs' requires --store DIR", file=sys.stderr)
        return 2
    if quarantine and not scrub:
        print("error: --quarantine requires --scrub", file=sys.stderr)
        return 2
    if purge_bad:
        for key in store.purge_corrupt():
            print(f"purged {key}", file=sys.stderr)
    if scrub:
        report = store.scrub(quarantine=quarantine)
        for key in report.corrupt:
            action = (
                "quarantined" if key in report.quarantined else "corrupt"
            )
            print(f"{action} {key}: {report.errors[key]}", file=sys.stderr)
        print(
            f"scrub: {report.checked} checked, {report.ok} ok, "
            f"{len(report.corrupt)} corrupt, "
            f"{len(report.quarantined)} quarantined"
        )
        return 0 if report.clean else 1
    entries = store.entries()
    print(render_runs(entries))
    return 0 if all(entry.ok for entry in entries) else 1


def _cmd_locality(
    benchmarks: list[str],
    scale: Scale,
    jobs: Optional[int],
    as_json: bool,
    miss_floor: float,
) -> int:
    import dataclasses
    import json

    names = benchmarks or None
    progress = None if as_json else _progress
    try:
        rows = locality_rows(
            scale, names, jobs=jobs, progress=progress,
            miss_floor=miss_floor,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if as_json:
        print(json.dumps(
            [dataclasses.asdict(row) for row in rows], indent=2
        ))
    else:
        print(render_locality(rows))
    return 0


def _cmd_predict(
    benchmarks: list[str],
    scale: Scale,
    threshold: Optional[float],
    miss_floor: float,
) -> int:
    import json

    from repro.analytic.predict import predict_benchmark

    names = benchmarks or [spec.name for spec in all_specs()]
    payloads = []
    for name in names:
        try:
            payloads.append(
                predict_benchmark(
                    name, scale,
                    threshold=threshold, miss_floor=miss_floor,
                )
            )
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
    print(json.dumps(
        payloads[0] if len(payloads) == 1 and benchmarks else payloads,
        indent=2,
    ))
    return 0


def _cmd_lint(
    benchmarks: list[str], scale: Scale, strict: bool, deps: bool = False
) -> int:
    from repro.compiler.verify.lint import lint_registry, render_lint

    result = lint_registry(scale, benchmarks or None)
    print(render_lint(result, strict))
    if deps:
        from repro.compiler.verify.deps import deps_summaries, render_deps

        print()
        print(render_deps(deps_summaries(scale, benchmarks or None)))
    return 0 if result.ok(strict) else 1


def _cmd_trace(name: str, output: str, version: str, scale: Scale) -> int:
    reference = base_config().scaled(scale.machine_divisor)
    codes = prepare_codes(get_spec(name), scale, reference)
    trace = {
        "base": codes.base_trace,
        "optimized": codes.optimized_trace,
        "selective": codes.selective_trace,
    }[version]
    data = encode_trace(trace)
    with open(output, "wb") as handle:
        handle.write(data)
    print(
        f"wrote {len(data):,} bytes ({len(trace):,} records, "
        f"{trace.memory_reference_count:,} memory refs) to {output}"
    )
    return 0


def _cmd_serve(
    host: str,
    port: int,
    store: Optional[RunStore],
    jobs: int,
    scale: Scale,
    resilience: dict,
    admission: dict,
) -> int:
    from repro.service.server import ServiceConfig, serve_forever

    if store is None:
        print("error: 'serve' requires --store DIR", file=sys.stderr)
        return 2
    serve_forever(
        ServiceConfig(
            host=host,
            port=port,
            store=store,
            jobs=jobs,
            scale=scale,
            timeout=resilience["timeout"],
            retries=resilience["retries"],
            faults=resilience["faults"],
            max_pending=admission["max_pending"],
            client_cap=admission["client_cap"],
            drain_grace=admission["drain_grace"],
            breaker_threshold=admission["breaker_threshold"],
            breaker_cooldown=admission["breaker_cooldown"],
        )
    )
    return 0


def _progress(message: str) -> None:
    print(f"  [{message}]", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    scale = _SCALES[args.scale]
    try:
        jobs = resolve_jobs(args.jobs)
        faults = FaultPlan.parse(args.faults) if args.faults else None
        if args.retries < 0:
            raise ValueError(f"--retries must be >= 0, got {args.retries}")
        if args.timeout is not None and args.timeout <= 0:
            raise ValueError(f"--timeout must be positive, got {args.timeout}")
        if args.resume and args.store is None:
            raise ValueError("--resume requires --store DIR")
        if args.interval < 0:
            raise ValueError(
                f"--interval must be >= 0, got {args.interval}"
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = RunStore(args.store) if args.store else None
    resilience = {
        "store": store,
        "resume": args.resume,
        "timeout": args.timeout,
        "retries": args.retries,
        "faults": faults,
    }
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.benchmark,
            args.config,
            scale,
            jobs,
            args.telemetry,
            args.interval,
            args.trace_out,
        )
    if args.command == "regions":
        return _cmd_regions(args.benchmark, scale)
    if args.command == "table2":
        return _cmd_table2(scale, jobs, resilience, args.trace_out)
    if args.command == "table3":
        return _cmd_table3(
            args.config, args.benchmark, scale, jobs, resilience,
            args.trace_out,
        )
    if args.command == "figure":
        return _cmd_figure(args.number, scale, jobs, resilience, args.trace_out)
    if args.command == "profile":
        return _cmd_profile(
            args.benchmark,
            args.config,
            args.version,
            args.mechanism,
            scale,
            args.interval,
            args.trace_out,
        )
    if args.command == "locality":
        return _cmd_locality(
            args.benchmarks, scale, jobs, args.json, args.miss_floor
        )
    if args.command == "predict":
        return _cmd_predict(
            args.benchmarks, scale, args.threshold, args.miss_floor
        )
    if args.command == "lint":
        return _cmd_lint(args.benchmarks, scale, args.strict, args.deps)
    if args.command == "runs":
        return _cmd_runs(
            store, args.purge_bad, args.scrub, args.quarantine
        )
    if args.command == "trace":
        return _cmd_trace(args.benchmark, args.output, args.version, scale)
    if args.command == "serve":
        return _cmd_serve(
            args.host,
            args.port,
            store,
            jobs,
            scale,
            resilience,
            {
                "max_pending": args.max_pending,
                "client_cap": args.client_cap,
                "drain_grace": args.drain_grace,
                "breaker_threshold": args.breaker_threshold,
                "breaker_cooldown": args.breaker_cooldown,
            },
        )
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())

"""Trace container and builder."""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.isa.instructions import Instruction, Opcode
from repro.isa.packed import PackedTrace

__all__ = ["Trace", "TraceBuilder"]


@dataclass
class Trace:
    """A dynamic instruction stream plus identifying metadata."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def dynamic_instruction_count(self) -> int:
        """Total dynamic instructions, expanding compressed ALU bursts."""
        return sum(inst.dynamic_count for inst in self.instructions)

    @property
    def memory_reference_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.is_memory)

    def opcode_histogram(self) -> Counter:
        """Dynamic instruction count per opcode."""
        histogram: Counter = Counter()
        for inst in self.instructions:
            histogram[inst.op] += inst.dynamic_count
        return histogram

    def extend(self, other: "Trace") -> None:
        self.instructions.extend(other.instructions)

    def marker_balance(self) -> int:
        """(#HW_ON - #HW_OFF); useful sanity check in tests."""
        balance = 0
        for inst in self.instructions:
            if inst.op is Opcode.HW_ON:
                balance += 1
            elif inst.op is Opcode.HW_OFF:
                balance -= 1
        return balance


class TraceBuilder:
    """Mutable helper for emitting a :class:`Trace` or :class:`PackedTrace`.

    Program counters are synthetic: callers set ``pc`` before emitting
    the instructions of a static statement; consecutive instructions get
    consecutive word addresses so loop bodies map onto stable I-cache
    lines.

    Records accumulate directly in three packed columns, so emitting a
    full benchmark never allocates per-instruction objects;
    :meth:`build` materializes them only on demand.
    """

    PC_STRIDE = 4  # bytes per synthetic instruction slot

    def __init__(self, name: str):
        self._name = name
        self._ops = array("q")
        self._args = array("q")
        self._pcs = array("q")
        self._pc = 0x1000

    @property
    def current_pc(self) -> int:
        return self._pc

    def set_pc(self, pc: int) -> None:
        self._pc = pc

    def _emit(self, op: int, arg: int) -> None:
        self._ops.append(op)
        self._args.append(arg)
        self._pcs.append(self._pc)
        self._pc += self.PC_STRIDE

    def load(self, addr: int) -> None:
        self._emit(Opcode.LOAD, addr)

    def store(self, addr: int) -> None:
        self._emit(Opcode.STORE, addr)

    def alu(self, count: int = 1) -> None:
        if count <= 0:
            return
        self._emit(Opcode.ALU, count)

    def branch(self, taken: bool) -> None:
        self._emit(Opcode.BRANCH, 1 if taken else 0)

    def hw_on(self) -> None:
        self._emit(Opcode.HW_ON, 0)

    def hw_off(self) -> None:
        self._emit(Opcode.HW_OFF, 0)

    def append_all(self, instructions: Iterable[Instruction]) -> None:
        for op, arg, pc in instructions:
            self._ops.append(op)
            self._args.append(arg)
            self._pcs.append(pc)

    def build(self) -> Trace:
        return Trace(
            self._name,
            [
                Instruction(Opcode(op), arg, pc)
                for op, arg, pc in zip(self._ops, self._args, self._pcs)
            ],
        )

    def build_packed(self) -> PackedTrace:
        """Emit the packed columnar form without materializing records."""
        return PackedTrace(self._name, self._ops, self._args, self._pcs)

"""Instruction records for the trace-driven simulator."""

from __future__ import annotations

import enum
from typing import NamedTuple

__all__ = ["Opcode", "Instruction"]


class Opcode(enum.IntEnum):
    """Instruction classes the timing model distinguishes.

    ALU instructions are *compressed*: one record stands for ``arg``
    consecutive non-memory instructions, which keeps traces dominated by
    the memory operations the paper studies.  HW_ON / HW_OFF are the
    activate/deactivate instructions of Section 2; each occupies an
    issue slot like a real instruction so its overhead is modelled.
    """

    LOAD = 0
    STORE = 1
    ALU = 2
    BRANCH = 3
    HW_ON = 4
    HW_OFF = 5


class Instruction(NamedTuple):
    """One trace record.

    Attributes:
        op: The :class:`Opcode`.
        arg: Byte address for LOAD/STORE; repeat count (>= 1) for ALU;
            1/0 taken flag for BRANCH; unused (0) for HW_ON/HW_OFF.
        pc: Synthetic program-counter of the static instruction.  Loop
            bodies reuse the same pc every iteration, so the instruction
            cache and the bimodal branch predictor behave realistically.
    """

    op: Opcode
    arg: int = 0
    pc: int = 0

    @property
    def is_memory(self) -> bool:
        return self.op is Opcode.LOAD or self.op is Opcode.STORE

    @property
    def dynamic_count(self) -> int:
        """Number of dynamic instructions this record stands for."""
        if self.op is Opcode.ALU:
            return max(self.arg, 1)
        return 1

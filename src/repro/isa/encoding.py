"""Compact binary encoding of traces.

Traces can be large; this fixed-width little-endian encoding (one
13-byte record per instruction: opcode byte, 8-byte arg, 4-byte pc)
allows writing them to disk and round-tripping them in tests.
"""

from __future__ import annotations

import struct

from repro.isa.instructions import Instruction, Opcode
from repro.isa.packed import AnyTrace
from repro.isa.trace import Trace

__all__ = ["encode_trace", "decode_trace"]

_RECORD = struct.Struct("<BqI")
_MAGIC = b"RPTR\x01"


def encode_trace(trace: AnyTrace) -> bytes:
    """Serialize ``trace`` (name + records) to bytes.

    Accepts either the object or the packed columnar form; both encode
    to the identical byte stream.
    """
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ValueError("trace name too long to encode")
    parts = [_MAGIC, struct.pack("<H", len(name_bytes)), name_bytes]
    parts.extend(_RECORD.pack(op, arg, pc) for op, arg, pc in trace)
    return b"".join(parts)


def decode_trace(data: bytes) -> Trace:
    """Inverse of :func:`encode_trace`.

    Raises ValueError on a bad magic header or a truncated stream.
    """
    if data[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not an encoded trace (bad magic)")
    offset = len(_MAGIC)
    (name_len,) = struct.unpack_from("<H", data, offset)
    offset += 2
    name = data[offset : offset + name_len].decode("utf-8")
    offset += name_len
    body = data[offset:]
    if len(body) % _RECORD.size:
        raise ValueError("truncated trace record stream")
    instructions = [
        Instruction(Opcode(op), arg, pc)
        for op, arg, pc in _RECORD.iter_unpack(body)
    ]
    return Trace(name, instructions)

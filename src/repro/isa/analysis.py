"""Trace analysis utilities: working sets, strides, reuse distances.

Small, dependency-free diagnostics for validating workload models —
how big is a trace's working set, how sequential are its accesses, and
how far apart are its reuses.  The workload tests use these to confirm
each benchmark model exhibits the access character its SPEC/TPC
namesake is modelled after.

Both entry points accept either trace form; packed columnar traces are
scanned without materializing per-instruction objects.  The reuse
histogram rides on :mod:`repro.locality` — O(N log M) via the
Fenwick-indexed LRU stack instead of the former O(N·M) ordered-dict
scan, with identical labels and counts (pinned by
``tests/isa/test_histogram_equivalence.py``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.instructions import Opcode
from repro.isa.packed import AnyTrace, PackedTrace
from repro.locality.mrc import distance_histogram

__all__ = ["TraceProfile", "profile_trace", "reuse_distance_histogram"]

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one trace's memory behaviour."""

    memory_refs: int
    distinct_lines: int
    working_set_bytes: int
    sequential_fraction: float
    read_fraction: float
    top_line_share: float

    @property
    def locality_flavor(self) -> str:
        """A coarse label: "streaming", "reuse-heavy", or "scattered".

        Hot-spot concentration is checked before sequentiality: a loop
        hammering one line is reuse-heavy even though consecutive
        accesses trivially hit the same line.
        """
        if self.top_line_share > 0.05 or (
            self.memory_refs > 4 * max(self.distinct_lines, 1)
        ):
            return "reuse-heavy"
        if self.sequential_fraction > 0.5:
            return "streaming"
        return "scattered"


def profile_trace(trace: AnyTrace, line_size: int = 32) -> TraceProfile:
    """Compute a :class:`TraceProfile` in one pass.

    Packed traces are scanned column-wise (no instruction objects), so
    workload validation over full benchmark traces stays cheap; both
    paths produce identical profiles.
    """
    refs = 0
    reads = 0
    sequential = 0
    last_line = None
    line_counts: Counter = Counter()
    if isinstance(trace, PackedTrace):
        ops, args, _pcs = trace.columns()
        for op, arg in zip(ops, args):
            if op == _LOAD:
                reads += 1
            elif op != _STORE:
                continue
            refs += 1
            line = arg // line_size
            line_counts[line] += 1
            if last_line is not None and line in (last_line, last_line + 1):
                sequential += 1
            last_line = line
    else:
        for inst in trace.instructions:
            if inst.op is Opcode.LOAD:
                reads += 1
            elif inst.op is not Opcode.STORE:
                continue
            refs += 1
            line = inst.arg // line_size
            line_counts[line] += 1
            if last_line is not None and line in (last_line, last_line + 1):
                sequential += 1
            last_line = line
    distinct = len(line_counts)
    top = max(line_counts.values()) if line_counts else 0
    return TraceProfile(
        memory_refs=refs,
        distinct_lines=distinct,
        working_set_bytes=distinct * line_size,
        sequential_fraction=sequential / refs if refs else 0.0,
        read_fraction=reads / refs if refs else 0.0,
        top_line_share=top / refs if refs else 0.0,
    )


def reuse_distance_histogram(
    trace: AnyTrace,
    line_size: int = 32,
    buckets: tuple[int, ...] = (16, 64, 256, 1024),
) -> dict[str, int]:
    """LRU stack (reuse) distances of line accesses, bucketed.

    The returned dict maps "<=N" labels (plus ">last" for colder reuses
    and "cold" for first touches) to access counts.  Exact stack
    distances come from the Fenwick-indexed LRU stack of
    :mod:`repro.locality` — O(refs · log lines), usable on full
    benchmark traces, not just test-scale ones.
    """
    full = distance_histogram(trace, line_size=line_size)
    bucketed = full.bucketed(buckets)
    # Preserve the historical label order: buckets, overflow, cold.
    labels = [f"<={b}" for b in buckets] + [f">{buckets[-1]}", "cold"]
    return {label: bucketed[label] for label in labels}

"""Packed columnar trace representation.

A :class:`repro.isa.trace.Trace` stores one :class:`Instruction`
NamedTuple per record — convenient for tests and small programs, but a
full benchmark trace holds hundreds of thousands of records, and the
per-object overhead (allocation, attribute access, pickling) dominates
both the simulator hot loop and the cost of shipping traces to worker
processes.

:class:`PackedTrace` stores the same information as three parallel
``array('q')`` columns (op, arg, pc): one machine word per field, no
per-record objects.  Conversion to and from :class:`Trace` is lossless,
iteration yields ordinary :class:`Instruction` records, and the summary
properties (``dynamic_instruction_count``, ``memory_reference_count``,
``opcode_histogram``, ``marker_balance``) agree exactly with the
object form.  Packed traces pickle roughly an order of magnitude
smaller and faster, which is what makes process fan-out of the sweep
grid cheap (see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import hashlib
from array import array
from collections import Counter
from typing import TYPE_CHECKING, Iterable, Iterator, Union

from repro.isa.instructions import Instruction, Opcode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.isa.trace import Trace

__all__ = ["PackedTrace", "AnyTrace"]

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ALU = int(Opcode.ALU)
_HW_ON = int(Opcode.HW_ON)
_HW_OFF = int(Opcode.HW_OFF)


class PackedTrace:
    """A dynamic instruction stream in structure-of-arrays form."""

    __slots__ = ("name", "_ops", "_args", "_pcs")

    def __init__(
        self,
        name: str,
        ops: Union[array, Iterable[int], None] = None,
        args: Union[array, Iterable[int], None] = None,
        pcs: Union[array, Iterable[int], None] = None,
    ):
        self.name = name
        self._ops = ops if isinstance(ops, array) else array("q", ops or ())
        self._args = args if isinstance(args, array) else array("q", args or ())
        self._pcs = pcs if isinstance(pcs, array) else array("q", pcs or ())
        if not (len(self._ops) == len(self._args) == len(self._pcs)):
            raise ValueError(
                f"column length mismatch: {len(self._ops)} ops, "
                f"{len(self._args)} args, {len(self._pcs)} pcs"
            )

    # ------------------------------------------------------------------
    # container protocol

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Instruction]:
        for op, arg, pc in zip(self._ops, self._args, self._pcs):
            yield Instruction(Opcode(op), arg, pc)

    def __getitem__(self, index: int) -> Instruction:
        return Instruction(
            Opcode(self._ops[index]), self._args[index], self._pcs[index]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return (
            self.name == other.name
            and self._ops == other._ops
            and self._args == other._args
            and self._pcs == other._pcs
        )

    def __repr__(self) -> str:
        return f"PackedTrace({self.name!r}, {len(self)} records)"

    # ------------------------------------------------------------------
    # columnar access (the simulator hot loop reads these directly)

    def columns(self) -> tuple[array, array, array]:
        """The (op, arg, pc) columns, by reference — do not mutate."""
        return self._ops, self._args, self._pcs

    def numpy_columns(self):
        """Zero-copy numpy ``int64`` views of the (op, arg, pc) columns.

        The views alias the live ``array('q')`` buffers — treat them as
        read-only.  Requires numpy (the vectorized simulator path is
        the only caller).
        """
        import numpy as np

        return (
            np.frombuffer(self._ops, dtype=np.int64),
            np.frombuffer(self._args, dtype=np.int64),
            np.frombuffer(self._pcs, dtype=np.int64),
        )

    def marker_positions(self):
        """Record indices of HW_ON/HW_OFF markers as a numpy array.

        These are the segment boundaries of the vectorized simulator
        path: between consecutive markers the hardware-gate state is
        constant, so a whole span can be replayed in bulk.  Requires
        numpy.
        """
        ops, _, _ = self.numpy_columns()
        import numpy as np

        return np.nonzero((ops == _HW_ON) | (ops == _HW_OFF))[0]

    @property
    def instructions(self) -> list[Instruction]:
        """Materialize the records as :class:`Instruction` objects.

        Provided for interoperability with object-trace consumers;
        full-suite code paths should iterate the columns instead.
        """
        return [
            Instruction(Opcode(op), arg, pc)
            for op, arg, pc in zip(self._ops, self._args, self._pcs)
        ]

    # ------------------------------------------------------------------
    # summary properties (contract shared with Trace)

    @property
    def dynamic_instruction_count(self) -> int:
        """Total dynamic instructions, expanding compressed ALU bursts."""
        total = len(self._ops)
        for op, arg in zip(self._ops, self._args):
            if op == _ALU and arg > 1:
                total += arg - 1
        return total

    @property
    def memory_reference_count(self) -> int:
        ops = self._ops
        return sum(1 for op in ops if op == _LOAD or op == _STORE)

    def opcode_histogram(self) -> Counter:
        """Dynamic instruction count per opcode."""
        histogram: Counter = Counter()
        for op, arg in zip(self._ops, self._args):
            histogram[Opcode(op)] += arg if (op == _ALU and arg > 1) else 1
        return histogram

    def marker_balance(self) -> int:
        """(#HW_ON - #HW_OFF); useful sanity check in tests."""
        balance = 0
        for op in self._ops:
            if op == _HW_ON:
                balance += 1
            elif op == _HW_OFF:
                balance -= 1
        return balance

    def checksum(self) -> str:
        """Cheap content digest over the three columns.

        Hashes the raw column bytes (length-prefixed, so column
        boundaries are unambiguous) with BLAKE2b; the trace *name* is
        deliberately excluded — two traces with identical streams
        digest identically.  The run store keys sweep cells by this
        digest, so any single flipped word changes the key.  Column
        bytes are machine-endian: digests are stable per machine, not
        across byte orders.
        """
        digest = hashlib.blake2b(digest_size=16)
        for column in (self._ops, self._args, self._pcs):
            digest.update(len(column).to_bytes(8, "little"))
            digest.update(column.tobytes())
        return digest.hexdigest()

    def extend(self, other: "PackedTrace") -> None:
        self._ops.extend(other._ops)
        self._args.extend(other._args)
        self._pcs.extend(other._pcs)

    # ------------------------------------------------------------------
    # conversions

    @classmethod
    def from_trace(cls, trace: "Trace") -> "PackedTrace":
        """Pack an object trace; lossless."""
        ops = array("q")
        args = array("q")
        pcs = array("q")
        for op, arg, pc in trace.instructions:
            ops.append(op)
            args.append(arg)
            pcs.append(pc)
        return cls(trace.name, ops, args, pcs)

    def to_trace(self) -> "Trace":
        """Unpack into an object trace; lossless."""
        from repro.isa.trace import Trace

        return Trace(self.name, self.instructions)


#: Either trace form; everything downstream of the trace generator
#: (simulator, encoder, experiment drivers) accepts both.
AnyTrace = Union["Trace", PackedTrace]

"""Instruction-stream representation.

The paper extends SimpleScalar's instruction set with activate and
deactivate instructions (Section 4.1).  Our simulator is trace driven:
workloads (via the IR interpreter in :mod:`repro.tracegen`) produce a
:class:`Trace` of :class:`Instruction` records — loads, stores,
compressed ALU bursts, branches, and the HW_ON/HW_OFF markers — which
:mod:`repro.cpu` then times against a memory hierarchy.
"""

from repro.isa.encoding import decode_trace, encode_trace
from repro.isa.instructions import Instruction, Opcode
from repro.isa.packed import AnyTrace, PackedTrace
from repro.isa.trace import Trace, TraceBuilder

__all__ = [
    "AnyTrace",
    "Instruction",
    "Opcode",
    "PackedTrace",
    "Trace",
    "TraceBuilder",
    "decode_trace",
    "encode_trace",
]

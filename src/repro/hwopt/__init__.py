"""Run-time hardware cache-locality optimizers (paper Section 3.1).

Two mechanisms, both attachable to the memory hierarchy through
:class:`repro.memory.assist.AssistInterface` and both gateable by the
compiler-inserted activate/deactivate (ON/OFF) instructions:

* :class:`CacheBypassAssist` — Johnson & Hwu's selective variable-size
  caching: a Memory Access Table (MAT) tracks per-macro-block access
  frequencies, a Spatial Locality Detection Table (SLDT) detects spatial
  reuse, and rarely-accessed data is diverted into a small fully
  associative bypass buffer instead of polluting L1.
* :class:`VictimCacheAssist` — Jouppi-style victim caches on L1 and L2.

:mod:`repro.hwopt.policy` adds a *model-driven* gating policy: per-region
miss-ratio curves (:mod:`repro.locality`) decide where the gated assist
should be ON, scored against the compiler's marker placement.
"""

from repro.hwopt.bypass import BypassBuffer
from repro.hwopt.controller import CacheBypassAssist, VictimCacheAssist
from repro.hwopt.gate import HardwareGate
from repro.hwopt.mat import MemoryAccessTable
from repro.hwopt.policy import (
    GatingComparison,
    GatingRecommendation,
    compare_policies,
    recommend_gating,
)
from repro.hwopt.prefetch import StreamBufferAssist
from repro.hwopt.sldt import SpatialLocalityDetector

__all__ = [
    "BypassBuffer",
    "CacheBypassAssist",
    "GatingComparison",
    "GatingRecommendation",
    "HardwareGate",
    "MemoryAccessTable",
    "SpatialLocalityDetector",
    "StreamBufferAssist",
    "VictimCacheAssist",
    "compare_policies",
    "recommend_gating",
]

"""Memory Access Table — per-macro-block access-frequency tracking.

Johnson & Hwu (ISCA'97 [8]) divide memory into *macro-blocks* (1 KB in
the paper's setup) and keep a table of saturating access counters, one
per macro-block, in a direct-mapped tagged structure (4096 entries).
On an L1 miss the controller compares the counter of the missing line's
macro-block with the counter of the macro-block owning the line that
would be displaced; the incoming line is bypassed when it is the less
frequently used of the two.

Counters age (halve) every ``age_interval`` recorded accesses.  Aging is
what makes the table's history *stale* across program phases — the exact
effect the paper's selective ON/OFF scheme exploits: after a phase
change, decisions are wrong "until this information is replaced"
(Section 5.1).
"""

from __future__ import annotations

from repro.params import BypassParams

__all__ = ["MemoryAccessTable"]


class MemoryAccessTable:
    """Direct-mapped, tagged table of saturating macro-block counters."""

    def __init__(
        self,
        params: BypassParams,
        counter_max: int = 255,
        age_interval: int = 8192,
    ):
        if counter_max <= 0 or age_interval <= 0:
            raise ValueError("counter_max and age_interval must be positive")
        self.params = params
        self.counter_max = counter_max
        self.age_interval = age_interval
        self._mb_shift = params.macro_block_size.bit_length() - 1
        self._entries = params.mat_entries
        # Parallel arrays: tag (macro-block number) and counter per slot;
        # tag -1 marks an empty slot.
        self._tags = [-1] * self._entries
        self._counters = [0] * self._entries
        self._since_aging = 0
        self.replacements = 0

    def macro_block_of(self, addr: int) -> int:
        return addr >> self._mb_shift

    def record(self, addr: int) -> None:
        """Count one access to ``addr``'s macro-block."""
        mb = addr >> self._mb_shift
        slot = mb % self._entries
        if self._tags[slot] == mb:
            if self._counters[slot] < self.counter_max:
                self._counters[slot] += 1
        else:
            # Tag replacement: the old macro-block's history is lost.
            if self._tags[slot] != -1:
                self.replacements += 1
            self._tags[slot] = mb
            self._counters[slot] = 1
        self._since_aging += 1
        if self._since_aging >= self.age_interval:
            self._age()

    def frequency(self, addr: int) -> int:
        """Current counter for ``addr``'s macro-block (0 if untracked)."""
        mb = addr >> self._mb_shift
        slot = mb % self._entries
        if self._tags[slot] == mb:
            return self._counters[slot]
        return 0

    def _age(self) -> None:
        """Halve every counter, forgetting old phases gradually."""
        self._since_aging = 0
        counters = self._counters
        for i, value in enumerate(counters):
            if value:
                counters[i] = value >> 1

    def occupancy(self) -> int:
        """Number of slots holding a live tag (tests)."""
        return sum(1 for t in self._tags if t != -1)

"""Stream-buffer prefetching (Jouppi, ISCA 1990 — the same paper as the
victim cache).

An *extension* mechanism beyond the paper's two evaluated assists: the
paper's Section 1.1 lists hardware prefetching among the candidate
run-time techniques, and stream buffers are the era-appropriate
implementation.  Each buffer prefetches a run of sequential lines after
a miss; a later miss that hits a buffer head is served quickly and the
buffer advances.  Plugs into the same
:class:`~repro.memory.assist.AssistInterface`, so the selective ON/OFF
framework gates it exactly like the bypass and victim mechanisms —
useful for "what if the hardware were X" ablations.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.memory.assist import AssistInterface, FillDecision, ServeResult
from repro.memory.block import CacheBlock
from repro.params import MachineParams

__all__ = ["StreamBufferAssist"]

_CACHE_NORMALLY = FillDecision(cache_in_l1=True, extra_blocks=0)


class _StreamBuffer:
    """One FIFO of sequentially prefetched line numbers."""

    __slots__ = ("lines", "next_line", "last_used")

    def __init__(self, depth: int):
        self.lines: deque[int] = deque(maxlen=depth)
        self.next_line = -1
        self.last_used = 0

    def allocate(self, start_line: int, depth: int, clock: int) -> int:
        """Begin a new stream at ``start_line``; return lines fetched."""
        self.lines.clear()
        for offset in range(depth):
            self.lines.append(start_line + offset)
        self.next_line = start_line + depth
        self.last_used = clock
        return depth

    def advance(self, clock: int) -> int:
        """Pop the head after a hit and fetch one more line at the tail."""
        self.lines.popleft()
        self.lines.append(self.next_line)
        self.next_line += 1
        self.last_used = clock
        return 1


class StreamBufferAssist(AssistInterface):
    """A small set of sequential stream buffers ahead of L1.

    On an L1 miss the buffers are probed; a head hit promotes the line
    into L1 (one-cycle penalty) and the stream runs one line further.
    A miss in all buffers reallocates the least-recently-used buffer to
    a new stream starting after the missing line.  Purely additive —
    like the victim cache it never bypasses or captures evictions.
    """

    def __init__(
        self,
        machine: MachineParams,
        buffers: int = 4,
        depth: int = 4,
    ):
        if buffers <= 0 or depth <= 0:
            raise ValueError("buffers and depth must be positive")
        self.enabled = True
        self.machine = machine
        self._buffers = [_StreamBuffer(depth) for _ in range(buffers)]
        self._depth = depth
        self._clock = 0
        self._hits = 0
        self._prefetched = 0

    # -- AssistInterface ------------------------------------------------

    def note_access(self, addr: int, is_write: bool, l1_hit: bool) -> None:
        self._clock += 1

    def lookup_alternate(
        self, addr: int, line: int, is_write: bool = False
    ) -> Optional[ServeResult]:
        for buffer in self._buffers:
            if buffer.lines and buffer.lines[0] == line:
                self._hits += 1
                self._prefetched += buffer.advance(self._clock)
                return (1, CacheBlock(line, dirty=is_write))
        # No buffer covers this stream: start one just past the miss.
        victim = min(self._buffers, key=lambda b: b.last_used)
        self._prefetched += victim.allocate(
            line + 1, self._depth, self._clock
        )
        return None

    def fill_decision(
        self, addr: int, victim_line: Optional[int]
    ) -> FillDecision:
        return _CACHE_NORMALLY

    def accept_bypassed(
        self, addr: int, block: CacheBlock
    ) -> Optional[CacheBlock]:
        return block  # never requested

    def on_l1_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        return block

    def lookup_l2_alternate(self, line: int) -> Optional[CacheBlock]:
        return None

    def on_l2_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        return block

    def count_prefetch(self) -> None:
        self._prefetched += 1

    # -- counters --------------------------------------------------------

    @property
    def assist_hits(self) -> int:
        return self._hits

    @property
    def bypassed_fills(self) -> int:
        return 0

    @property
    def prefetched_blocks(self) -> int:
        return self._prefetched

    @property
    def occupancy(self) -> int:
        """Lines currently queued across the stream buffers."""
        return sum(len(buffer.lines) for buffer in self._buffers)

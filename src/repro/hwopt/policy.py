"""Model-driven ON/OFF gating policy.

The compiler places ON/OFF markers by *static* analyzability (Section
2.2: hardware ON where references resist compile-time analysis).  The
miss-ratio-curve machinery of :mod:`repro.locality` enables an
independent, *quantitative* placement: profile each dynamic region's
stack-distance stream, predict its miss ratio at the target L1
capacity, and turn the pollution-control hardware ON exactly in the
regions whose predicted locality is worse than the threshold — by
default the whole-trace miss ratio floored at
:data:`DEFAULT_MISS_FLOOR`, i.e. "assist the regions that miss more
than this program's average, provided they miss enough to matter".

:func:`recommend_gating` runs the model over a marked trace and scores
its agreement with the compiler's placement, region-by-region and
weighted by memory references.  The evaluation layer turns this into a
per-benchmark table (``python -m repro locality``), the reproduction's
analogue of a model-vs-heuristic ablation figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.packed import AnyTrace
from repro.locality.profile import LocalityProfile, split_profiles
from repro.params import MachineParams

__all__ = [
    "DEFAULT_MISS_FLOOR",
    "GatingRecommendation",
    "GatingComparison",
    "compare_policies",
    "recommend_gating",
]

#: Minimum predicted miss ratio before the model recommends ON.  The
#: adaptive threshold ("worse than this program's average") is floored
#: here so that programs whose locality is already good everywhere —
#: notably the fully-optimized regular codes, which form one uniform
#: region — are not flagged just for sitting at their own average.
#: 0.2 reads as "at least every fifth reference would still miss a
#: fully-associative L1": below that, a pollution-control assist has
#: too few misses to recover to justify being ON.
DEFAULT_MISS_FLOOR = 0.2


@dataclass(frozen=True)
class GatingRecommendation:
    """The model's verdict on one dynamic region."""

    region_index: int
    compiler_on: bool
    model_on: bool
    miss_ratio: float
    memory_refs: int

    @property
    def agrees(self) -> bool:
        return self.compiler_on == self.model_on


@dataclass(frozen=True)
class GatingComparison:
    """Model-driven vs compiler marker placement for one trace."""

    trace_name: str
    cache_lines: int
    threshold: float
    recommendations: tuple[GatingRecommendation, ...]

    @property
    def regions(self) -> int:
        return len(self.recommendations)

    @property
    def compiler_on_regions(self) -> int:
        return sum(1 for r in self.recommendations if r.compiler_on)

    @property
    def model_on_regions(self) -> int:
        return sum(1 for r in self.recommendations if r.model_on)

    @property
    def region_agreement(self) -> float:
        """Fraction of regions where model and compiler agree."""
        if not self.recommendations:
            return 1.0
        agree = sum(1 for r in self.recommendations if r.agrees)
        return agree / len(self.recommendations)

    @property
    def ref_agreement(self) -> float:
        """Agreement weighted by each region's memory references."""
        total = sum(r.memory_refs for r in self.recommendations)
        if not total:
            return 1.0
        agree = sum(r.memory_refs for r in self.recommendations if r.agrees)
        return agree / total


def compare_policies(
    profile: LocalityProfile,
    cache_lines: int,
    threshold: Optional[float] = None,
    miss_floor: float = DEFAULT_MISS_FLOOR,
) -> GatingComparison:
    """Score the MRC policy against the marker placement in ``profile``.

    ``threshold`` is the miss ratio at ``cache_lines`` at or above which
    the model recommends ON; ``None`` uses the whole-trace miss ratio
    floored at ``miss_floor`` — "assist the regions that miss more than
    this program's average, provided they miss enough to matter at
    all".  ``miss_floor`` is the named policy knob behind that clause
    (default :data:`DEFAULT_MISS_FLOOR`); it is wired through the CLI
    (``--miss-floor``) and the service (``miss_floor`` request field),
    and is ignored when an explicit ``threshold`` is given.  Only
    regions that issue memory references participate — an empty span
    between back-to-back markers has no locality to judge.
    """
    if cache_lines <= 0:
        raise ValueError("cache_lines must be positive")
    if not 0.0 <= miss_floor <= 1.0:
        raise ValueError(
            f"miss_floor must be a ratio in [0, 1], got {miss_floor!r}"
        )
    if threshold is None:
        trace_ratio = profile.total_histogram().curve().miss_ratio(
            cache_lines
        )
        threshold = max(trace_ratio, miss_floor)
    recommendations = []
    for region in profile.occupied_regions():
        ratio = region.curve().miss_ratio(cache_lines)
        recommendations.append(
            GatingRecommendation(
                region_index=region.index,
                compiler_on=region.gate_on,
                model_on=ratio >= threshold,
                miss_ratio=ratio,
                memory_refs=region.memory_refs,
            )
        )
    return GatingComparison(
        trace_name=profile.trace_name,
        cache_lines=cache_lines,
        threshold=threshold,
        recommendations=tuple(recommendations),
    )


def recommend_gating(
    trace: AnyTrace,
    machine: MachineParams,
    threshold: Optional[float] = None,
    initially_on: bool = False,
    miss_floor: float = DEFAULT_MISS_FLOOR,
) -> GatingComparison:
    """Profile ``trace`` and compare model vs compiler gating.

    The target capacity is the machine's L1D size in lines, and the
    profile uses the L1D line size, so the predicted miss ratios are
    the fully-associative envelope of the cache the assists protect.
    ``miss_floor`` parameterizes the adaptive threshold (see
    :func:`compare_policies`).
    """
    profile = split_profiles(
        trace,
        line_size=machine.l1d.block_size,
        initially_on=initially_on,
    )
    return compare_policies(
        profile, machine.l1d.num_blocks, threshold, miss_floor=miss_floor
    )

"""Bypass buffer — the small cache that receives non-cached fetches.

Per the paper's setup (Section 4.1) this is a fully-associative LRU
buffer of 64 *double words* with 8-byte granularity: a bypassed fetch
brings in only the double word demanded, not the whole line.  That makes
the buffer cheap but gives it a very small reach — which is exactly why
bypassing spatially-regular data is a bad idea and why the paper's
selective scheme turns the mechanism off in compiler-optimized regions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["BypassBuffer"]


class BypassBuffer:
    """Fully-associative LRU buffer of double words (8-byte entries)."""

    WORD_SHIFT = 3  # 8-byte double words

    def __init__(self, words: int):
        if words <= 0:
            raise ValueError("buffer needs at least one word")
        self.capacity = words
        # double-word number -> dirty flag
        self._words: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0

    def __len__(self) -> int:
        return len(self._words)

    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Probe for the double word holding ``addr``; update LRU on hit."""
        dword = addr >> self.WORD_SHIFT
        if dword in self._words:
            self._words.move_to_end(dword)
            if is_write:
                self._words[dword] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Add the double word holding ``addr``.

        Returns the byte address of a displaced *dirty* double word (the
        caller must write it back), or None.
        """
        dword = addr >> self.WORD_SHIFT
        if dword in self._words:
            self._words[dword] = self._words[dword] or dirty
            self._words.move_to_end(dword)
            return None
        displaced_addr: Optional[int] = None
        if len(self._words) >= self.capacity:
            old_dword, old_dirty = self._words.popitem(last=False)
            if old_dirty:
                displaced_addr = old_dword << self.WORD_SHIFT
        self._words[dword] = dirty
        self.insertions += 1
        return displaced_addr

    def contains(self, addr: int) -> bool:
        """Presence check without statistics (tests)."""
        return (addr >> self.WORD_SHIFT) in self._words

    def flush(self) -> None:
        self._words.clear()

"""ON/OFF gating of a hardware assist (paper Section 2).

The compiler marks region boundaries with activate/deactivate
instructions; at run time these toggle the assist's ``enabled`` flag.
The gate records how often the mechanism was switched so the experiment
harness can report ON/OFF instruction overhead (each executed toggle
also costs an issue slot in the CPU model, per Section 4.1: "the
performance overhead of ON/OFF instructions have also been taken into
account").
"""

from __future__ import annotations

from typing import Optional

from repro.memory.assist import AssistInterface

__all__ = ["HardwareGate"]


class HardwareGate:
    """Controls an assist's enabled flag and counts transitions."""

    def __init__(
        self,
        assist: Optional[AssistInterface],
        initially_on: bool = True,
    ):
        self.assist = assist
        self.activations = 0
        self.deactivations = 0
        if assist is not None:
            assist.enabled = initially_on

    @property
    def enabled(self) -> bool:
        return self.assist is not None and self.assist.enabled

    def activate(self) -> None:
        """Handle an ON instruction."""
        self.activations += 1
        if self.assist is not None:
            self.assist.enabled = True

    def deactivate(self) -> None:
        """Handle an OFF instruction."""
        self.deactivations += 1
        if self.assist is not None:
            self.assist.enabled = False

    @property
    def toggles(self) -> int:
        return self.activations + self.deactivations

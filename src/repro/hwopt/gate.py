"""ON/OFF gating of a hardware assist (paper Section 2).

The compiler marks region boundaries with activate/deactivate
instructions; at run time these toggle the assist's ``enabled`` flag.
The gate records how often the mechanism was switched so the experiment
harness can report ON/OFF instruction overhead (each executed toggle
also costs an issue slot in the CPU model, per Section 4.1: "the
performance overhead of ON/OFF instructions have also been taken into
account").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.memory.assist import AssistInterface

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["HardwareGate"]


class HardwareGate:
    """Controls an assist's enabled flag and counts transitions.

    With a :class:`~repro.telemetry.hub.Telemetry` hub attached (the
    CPU simulator wires one through when profiling), every transition
    is also reported as a span boundary at the current simulated cycle;
    ``telemetry`` stays ``None`` on ordinary runs, so the toggle path
    pays a single ``is None`` check.
    """

    def __init__(
        self,
        assist: Optional[AssistInterface],
        initially_on: bool = True,
    ):
        self.assist = assist
        self.activations = 0
        self.deactivations = 0
        self.telemetry: Optional["Telemetry"] = None
        if assist is not None:
            assist.enabled = initially_on

    @property
    def enabled(self) -> bool:
        return self.assist is not None and self.assist.enabled

    def activate(self) -> None:
        """Handle an ON instruction."""
        self.activations += 1
        if self.assist is not None:
            self.assist.enabled = True
        if self.telemetry is not None:
            self.telemetry.gate_changed(True)

    def deactivate(self) -> None:
        """Handle an OFF instruction."""
        self.deactivations += 1
        if self.assist is not None:
            self.assist.enabled = False
        if self.telemetry is not None:
            self.telemetry.gate_changed(False)

    @property
    def toggles(self) -> int:
        return self.activations + self.deactivations

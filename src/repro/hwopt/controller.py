"""The two hardware locality mechanisms as memory-hierarchy assists.

:class:`CacheBypassAssist` implements Johnson & Hwu's run-time adaptive
selective caching (paper Section 3.1): MAT frequency tracking, SLDT
spatial-locality detection, variable-size fetches, and a double-word
bypass buffer.  :class:`VictimCacheAssist` implements Jouppi victim
caches at L1 and L2.  Either one attaches to
:class:`repro.memory.hierarchy.MemoryHierarchy` and is switched on/off
at region boundaries by the activate/deactivate instructions.
"""

from __future__ import annotations

from typing import Optional

from repro.hwopt.bypass import BypassBuffer
from repro.hwopt.mat import MemoryAccessTable
from repro.hwopt.sldt import SpatialLocalityDetector
from repro.memory.assist import AssistInterface, FillDecision, ServeResult
from repro.memory.block import CacheBlock
from repro.memory.victim import VictimCache
from repro.params import MachineParams

__all__ = ["CacheBypassAssist", "VictimCacheAssist"]

_CACHE_NORMALLY = FillDecision(cache_in_l1=True, extra_blocks=0)
_BYPASS = FillDecision(cache_in_l1=False, extra_blocks=0)


class CacheBypassAssist(AssistInterface):
    """Selective variable-size caching via MAT + SLDT + bypass buffer.

    Decision rule on an L1 miss (Section 3.1 / [8, 9]):

    1. If the line that a fill would displace belongs to a markedly
       hotter macro-block (MAT frequency ratio) *and* that victim is
       not itself part of a detected stream, the incoming line is
       bypassed: L1 keeps the more valuable resident line and the
       demanded data goes to the double-word bypass buffer.
    2. A bypassed fill whose own macro-block shows spatial locality
       (SLDT) uses a variable-size fetch — one extra sequential line's
       words stream into the buffer, so a bypassed stream still gets
       its spatial reuse served without polluting L1.
    3. Otherwise the line is cached normally.
    """

    def __init__(self, machine: MachineParams):
        self.enabled = True
        self.machine = machine
        self.mat = MemoryAccessTable(machine.bypass)
        self.sldt = SpatialLocalityDetector(
            machine.bypass, line_size=machine.l1d.block_size
        )
        self.buffer = BypassBuffer(machine.bypass.buffer_words)
        self._line_size = machine.l1d.block_size
        self._hits = 0
        self._bypassed = 0
        self._prefetched = 0

    # -- AssistInterface ------------------------------------------------

    def note_access(self, addr: int, is_write: bool, l1_hit: bool) -> None:
        self.mat.record(addr)
        self.sldt.observe(addr)

    def lookup_alternate(
        self, addr: int, line: int, is_write: bool = False
    ) -> Optional[ServeResult]:
        if self.buffer.lookup(addr, is_write):
            self._hits += 1
            # Served in place from the buffer: one extra cycle, nothing
            # promoted into L1.
            return (1, None)
        return None

    def fill_decision(
        self, addr: int, victim_line: Optional[int]
    ) -> FillDecision:
        if victim_line is None or self.sldt.expects_spatial(addr):
            # Free way, or spatially-reused incoming data (streams,
            # dense sweeps): always cache.  Bypassing a stream into the
            # tiny double-word buffer forfeits its guaranteed near-term
            # reuse.
            return _CACHE_NORMALLY
        # Bypass only on strong evidence: the resident line's macro-block
        # must be hot in absolute terms and markedly hotter (ratio from
        # BypassParams) than the incoming one, and must not itself be
        # streaming — a stream's macro-block racks up a high access
        # count while it passes through, but each of its lines is
        # touched once and is worthless to protect.  Without these
        # guards the frequency comparison systematically sacrifices
        # small hot structures (hash tables) to protect dead lines.
        params = self.machine.bypass
        victim_addr = victim_line * self._line_size
        victim_freq = self.mat.frequency(victim_addr)
        if victim_freq < params.min_victim_freq:
            return _CACHE_NORMALLY
        incoming_freq = self.mat.frequency(addr)
        if (
            incoming_freq < victim_freq * params.bypass_ratio
            and not self.sldt.expects_spatial(victim_addr)
        ):
            return _BYPASS
        return _CACHE_NORMALLY

    def accept_bypassed(
        self, addr: int, block: CacheBlock
    ) -> Optional[CacheBlock]:
        """Variable-size buffer fill: a dword, or the line if spatial."""
        self._bypassed += 1
        displaced_dirty: Optional[int] = None
        if self.sldt.expects_spatial(addr):
            line_start = (addr // self._line_size) * self._line_size
            for offset in range(0, self._line_size, 8):
                word_addr = line_start + offset
                dirty = block.dirty and word_addr == (addr & ~7)
                displaced = self.buffer.insert(word_addr, dirty)
                if displaced is not None:
                    displaced_dirty = displaced
        else:
            displaced_dirty = self.buffer.insert(addr, block.dirty)
        if displaced_dirty is None:
            return None
        # A dirty double word leaves the buffer: hand the hierarchy a
        # line-granularity record so it can route the writeback.
        return CacheBlock(displaced_dirty // self._line_size, dirty=True)

    def on_l1_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        return block  # bypassing does not capture evictions

    def lookup_l2_alternate(self, line: int) -> Optional[CacheBlock]:
        return None

    def on_l2_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        return block

    def count_prefetch(self) -> None:
        self._prefetched += 1

    # -- counters --------------------------------------------------------

    @property
    def assist_hits(self) -> int:
        return self._hits

    @property
    def bypassed_fills(self) -> int:
        return self._bypassed

    @property
    def prefetched_blocks(self) -> int:
        return self._prefetched

    @property
    def occupancy(self) -> int:
        """Double words currently held in the bypass buffer."""
        return len(self.buffer)


class VictimCacheAssist(AssistInterface):
    """Jouppi victim caches behind L1 (64 lines) and L2 (512 lines).

    An L1 miss probes the L1 victim cache; a hit swaps the line back
    into L1 at a one-cycle penalty.  Evicted lines (from either level)
    drop into the corresponding victim cache while the mechanism is
    enabled.  A passive mechanism: it never bypasses and never
    prefetches, which is why the paper finds it "always better than the
    base configuration" but with smaller peak gains (Section 5.2).
    """

    def __init__(self, machine: MachineParams):
        self.enabled = True
        self.machine = machine
        self.l1_victim = VictimCache(machine.victim.l1_entries, "L1victim")
        self.l2_victim = VictimCache(machine.victim.l2_entries, "L2victim")
        self._hits = 0

    # -- AssistInterface ------------------------------------------------

    def note_access(self, addr: int, is_write: bool, l1_hit: bool) -> None:
        pass  # victim caches react only to misses and evictions

    def lookup_alternate(
        self, addr: int, line: int, is_write: bool = False
    ) -> Optional[ServeResult]:
        block = self.l1_victim.extract(line)
        if block is None:
            return None
        self._hits += 1
        if is_write:
            block.dirty = True
        return (1, block)  # promote back into L1 (swap)

    def fill_decision(
        self, addr: int, victim_line: Optional[int]
    ) -> FillDecision:
        return _CACHE_NORMALLY

    def accept_bypassed(
        self, addr: int, block: CacheBlock
    ) -> Optional[CacheBlock]:
        # Never requested (fill_decision always caches); keep the block
        # flowing so a misuse is at least harmless.
        return block

    def on_l1_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        return self.l1_victim.insert(block)

    def lookup_l2_alternate(self, line: int) -> Optional[CacheBlock]:
        block = self.l2_victim.extract(line)
        if block is not None:
            self._hits += 1
        return block

    def on_l2_evict(self, block: CacheBlock) -> Optional[CacheBlock]:
        return self.l2_victim.insert(block)

    def count_prefetch(self) -> None:
        pass  # victim caches never prefetch

    # -- counters --------------------------------------------------------

    @property
    def assist_hits(self) -> int:
        return self._hits

    @property
    def bypassed_fills(self) -> int:
        return 0

    @property
    def prefetched_blocks(self) -> int:
        return 0

    @property
    def occupancy(self) -> int:
        """Lines currently held across both victim caches."""
        return len(self.l1_victim) + len(self.l2_victim)

"""Spatial Locality Detection Table (Johnson, Merten & Hwu, MICRO'97 [9]).

A small fully-associative table tracks the cache lines touched most
recently.  Each entry records which words of the line were referenced.
When an entry is displaced, the detector judges whether the line showed
spatial locality (several distinct words touched) and updates a
per-macro-block *spatial counter* — incremented on spatial evidence,
decremented otherwise, saturating within the configured bounds.

The cache-bypass controller consults :meth:`spatial_quality` to choose
the fetch size: macro-blocks with a counter at or above the threshold
get a larger (multi-line) fetch and are kept cacheable even when their
access frequency alone would argue for bypassing.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.params import BypassParams

__all__ = ["SpatialLocalityDetector"]


class SpatialLocalityDetector:
    """SLDT plus per-macro-block saturating spatial counters."""

    WORD_BYTES = 8

    def __init__(self, params: BypassParams, line_size: int = 32):
        if line_size <= self.WORD_BYTES:
            raise ValueError("line_size must exceed the word size")
        self.params = params
        self._line_shift = line_size.bit_length() - 1
        self._mb_shift = params.macro_block_size.bit_length() - 1
        self._capacity = params.sldt_entries
        # line number -> set of word offsets touched (insertion = LRU order)
        self._table: OrderedDict[int, set[int]] = OrderedDict()
        # macro-block number -> saturating spatial counter
        self._spatial: dict[int, int] = {}
        self.spatial_promotions = 0
        self.spatial_demotions = 0

    def observe(self, addr: int) -> None:
        """Record one access; may retire the LRU entry and judge it."""
        line = addr >> self._line_shift
        word = (addr >> 3) & ((1 << (self._line_shift - 3)) - 1)
        entry = self._table.get(line)
        if entry is not None:
            entry.add(word)
            self._table.move_to_end(line)
            return
        if len(self._table) >= self._capacity:
            old_line, words = self._table.popitem(last=False)
            self._judge(old_line, words)
        self._table[line] = {word}

    def spatial_quality(self, addr: int) -> int:
        """Spatial counter of ``addr``'s macro-block (0 when unknown)."""
        return self._spatial.get(addr >> self._mb_shift, 0)

    def expects_spatial(self, addr: int) -> bool:
        """True when the macro-block has shown enough spatial locality."""
        return self.spatial_quality(addr) >= self.params.spatial_threshold

    def _judge(self, line: int, words: set[int]) -> None:
        """Classify a retiring SLDT entry and update the spatial counter."""
        mb = (line << self._line_shift) >> self._mb_shift
        counter = self._spatial.get(mb, 0)
        if len(words) >= 2:
            if counter < self.params.spatial_counter_max:
                counter += 1
            self.spatial_promotions += 1
        else:
            if counter > self.params.spatial_counter_min:
                counter -= 1
            self.spatial_demotions += 1
        self._spatial[mb] = counter

    def flush_judgements(self) -> None:
        """Retire every live entry (end-of-run bookkeeping, tests)."""
        while self._table:
            line, words = self._table.popitem(last=False)
            self._judge(line, words)

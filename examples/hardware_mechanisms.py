#!/usr/bin/env python
"""Comparing hardware mechanisms, including the extensions.

The paper evaluates two run-time assists (cache bypassing and victim
caches); Section 1.1 also lists hardware prefetching and
column-associative caches among the candidate techniques.  This example
runs all of them side by side:

* the three `AssistInterface` mechanisms (bypass, victim, stream-buffer
  prefetch) on a benchmark's base code, and
* the column-associative L1 organization versus direct-mapped and
  2-way, replayed on the same address stream.

Run:  python examples/hardware_mechanisms.py [benchmark]
"""

import sys

from repro import TINY, base_config, get_spec
from repro.core.experiment import simulate_trace
from repro.hwopt.prefetch import StreamBufferAssist
from repro.cpu.pipeline import CPUSimulator
from repro.hwopt.gate import HardwareGate
from repro.isa import Opcode
from repro.memory.cache import SetAssociativeCache
from repro.memory.column import ColumnAssociativeCache
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import CacheParams
from repro.tracegen import TraceGenerator


def assists_comparison(trace, machine):
    print("Run-time assists on the base code "
          "(improvement over no assist):")
    plain = simulate_trace(trace, machine)
    print(f"  {'none':<16}{plain.cycles:>12,} cycles")
    for name in ("bypass", "victim"):
        result = simulate_trace(trace, machine, mechanism=name)
        print(f"  {name:<16}{result.cycles:>12,} cycles "
              f"({result.improvement_over(plain):+6.2f}%)")
    # The stream-buffer extension is not in the paper's mechanism list,
    # so it is wired manually rather than through make_assist.
    assist = StreamBufferAssist(machine)
    hierarchy = MemoryHierarchy(machine, assist)
    result = CPUSimulator(machine, hierarchy, HardwareGate(assist)).run(
        trace
    )
    print(f"  {'stream-prefetch':<16}{result.cycles:>12,} cycles "
          f"({result.improvement_over(plain):+6.2f}%, "
          f"{result.memory.assist_hits:,} buffer hits)")
    return plain


def organizations_comparison(trace, machine):
    print("\nL1 organizations on the same address stream "
          "(miss rates, standalone replay):")
    size = machine.l1d.size
    block = machine.l1d.block_size
    organizations = {
        "direct-mapped": SetAssociativeCache(
            CacheParams("DM", size, 1, block, 1)
        ),
        "column-assoc": ColumnAssociativeCache(
            CacheParams("CA", size, 1, block, 1)
        ),
        "2-way LRU": SetAssociativeCache(
            CacheParams("2W", size, 2, block, 1)
        ),
        "4-way LRU": SetAssociativeCache(
            CacheParams("4W", size, 4, block, 1)
        ),
    }
    for name, cache in organizations.items():
        for inst in trace:
            if inst.op in (Opcode.LOAD, Opcode.STORE):
                if not cache.lookup(inst.arg, inst.op is Opcode.STORE):
                    cache.fill(inst.arg, inst.op is Opcode.STORE)
        extra = ""
        if isinstance(cache, ColumnAssociativeCache):
            extra = f"  ({cache.rehash_hits:,} rehash hits)"
        print(f"  {name:<16} miss rate "
              f"{cache.stats.miss_rate:6.3f}{extra}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    machine = base_config().scaled(TINY.machine_divisor)
    program = get_spec(name).instantiate(TINY)
    trace = TraceGenerator(program).generate()
    print(f"Benchmark: {name} at scale {TINY.name} "
          f"({trace.memory_reference_count:,} memory references)\n")
    assists_comparison(trace, machine)
    organizations_comparison(trace, machine)


if __name__ == "__main__":
    main()

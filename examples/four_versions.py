#!/usr/bin/env python
"""The paper's four simulated versions on a mixed benchmark.

Runs TPC-D Q3 (scans + hash-join probe — a genuinely mixed program)
through all four versions of Section 4.3, for both hardware mechanisms,
and prints the Figure-4-style comparison.  Also shows the region
structure and the ON/OFF markers the selective version carries.

Run:  python examples/four_versions.py [benchmark]
"""

import sys

from repro import SMALL, base_config, get_spec, prepare_codes, run_benchmark
from repro.isa import Opcode


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tpcd_q3"
    spec = get_spec(name)
    machine = base_config().scaled(SMALL.machine_divisor)

    print(f"Benchmark: {spec.name} ({spec.category})")
    print(f"  {spec.description}\n")

    codes = prepare_codes(spec, SMALL, machine)
    print("Region detection:", codes.regions.summary())
    print(f"Markers: {codes.markers.activates} ON / "
          f"{codes.markers.deactivates} OFF inserted statically "
          f"({codes.markers.eliminated} redundant ones eliminated)")
    histogram = codes.selective_trace.opcode_histogram()
    print(f"Dynamic ON/OFF executions: {histogram[Opcode.HW_ON]} / "
          f"{histogram[Opcode.HW_OFF]}")
    print("Compiler:", codes.optimization.summary(), "\n")

    run = run_benchmark(codes, machine)
    base_cycles = run.baseline.cycles
    print(f"Base configuration: {base_cycles:,} cycles "
          f"(L1D miss rate {run.baseline.l1d_miss_rate:.3f})\n")

    print(f"{'version':<22}{'cycles':>12}{'improvement':>13}")
    order = [
        "pure_hw/bypass", "pure_hw/victim", "pure_sw",
        "combined/bypass", "combined/victim",
        "selective/bypass", "selective/victim",
    ]
    for key in order:
        result = run.results[key]
        print(f"{key:<22}{result.cycles:>12,}"
              f"{run.improvement(key):>12.2f}%")

    best = max(order, key=run.improvement)
    print(f"\nBest version: {best} "
          f"(+{run.improvement(best):.2f}% over base)")


if __name__ == "__main__":
    main()

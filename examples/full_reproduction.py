#!/usr/bin/env python
"""Run the complete reproduction and write a report file.

Regenerates Table 2, Table 3 and Figures 4-9 in one pass and writes
them to ``reproduction_report.txt`` (or the path given as the first
argument).  Equivalent to the benchmarks/ suite without pytest, for
users who just want the artifacts.

Run:  python examples/full_reproduction.py [output.txt] [--scale small]

Expect roughly 15 minutes at the default scale.
"""

import sys
import time

from repro import SMALL, TINY, run_suite
from repro.evaluation.figures import FIGURES, figure_series
from repro.evaluation.report import (
    render_figure,
    render_table2,
    render_table3,
)
from repro.evaluation.table2 import table2_rows
from repro.evaluation.table3 import sweep_to_row


def main() -> None:
    output_path = "reproduction_report.txt"
    scale = SMALL
    args = sys.argv[1:]
    if "--scale" in args:
        index = args.index("--scale")
        scale = {"tiny": TINY, "small": SMALL}[args[index + 1]]
        del args[index : index + 2]
    if args:
        output_path = args[0]

    started = time.time()
    sections = []

    print("Table 2 (benchmark characteristics)...", flush=True)
    sections.append(render_table2(table2_rows(scale, jobs=None)))

    print("Sweeping all six configurations over the 13 benchmarks...",
          flush=True)
    # jobs=None fans the grid over $REPRO_JOBS (or CPU count) workers;
    # results are bit-identical for every job count.
    suite = run_suite(
        scale, jobs=None, progress=lambda m: print(f"  {m}", flush=True)
    )

    rows = [
        sweep_to_row(name, suite.sweeps[name]) for name in suite.sweeps
    ]
    sections.append(render_table3(rows))
    for figure, config_name in FIGURES.items():
        sections.append(
            render_figure(figure_series(figure, suite.sweeps[config_name]))
        )

    elapsed = time.time() - started
    header = (
        f"Reproduction report — 'An Integrated Approach for Improving "
        f"Cache Behavior' (DATE 2003)\n"
        f"scale={scale.name}, elapsed {elapsed:.0f}s\n"
    )
    report = header + "\n\n".join(sections) + "\n"
    with open(output_path, "w") as handle:
        handle.write(report)
    print(f"\nwrote {output_path} ({len(report):,} bytes, "
          f"{elapsed:.0f}s)")


if __name__ == "__main__":
    main()

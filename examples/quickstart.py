#!/usr/bin/env python
"""Quickstart: the paper's Section 3.2 example, end to end.

Builds the nest ``U[j] += V[j][i] * W[i][j]``, shows what each stage of
the framework does to it (region detection, interchange, layout
selection, scalar replacement), and times the base versus optimized
code on the paper's machine.

Run:  python examples/quickstart.py
"""

from repro import (
    CPUSimulator,
    LocalityOptimizer,
    MemoryHierarchy,
    TraceGenerator,
    base_config,
    detect_regions,
)
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var


def build_example(n: int = 128):
    """for i: for j: U[j] += V[j][i] * W[i][j]"""
    b = ProgramBuilder("example")
    u = b.array("U", (n,))
    v = b.array("V", (n, n))
    w = b.array("W", (n, n))
    i, j = var("i"), var("j")
    b.append(
        loop("i", 0, n, [
            loop("j", 0, n, [
                stmt(writes=[u[j]], reads=[u[j], v[j, i], w[i, j]], work=2),
            ]),
        ])
    )
    return b.build()


def time_program(program, machine):
    trace = TraceGenerator(program).generate()
    hierarchy = MemoryHierarchy(machine, classify_misses=True)
    result = CPUSimulator(machine, hierarchy).run(trace)
    return result


def main() -> None:
    machine = base_config().scaled(8)

    # --- what the compiler sees -------------------------------------
    program = build_example()
    report = detect_regions(program)
    print("Region detection:", report.summary())
    print("  regions:", report.preferences(),
          "(all-affine nest -> one software region)\n")

    # --- base vs optimized ------------------------------------------
    base_program = build_example()
    base_result = time_program(base_program, machine)

    optimized = build_example()
    optimization = LocalityOptimizer(machine).optimize(optimized)
    print("Optimizer:", optimization.summary())
    for interchange in optimization.interchanges:
        print(f"  interchange: {interchange.order_before} -> "
              f"{interchange.order_after} ({interchange.reason})")
    print("  layouts:", optimization.layout.chosen or "unchanged",
          "| padded:", optimization.padded_arrays or "none")
    opt_result = time_program(optimized, machine)

    print("\n                    base       optimized")
    print(f"cycles        {base_result.cycles:10,} {opt_result.cycles:10,}")
    print(f"instructions  {base_result.instructions:10,} "
          f"{opt_result.instructions:10,}")
    print(f"L1D miss rate {base_result.l1d_miss_rate:10.3f} "
          f"{opt_result.l1d_miss_rate:10.3f}")
    improvement = opt_result.improvement_over(base_result)
    print(f"\nImprovement in execution cycles: {improvement:.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A tour of the region-detection algorithm on the paper's Figure 2.

Reconstructs the nested-loop hierarchy of Figure 2(a) — an imperfectly
nested level-1 loop containing three level-2 nests with different
access characters — runs region detection and marker insertion, and
prints the annotated structure so you can compare it with Figure 2(c).

Run:  python examples/region_detection_tour.py
"""

import numpy as np

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import IndexedRef, PointerChaseRef
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.compiler.regions.detect import detect_regions
from repro.compiler.regions.markers import insert_markers
from repro.tracegen.irregular import permutation_chain, uniform_indices


def build_figure2_program():
    """Figure 2(a): level-1 loop holding hw, sw, hw level-2 nests."""
    n = 16
    b = ProgramBuilder("figure2")
    a = b.array("A", (n, n))
    heap = b.array(
        "HEAP", (256,), element_size=32, data=permutation_chain(256, 1)
    )
    table = b.array("TABLE", (512,))
    idx = b.index_array("IDX", uniform_indices(n, 512, seed=2))
    i, j, k, m = var("i"), var("j"), var("k"), var("m")

    # Top nest: depth 4 (levels 2-3-4), pointer-chasing innermost.
    nest_hw_deep = loop("l2a", 0, 4, [
        loop("l3a", 0, 4, [
            loop("l4a", 0, 8, [
                stmt(reads=[PointerChaseRef(heap, "walk", 0, 32),
                            IndexedRef(table, idx[var("l4a")])],
                     work=2, label="chase"),
            ]),
        ]),
    ])

    # Middle nest: affine stencil — compiler territory.
    nest_sw = loop("l2b", 1, n, [
        loop("l3b", 1, n, [
            stmt(writes=[a[var("l2b"), var("l3b")]],
                 reads=[a[var("l2b") - 1, var("l3b")],
                        a[var("l2b"), var("l3b") - 1]],
                 work=2, label="stencil"),
        ]),
    ])

    # Bottom nest: hash-table scatter — hardware territory.
    nest_hw2 = loop("l2c", 0, n, [
        stmt(reads=[IndexedRef(table, idx[var("l2c")]),
                    IndexedRef(table, idx[var("l2c")], offset=1)],
             writes=[IndexedRef(table, idx[var("l2c")])],
             work=1, label="scatter"),
    ])

    b.append(loop("l1", 0, 3, [nest_hw_deep, nest_sw, nest_hw2]))
    return b.build()


def render(node, depth=0):
    pad = "  " * depth
    if isinstance(node, Loop):
        tag = f" [{node.preference}]" if node.preference else ""
        print(f"{pad}for {node.var}{tag}:")
        for child in node.body:
            render(child, depth + 1)
    elif isinstance(node, MarkerStmt):
        print(f"{pad}*** {'ACTIVATE (ON)' if node.activates else 'DEACTIVATE (OFF)'} ***")
    elif isinstance(node, Statement):
        tag = f" [{node.preference}]" if node.preference else ""
        print(f"{pad}{node.label or 'stmt'}{tag}")


def main() -> None:
    program = build_figure2_program()
    report = detect_regions(program)
    print("=== After region detection (Figure 2(b)) ===")
    print(report.summary())
    print("regions in program order:", report.preferences(), "\n")
    for node in program.body:
        render(node)

    markers = insert_markers(program, rerun_detection=False)
    print("\n=== After marker insertion + elimination (Figure 2(c)) ===")
    print(f"{markers.activates} ON, {markers.deactivates} OFF "
          f"({markers.eliminated} redundant markers eliminated "
          f"of {markers.naive_markers} naive)")
    for node in program.body:
        render(node)


if __name__ == "__main__":
    main()

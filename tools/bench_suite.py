#!/usr/bin/env python
"""Benchmark the sweep engine: serial vs parallel, packed vs objects.

Times a fixed mini-sweep (4 benchmarks x 2 machine configurations by
default) twice — once with ``jobs=1`` and once with ``--jobs`` worker
processes — verifies that every cell of the two sweeps is identical,
and measures the packed-columnar trace path against the legacy object
path for single-thread generation, simulation (scalar loop and the
block-batched numpy kernels), and the reuse-distance/
miss-ratio-curve engine, the analytic predictor against the cold
simulated service cell (budget: >=100x), plus the wall-clock of the
static verifier (``python -m repro lint``) over the full suite.
Results are written
to ``BENCH_sweep.json`` next to this script's repo root so future PRs
have a perf trajectory to compare against.

Usage::

    PYTHONPATH=src python tools/bench_suite.py            # full mini-sweep
    PYTHONPATH=src python tools/bench_suite.py --smoke    # CI-sized run
    PYTHONPATH=src python tools/bench_suite.py --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.compiler.verify.lint import lint_registry  # noqa: E402
from repro.core.experiment import simulate_trace  # noqa: E402
from repro.core.runner import run_suite  # noqa: E402
from repro.core.runstore import RunStore  # noqa: E402
from repro.locality.mrc import distance_histogram  # noqa: E402
from repro.params import SENSITIVITY_CONFIGS  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402
from repro.tracegen.interpreter import TraceGenerator  # noqa: E402
from repro.workloads.base import SMALL, TINY  # noqa: E402
from repro.workloads.registry import get_spec  # noqa: E402

FULL_BENCHMARKS = ["vpenta", "adi", "compress", "swim"]
SMOKE_BENCHMARKS = ["vpenta", "compress"]
CONFIG_NAMES = ("Base Confg.", "Higher Mem. Lat.")


def _time(fn):
    """Run ``fn`` and return (result, wall_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _suites_identical(a, b) -> bool:
    if a.config_names() != b.config_names():
        return False
    for config_name in a.sweeps:
        sa, sb = a.sweep(config_name), b.sweep(config_name)
        if list(sa.runs) != list(sb.runs):
            return False
        for name, run_a in sa.runs.items():
            run_b = sb.runs[name]
            if run_a.version_keys() != run_b.version_keys():
                return False
            for key in run_a.version_keys():
                if run_a.results[key] != run_b.results[key]:
                    return False
    return True


def bench_sweep(scale, benchmarks, configs, jobs):
    """Time run_suite serially and with ``jobs`` workers; verify equality.

    ``jobs`` is clamped to the machine's CPU count first: requesting
    more workers than cores only adds scheduling overhead, and the
    resulting "speedup" is a property of the oversubscription, not the
    engine.  A clamped run is flagged with ``jobs_capped`` so readers
    of BENCH_sweep.json don't compare numbers from different effective
    worker counts.  On a single-core machine the parallel leg is
    skipped outright — serial vs 1-worker-pool is pure overhead
    measurement noise dressed up as a comparison.

    Returns the report dict plus the serial suite so the resume bench
    can reuse it as its bit-identical reference without a third run.
    """
    cpu_count = os.cpu_count() or 1
    effective_jobs = min(jobs, cpu_count)
    jobs_capped = effective_jobs < jobs
    if jobs_capped:
        print(
            f"  warning: --jobs {jobs} exceeds cpu_count={cpu_count}; "
            f"clamping the parallel leg to {effective_jobs} workers",
            file=sys.stderr,
        )

    serial, serial_s = _time(
        lambda: run_suite(scale, benchmarks=benchmarks, configs=configs, jobs=1)
    )
    report = {
        "serial_seconds": round(serial_s, 3),
        "jobs_requested": jobs,
        "jobs": effective_jobs,
        "jobs_capped": jobs_capped,
        "cells": len(benchmarks) * len(configs),
    }
    if effective_jobs < 2:
        report.update(
            parallel_seconds=None,
            speedup=None,
            parallel_skipped="single-core machine: no parallelism to measure",
            results_identical=True,
        )
        return report, serial

    parallel, parallel_s = _time(
        lambda: run_suite(
            scale, benchmarks=benchmarks, configs=configs, jobs=effective_jobs
        )
    )
    report.update(
        parallel_seconds=round(parallel_s, 3),
        speedup=round(serial_s / parallel_s, 3) if parallel_s else None,
        results_identical=_suites_identical(serial, parallel),
    )
    return report, serial


def bench_sweep_resume(scale, benchmarks, configs, reference, serial_seconds):
    """Checkpoint overhead and resume speedup of the run store.

    Runs the same serial mini-sweep once against a cold store (every
    cell simulated + checkpointed) and once resuming from it (every
    cell restored after re-preparing traces for the content keys).
    ``checkpoint_overhead_pct`` compares the cold store leg against the
    store-less serial leg already timed by :func:`bench_sweep` — the
    acceptance budget for the store is <5%.
    """
    with tempfile.TemporaryDirectory(prefix="repro-runstore-") as tmp:
        store = RunStore(tmp)
        cold, cold_s = _time(
            lambda: run_suite(
                scale, benchmarks=benchmarks, configs=configs, jobs=1,
                store=store,
            )
        )
        warm, warm_s = _time(
            lambda: run_suite(
                scale, benchmarks=benchmarks, configs=configs, jobs=1,
                store=store, resume=True,
            )
        )
        cells = len(store.entries())
    identical = _suites_identical(reference, cold) and _suites_identical(
        reference, warm
    )
    overhead = (
        100.0 * (cold_s - serial_seconds) / serial_seconds
        if serial_seconds
        else None
    )
    return {
        "store_seconds": round(cold_s, 3),
        "resume_seconds": round(warm_s, 3),
        "checkpoint_overhead_pct": round(overhead, 2)
        if overhead is not None
        else None,
        "resume_speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "cells": cells,
        "results_identical": identical,
    }


def bench_packed(scale, benchmark):
    """Single-thread object vs scalar-packed vs vectorized simulation.

    Returns two report dicts: the legacy packed-vs-objects comparison
    (``vectorize=False`` pins the scalar columnar loop so the numbers
    stay comparable across PRs) and the ``simulate_vectorized`` entry
    for the block-batched numpy kernels, measured on the same trace and
    checked bit-identical against both scalar paths.
    """
    spec = get_spec(benchmark)

    obj_trace, obj_gen_s = _time(
        lambda: TraceGenerator(spec.instantiate(scale), trace_name="o").generate()
    )
    packed_trace, packed_gen_s = _time(
        lambda: TraceGenerator(
            spec.instantiate(scale), trace_name="o"
        ).generate_packed()
    )

    machine_builder = SENSITIVITY_CONFIGS["Base Confg."]

    # Interleaved best-of-3 per leg: a fresh machine every repetition,
    # minimum wall time per leg, so one background hiccup cannot skew
    # the recorded speedup in either direction.
    legs = {
        "obj": lambda: simulate_trace(
            obj_trace, machine_builder().scaled(scale.machine_divisor)
        ),
        "scalar": lambda: simulate_trace(
            packed_trace,
            machine_builder().scaled(scale.machine_divisor),
            vectorize=False,
        ),
        "vector": lambda: simulate_trace(
            packed_trace,
            machine_builder().scaled(scale.machine_divisor),
            vectorize=True,
        ),
    }
    times = {name: float("inf") for name in legs}
    results = {}
    for _ in range(3):
        for name, leg in legs.items():
            results[name], seconds = _time(leg)
            times[name] = min(times[name], seconds)
    obj_result, obj_sim_s = results["obj"], times["obj"]
    packed_result, packed_sim_s = results["scalar"], times["scalar"]
    vector_result, vector_sim_s = results["vector"], times["vector"]

    packed_report = {
        "benchmark": benchmark,
        "records": len(packed_trace),
        "object_generate_seconds": round(obj_gen_s, 3),
        "packed_generate_seconds": round(packed_gen_s, 3),
        "generate_speedup": round(obj_gen_s / packed_gen_s, 3)
        if packed_gen_s
        else None,
        "object_simulate_seconds": round(obj_sim_s, 3),
        "packed_simulate_seconds": round(packed_sim_s, 3),
        "simulate_speedup": round(obj_sim_s / packed_sim_s, 3)
        if packed_sim_s
        else None,
        "results_identical": obj_result == packed_result,
    }
    vector_report = {
        "benchmark": benchmark,
        "records": len(packed_trace),
        "scalar_simulate_seconds": round(packed_sim_s, 3),
        "vectorized_simulate_seconds": round(vector_sim_s, 3),
        "speedup_vs_objects": round(obj_sim_s / vector_sim_s, 3)
        if vector_sim_s
        else None,
        "speedup_vs_scalar": round(packed_sim_s / vector_sim_s, 3)
        if vector_sim_s
        else None,
        "results_identical": obj_result == packed_result == vector_result,
    }
    return packed_report, vector_report


def bench_mrc(scale, benchmark):
    """Time the reuse-distance/MRC engine: packed vs object trace path."""
    spec = get_spec(benchmark)
    packed_trace = TraceGenerator(
        spec.instantiate(scale), trace_name="m"
    ).generate_packed()
    object_trace = packed_trace.to_trace()

    obj_histogram, obj_s = _time(lambda: distance_histogram(object_trace))
    packed_histogram, packed_s = _time(
        lambda: distance_histogram(packed_trace)
    )
    curve = packed_histogram.curve()

    return {
        "benchmark": benchmark,
        "memory_refs": packed_histogram.total,
        "distinct_lines": packed_histogram.cold,
        "object_seconds": round(obj_s, 3),
        "packed_seconds": round(packed_s, 3),
        "packed_speedup": round(obj_s / packed_s, 3) if packed_s else None,
        "mrc_points": len(curve.sizes()),
        "results_identical": obj_histogram == packed_histogram,
    }


def bench_telemetry(scale, benchmark, repeats=3):
    """Cost of the telemetry hub on the packed simulation hot loop.

    Three legs over the same packed trace: no hub (the production
    default), a hub with ``interval=0`` (span/counter bookkeeping but
    no time-series sampling), and a hub sampling every 1000 cycles.
    Each leg takes the best of ``repeats`` runs so the disabled-path
    acceptance budget (<2% vs no hub) is not drowned by scheduler
    noise.  All three legs must produce identical simulation results.
    """
    spec = get_spec(benchmark)
    packed_trace = TraceGenerator(
        spec.instantiate(scale), trace_name="t"
    ).generate_packed()
    machine_builder = SENSITIVITY_CONFIGS["Base Confg."]

    def leg(make_hub):
        best_s, result, samples = None, None, 0
        for _ in range(repeats):
            machine = machine_builder().scaled(scale.machine_divisor)
            hub = make_hub()
            run, wall_s = _time(
                lambda: simulate_trace(packed_trace, machine, telemetry=hub)
            )
            if best_s is None or wall_s < best_s:
                best_s, result = wall_s, run
            if hub is not None:
                samples = len(hub.series)
        return result, best_s, samples

    off_result, off_s, _ = leg(lambda: None)
    idle_result, idle_s, _ = leg(lambda: Telemetry(interval=0))
    sampling_result, sampling_s, samples = leg(
        lambda: Telemetry(interval=1000)
    )

    def overhead(with_s):
        return round(100.0 * (with_s - off_s) / off_s, 2) if off_s else None

    return {
        "benchmark": benchmark,
        "records": len(packed_trace),
        "samples": samples,
        "off_seconds": round(off_s, 3),
        "idle_hub_seconds": round(idle_s, 3),
        "sampling_seconds": round(sampling_s, 3),
        "idle_hub_overhead_pct": overhead(idle_s),
        "sampling_overhead_pct": overhead(sampling_s),
        "results_identical": off_result == idle_result == sampling_result,
    }


def bench_service(scale, benchmark):
    """Warm vs cold latency of the sweep service over HTTP.

    Boots the asyncio server in-process on an ephemeral port with an
    empty run store, then submits the same one-cell simulate job
    twice.  The first request is cold (trace prepared, worker process
    simulates, result checkpointed); the second must be served from
    the content-addressed store.  The acceptance budget is a warm/cold
    ratio of at least 100x, and the two result documents must be
    byte-identical.
    """
    from repro.service import BackgroundServer, ServiceClient, ServiceConfig

    body = {
        "kind": "simulate",
        "benchmark": benchmark,
        "mechanisms": ["bypass"],
    }
    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        config = ServiceConfig(store=tmp, jobs=1, scale=scale)
        with BackgroundServer(config) as background:
            client = ServiceClient("127.0.0.1", background.port, timeout=600)
            cold, cold_s = _time(lambda: client.run(body, timeout=600))
            cold_bytes = client.result_bytes(cold["id"])
            warm, warm_s = _time(lambda: client.run(body, timeout=600))
            warm_bytes = client.result_bytes(warm["id"])
            metrics = client.metrics()
    return {
        "benchmark": benchmark,
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "scheduler_executions": metrics["scheduler_executions"],
        "warm_hits": metrics["warm_hits"],
        "results_identical": cold_bytes == warm_bytes
        and metrics["scheduler_executions"] == 1,
    }


def bench_analytic_predict(scale, benchmark, cold_seconds):
    """Analytic MRC prediction vs the cold simulated service cell.

    The analytic model's reason to exist is the latency gap: the cold
    service leg above prepares traces, simulates, and checkpoints one
    cell; ``predict_benchmark`` answers the same locality questions
    (MRC, gating, tilings) straight from the IR.  Best-of-3 per leg,
    and the acceptance budget is a speedup of at least 100x over the
    cold cell measured in :func:`bench_service`.
    """
    from repro.analytic.predict import predict_benchmark

    best_s, payload = float("inf"), None
    for _ in range(3):
        payload, seconds = _time(lambda: predict_benchmark(benchmark, scale))
        best_s = min(best_s, seconds)
    speedup = cold_seconds / best_s if best_s else None
    return {
        "benchmark": benchmark,
        "predict_seconds": round(best_s, 4),
        "cold_simulate_seconds": round(cold_seconds, 3),
        "speedup_vs_cold_cell": round(speedup, 1)
        if speedup is not None
        else None,
        "memory_refs": payload["memory_refs"],
        "mrc_points": len(payload["mrc"]),
        "predicted_miss_ratio": round(payload["miss_ratio"], 6),
        "within_budget": speedup is not None and speedup >= 100.0,
    }


def bench_verify(scale):
    """Wall-clock of the full static lint (``python -m repro lint``):
    all four analyses over every benchmark's base and optimized
    variants.  Purely static — the cost of the correctness backstop."""
    result, wall_s = _time(lambda: lint_registry(scale))
    return {
        "variants": len(result.rows),
        "diagnostics": len(result.diagnostics),
        "clean": result.ok(strict=True),
        "seconds": round(wall_s, 3),
    }


def bench_dependence(scale):
    """Wall-clock of the dependence-relation engine over every
    software nest the optimizer sees (``repro lint --deps``): relation
    solving, the merged per-pair view, and the decision
    cross-reference, suite-wide."""
    from repro.compiler.verify.deps import deps_summaries

    summaries, wall_s = _time(lambda: deps_summaries(scale))
    return {
        "nests": len(summaries),
        "relations": sum(s.relations for s in summaries),
        "analyzable": sum(1 for s in summaries if s.analyzable),
        "flagged": sum(1 for s in summaries if s.flagged),
        "seconds": round(wall_s, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the parallel leg (default 4)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale and a 2x2 grid — for CI sanity, not perf numbers",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_sweep.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    scale = TINY if args.smoke else SMALL
    benchmarks = SMOKE_BENCHMARKS if args.smoke else FULL_BENCHMARKS
    configs = {name: SENSITIVITY_CONFIGS[name] for name in CONFIG_NAMES}

    print(
        f"mini-sweep: {len(benchmarks)} benchmarks x {len(configs)} configs "
        f"at scale={scale.name}, jobs={args.jobs} "
        f"(cpu_count={os.cpu_count()})"
    )
    sweep, reference = bench_sweep(scale, benchmarks, configs, args.jobs)
    if sweep.get("parallel_skipped"):
        print(
            f"  serial {sweep['serial_seconds']}s; "
            f"parallel leg skipped ({sweep['parallel_skipped']})"
        )
    else:
        print(
            f"  serial {sweep['serial_seconds']}s, "
            f"parallel {sweep['parallel_seconds']}s "
            f"(jobs={sweep['jobs']}"
            + (", capped" if sweep["jobs_capped"] else "")
            + f") -> {sweep['speedup']}x, "
            f"identical={sweep['results_identical']}"
        )

    resume = bench_sweep_resume(
        scale, benchmarks, configs, reference, sweep["serial_seconds"]
    )
    print(
        f"run store: cold {resume['store_seconds']}s "
        f"({resume['checkpoint_overhead_pct']}% overhead vs serial), "
        f"resume {resume['resume_seconds']}s "
        f"-> {resume['resume_speedup']}x, "
        f"identical={resume['results_identical']}"
    )

    packed, vectorized = bench_packed(scale, benchmarks[0])
    print(
        f"packed vs objects on {packed['benchmark']} "
        f"({packed['records']} records): "
        f"generate {packed['generate_speedup']}x, "
        f"simulate {packed['simulate_speedup']}x, "
        f"identical={packed['results_identical']}"
    )
    print(
        f"vectorized kernels on {vectorized['benchmark']}: "
        f"scalar {vectorized['scalar_simulate_seconds']}s, "
        f"vectorized {vectorized['vectorized_simulate_seconds']}s "
        f"-> {vectorized['speedup_vs_objects']}x vs objects "
        f"({vectorized['speedup_vs_scalar']}x vs scalar packed), "
        f"identical={vectorized['results_identical']}"
    )

    mrc = bench_mrc(scale, benchmarks[0])
    print(
        f"MRC engine on {mrc['benchmark']} "
        f"({mrc['memory_refs']} refs, {mrc['distinct_lines']} lines): "
        f"object {mrc['object_seconds']}s, packed {mrc['packed_seconds']}s "
        f"-> {mrc['packed_speedup']}x, identical={mrc['results_identical']}"
    )

    telemetry = bench_telemetry(scale, benchmarks[0])
    print(
        f"telemetry on {telemetry['benchmark']} "
        f"({telemetry['records']} records): off {telemetry['off_seconds']}s, "
        f"idle hub {telemetry['idle_hub_overhead_pct']}%, "
        f"sampling ({telemetry['samples']} samples) "
        f"{telemetry['sampling_overhead_pct']}%, "
        f"identical={telemetry['results_identical']}"
    )

    service = bench_service(scale, benchmarks[0])
    print(
        f"service on {service['benchmark']}: "
        f"cold {service['cold_seconds']}s, warm {service['warm_seconds']}s "
        f"-> {service['warm_speedup']}x, "
        f"identical={service['results_identical']}"
    )

    analytic = bench_analytic_predict(
        scale, benchmarks[0], service["cold_seconds"]
    )
    print(
        f"analytic predict on {analytic['benchmark']} "
        f"({analytic['memory_refs']} modeled refs): "
        f"{analytic['predict_seconds']}s vs cold cell "
        f"{analytic['cold_simulate_seconds']}s "
        f"-> {analytic['speedup_vs_cold_cell']}x, "
        f"within_budget={analytic['within_budget']}"
    )

    verify = bench_verify(scale)
    print(
        f"static lint: {verify['variants']} program variants in "
        f"{verify['seconds']}s, clean={verify['clean']}"
    )

    dependence = bench_dependence(scale)
    print(
        f"dependence engine: {dependence['relations']} relations over "
        f"{dependence['nests']} nests in {dependence['seconds']}s, "
        f"analyzable={dependence['analyzable']}/{dependence['nests']}"
    )

    report = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "scale": scale.name,
        "benchmarks": benchmarks,
        "configs": list(configs),
        "sweep": sweep,
        "sweep_resume": resume,
        "packed_vs_objects": packed,
        "simulate_vectorized": vectorized,
        "mrc_engine": mrc,
        "telemetry_overhead": telemetry,
        "service": service,
        "analytic_predict": analytic,
        "verify": verify,
        "dependence": dependence,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not (
        sweep["results_identical"]
        and resume["results_identical"]
        and packed["results_identical"]
        and vectorized["results_identical"]
        and mrc["results_identical"]
        and telemetry["results_identical"]
        and service["results_identical"]
        and analytic["within_budget"]
        and verify["clean"]
    ):
        print(
            "ERROR: parallel, resume, packed, vectorized, MRC, telemetry, "
            "service, analytic-predict, or lint results diverged",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

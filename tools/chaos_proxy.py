#!/usr/bin/env python
"""Stand-alone chaos proxy for manual sweep-service prodding.

Puts a :class:`repro.service.chaos.ChaosProxy` in front of a running
service and prints the port to aim clients at::

    PYTHONPATH=src python tools/chaos_proxy.py \\
        --upstream-port 8123 --faults 'truncate:2:150;stall:5:3'

Fault spec syntax (see :mod:`repro.core.faults`)::

    kind[:every[:amount]][;...]    kind in {drop, stall, truncate}

``every`` picks which 0-based accepted connections are sabotaged
(every ``every``-th); ``amount`` is seconds for ``stall`` and response
bytes for ``truncate``.  Runs until interrupted; prints per-kind fault
counts on exit.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.faults import NetworkFaultPlan  # noqa: E402
from repro.service.chaos import ChaosProxy  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fault-injecting TCP proxy for the sweep service"
    )
    parser.add_argument("--upstream-host", default="127.0.0.1")
    parser.add_argument("--upstream-port", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 = ephemeral (printed)"
    )
    parser.add_argument(
        "--faults",
        default="",
        help="network fault spec, e.g. 'drop:3' or 'truncate:2:150'",
    )
    args = parser.parse_args(argv)

    try:
        plan = NetworkFaultPlan.parse(args.faults)
    except ValueError as exc:
        parser.error(str(exc))

    with ChaosProxy(
        args.upstream_host,
        args.upstream_port,
        plan,
        host=args.host,
        port=args.port,
    ) as proxy:
        print(
            f"chaos proxy on {args.host}:{proxy.port} -> "
            f"{args.upstream_host}:{args.upstream_port} "
            f"(faults: {plan.spec() or 'none'})",
            flush=True,
        )
        try:
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            pass
        print(
            f"{proxy.connections} connection(s), faults injected: "
            + ", ".join(
                f"{kind}={count}" for kind, count in proxy.faults.items()
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

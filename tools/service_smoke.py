#!/usr/bin/env python
"""CI smoke test for the sweep service.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, then drives it over HTTP with the stdlib client:

1. a **cold** simulate job (scheduler execution, checkpointed);
2. the **same** job again — must be served from the run store with no
   scheduler involvement, and its result document must be
   **bit-identical** to the cold one;
3. a **fault-injected** job (worker killed on every attempt) — must
   degrade to a structured failed job while the server keeps
   answering.

Exit status 0 only if every claim holds.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402

BODY = {"kind": "simulate", "benchmark": "vpenta", "mechanisms": ["bypass"]}


def _fail(message: str) -> None:
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    raise SystemExit(1)


def _boot(store: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve`` on port 0; return (process, bound port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",  # the announce line must not sit in a pipe buffer
            "-m",
            "repro",
            "--scale",
            "tiny",
            "--jobs",
            "2",
            "--store",
            store,
            "serve",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        process.terminate()
        _fail(f"server did not announce a port (got {line!r})")
    return process, int(match.group(1))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-") as store:
        process, port = _boot(store)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)

            status = client.status()
            if status["store"]["entries"] != 0:
                _fail("store not empty at boot")
            print(f"server up on port {port}, store empty")

            started = time.perf_counter()
            cold = client.run(BODY, timeout=600)
            cold_s = time.perf_counter() - started
            if cold["state"] != "done":
                _fail(f"cold job ended {cold['state']}")
            if cold["cells"][0]["source"] != "scheduler":
                _fail(f"cold cell source {cold['cells'][0]['source']!r}")
            cold_bytes = client.result_bytes(cold["id"])
            print(f"cold job done in {cold_s:.2f}s ({len(cold_bytes)} bytes)")

            started = time.perf_counter()
            warm = client.run(BODY, timeout=600)
            warm_s = time.perf_counter() - started
            if warm["cells"][0]["source"] != "store":
                _fail(f"warm cell source {warm['cells'][0]['source']!r}")
            warm_bytes = client.result_bytes(warm["id"])
            if warm_bytes != cold_bytes:
                _fail("warm result is not bit-identical to cold result")
            metrics = client.metrics()
            if metrics["scheduler_executions"] != 1:
                _fail(
                    "expected exactly one scheduler execution, got "
                    f"{metrics['scheduler_executions']}"
                )
            if metrics["warm_hits"] != 1:
                _fail(f"expected one warm hit, got {metrics['warm_hits']}")
            print(
                f"warm job done in {warm_s:.3f}s, bit-identical, "
                "store hit confirmed"
            )

            faulted = client.run(
                {**BODY, "benchmark": "adi", "faults": "exit:adi:*",
                 "retries": 1},
                timeout=600,
            )
            if faulted["state"] != "failed":
                _fail(f"faulted job ended {faulted['state']}")
            failure = client.result(faulted["id"])["failures"][0]
            if failure["kind"] != "crash":
                _fail(f"failure kind {failure['kind']!r}")
            if client.status()["jobs"]["total"] != 3:
                _fail("server lost track of jobs after the fault")
            print(
                "fault-injected job degraded to structured failure "
                f"({failure['message']}); server still serving"
            )
            return 0
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI smoke test for graceful drain of the sweep service.

Proves the SIGTERM story end to end, against real processes:

1. a clean reference run on its own store records the canonical
   result bytes for a three-benchmark sweep;
2. a second server is SIGTERMed **mid-sweep** (after at least one cell
   has checkpointed, before the job finishes) — it must exit 0 within
   the drain budget, and every worker process it spawned must be gone;
3. a third server on the drained store re-runs the same request — the
   checkpointed cells must come back warm from the store and the final
   result document must be **bit-identical** to the clean reference.

Usage::

    PYTHONPATH=src python tools/drain_smoke.py
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402

BODY = {
    "kind": "simulate",
    "benchmarks": ["vpenta", "adi", "swim"],
    "mechanisms": ["bypass"],
}
DRAIN_GRACE = 15.0


def _fail(message: str) -> None:
    print(f"DRAIN SMOKE FAILURE: {message}", file=sys.stderr)
    raise SystemExit(1)


def _boot(store: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve`` on port 0; return (process, bound port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "--scale",
            "tiny",
            "--jobs",
            "2",
            "--store",
            store,
            "serve",
            "--port",
            "0",
            "--drain-grace",
            str(DRAIN_GRACE),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        process.terminate()
        _fail(f"server did not announce a port (got {line!r})")
    return process, int(match.group(1))


def _children_of(pid: int) -> set[int]:
    """Direct children of ``pid`` (worker processes), via /proc."""
    children = set()
    for stat in Path("/proc").glob("[0-9]*/stat"):
        try:
            fields = stat.read_text().rsplit(")", 1)[1].split()
        except (OSError, IndexError):
            continue  # process vanished mid-scan
        if int(fields[1]) == pid:  # field 4 of stat is ppid
            children.add(int(stat.parent.name))
    return children


def _alive(pid: int) -> bool:
    return Path(f"/proc/{pid}").exists()


def _shutdown(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=DRAIN_GRACE + 20)
    except subprocess.TimeoutExpired:
        process.kill()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-drain-") as scratch:
        # --- 1. clean reference run -----------------------------------
        ref_store = str(Path(scratch) / "reference")
        process, port = _boot(ref_store)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)
            reference = client.run(BODY, timeout=600)
            if reference["state"] != "done":
                _fail(f"reference job ended {reference['state']}")
            ref_bytes = client.result_bytes(reference["id"])
        finally:
            _shutdown(process)
        if process.returncode != 0:
            _fail(f"reference server exited {process.returncode}")
        print(f"reference run done ({len(ref_bytes)} bytes)")

        # --- 2. SIGTERM mid-sweep -------------------------------------
        store = str(Path(scratch) / "drained")
        process, port = _boot(store)
        exited_clean = False
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)
            job = client.submit(BODY)
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                doc = client.job(job["id"])
                if doc["cell_counts"].get("done", 0) >= 1:
                    break
                if doc["state"] in ("done", "failed", "cancelled"):
                    _fail(f"job finished ({doc['state']}) before SIGTERM")
                time.sleep(0.05)
            else:
                _fail("no cell checkpointed within 300s")
            workers = _children_of(process.pid)
            process.send_signal(signal.SIGTERM)
            started = time.monotonic()
            try:
                process.wait(timeout=DRAIN_GRACE + 20)
            except subprocess.TimeoutExpired:
                _fail("server did not exit within the drain budget")
            drained_s = time.monotonic() - started
            if process.returncode != 0:
                _fail(f"drained server exited {process.returncode}")
            exited_clean = True
            print(
                f"SIGTERM mid-sweep: exit 0 in {drained_s:.1f}s "
                f"({len(workers)} worker(s) were live)"
            )
        finally:
            if not exited_clean:
                _shutdown(process)

        # --- 3. zero orphaned workers ---------------------------------
        holdout = time.monotonic() + 5
        while time.monotonic() < holdout and any(
            _alive(pid) for pid in workers
        ):
            time.sleep(0.05)
        orphans = sorted(pid for pid in workers if _alive(pid))
        if orphans:
            _fail(f"orphaned worker processes after drain: {orphans}")
        print("no orphaned workers after drain")

        # --- 4. warm resume is byte-identical -------------------------
        process, port = _boot(store)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)
            resumed = client.run(BODY, timeout=600)
            if resumed["state"] != "done":
                _fail(f"resumed job ended {resumed['state']}")
            warm = sum(
                1
                for cell in resumed["cells"]
                if cell["source"] == "store"
            )
            if warm < 1:
                _fail("no cell resumed warm from the drained store")
            resumed_bytes = client.result_bytes(resumed["id"])
            if resumed_bytes != ref_bytes:
                _fail("resumed result is not bit-identical to reference")
            print(
                f"resume after drain: {warm}/{len(resumed['cells'])} "
                "cell(s) warm, result bit-identical to clean run"
            )
            return 0
        finally:
            _shutdown(process)


if __name__ == "__main__":
    raise SystemExit(main())

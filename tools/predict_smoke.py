#!/usr/bin/env python
"""CI smoke test for the analytic prediction endpoint.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, then drives ``POST /v1/predict`` over HTTP with the stdlib
client:

1. a **first** prediction — answered synchronously (no job created),
   with a well-formed payload: monotone sampled MRC, per-region gating
   verdicts, tiling report;
2. the **same** prediction again — must be served from the in-process
   cache (the ``predicts`` metric moves by exactly one for the pair)
   and be identical to the first answer;
3. a **policy** prediction with ``miss_floor=1.0`` — every region must
   gate off;
4. **bad requests** (unknown benchmark, bad scale, out-of-range
   floor) — all 400, and the server keeps serving afterwards.

Exit status 0 only if every claim holds.

Usage::

    PYTHONPATH=src python tools/predict_smoke.py
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

BENCHMARK = "tpcd_q1"


def _fail(message: str) -> None:
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    raise SystemExit(1)


def _boot(store: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve`` on port 0; return (process, bound port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",  # the announce line must not sit in a pipe buffer
            "-m",
            "repro",
            "--scale",
            "tiny",
            "--jobs",
            "2",
            "--store",
            store,
            "serve",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        process.terminate()
        _fail(f"server did not announce a port (got {line!r})")
    return process, int(match.group(1))


def _check_payload(payload: dict) -> None:
    if payload["benchmark"] != BENCHMARK:
        _fail(f"payload names {payload['benchmark']!r}")
    if not 0.0 <= payload["miss_ratio"] <= 1.0:
        _fail(f"miss ratio {payload['miss_ratio']} out of range")
    if not payload["regions"]:
        _fail("no region verdicts in the payload")
    ratios = [ratio for _, ratio in payload["mrc"]]
    sizes = [size for size, _ in payload["mrc"]]
    if sizes != sorted(sizes):
        _fail("MRC samples are not sorted by capacity")
    for earlier, later in zip(ratios, ratios[1:]):
        if later > earlier + 1e-12:
            _fail("predicted MRC is not monotone non-increasing")
    if payload["cache_lines"] not in sizes:
        _fail("MRC samples do not include the target L1 capacity")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-predict-") as store:
        process, port = _boot(store)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)

            started = time.perf_counter()
            first = client.predict(BENCHMARK)
            first_s = time.perf_counter() - started
            _check_payload(first)
            if client.get("/v1/jobs")["jobs"]:
                _fail("a synchronous prediction created a job")
            print(
                f"predict({BENCHMARK}) answered in {first_s:.3f}s: "
                f"miss ratio {first['miss_ratio']:.4f}, "
                f"{len(first['regions'])} regions, "
                f"{len(first['mrc'])} MRC samples"
            )

            started = time.perf_counter()
            second = client.predict(BENCHMARK)
            second_s = time.perf_counter() - started
            if second != first:
                _fail("repeat prediction differs from the first answer")
            if client.metrics()["predicts"] != 1:
                _fail(
                    "expected one model build for the pair, got "
                    f"{client.metrics()['predicts']}"
                )
            print(
                f"repeat served from cache in {second_s:.4f}s, identical"
            )

            strict = client.predict(BENCHMARK, miss_floor=1.0)
            if strict["model_on_regions"] != 0:
                _fail("miss_floor=1.0 left regions gated on")
            print("miss_floor=1.0 gates every region off")

            for body in (
                {"benchmark": "nosuch"},
                {"benchmark": BENCHMARK, "scale": "galactic"},
                {"benchmark": BENCHMARK, "miss_floor": 2.0},
            ):
                try:
                    client.post("/v1/predict", body)
                except ServiceError as exc:
                    if exc.status != 400:
                        _fail(f"bad request {body} answered {exc.status}")
                else:
                    _fail(f"bad request {body} was accepted")
            if not client.healthz():
                _fail("server unhealthy after rejected requests")
            print("bad requests rejected with 400; server still serving")
            return 0
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    raise SystemExit(main())

"""Request decomposition and canonical serialization (no HTTP)."""

from __future__ import annotations

import pytest

from repro.core.parallel import CellFailure
from repro.params import SENSITIVITY_CONFIGS
from repro.service.cells import (
    aggregate_result,
    canonical_json,
    decompose,
    failure_to_json,
)
from repro.workloads.base import TINY
from repro.workloads.registry import all_specs


class TestDecompose:
    def test_simulate_defaults_to_one_base_cell(self):
        request = decompose(
            {"kind": "simulate", "benchmark": "vpenta"}, TINY
        )
        (spec,) = request.specs
        assert spec.kind == "cell"
        assert spec.benchmark == "vpenta"
        assert spec.config == "Base Confg."
        assert spec.needs_codes
        assert spec.scale is TINY

    def test_sweep_defaults_to_full_grid(self):
        request = decompose({"kind": "sweep"}, TINY)
        assert len(request.specs) == len(all_specs()) * len(
            SENSITIVITY_CONFIGS
        )

    def test_machines_are_scaled(self):
        request = decompose(
            {"kind": "simulate", "benchmark": "vpenta"}, TINY
        )
        expected = SENSITIVITY_CONFIGS["Base Confg."]().scaled(
            TINY.machine_divisor
        )
        assert request.specs[0].machine == expected

    def test_table2_and_locality_prepare_in_worker(self):
        for kind in ("table2", "locality"):
            request = decompose(
                {"kind": kind, "benchmarks": ["vpenta", "adi"]}, TINY
            )
            assert [spec.benchmark for spec in request.specs] == [
                "vpenta",
                "adi",
            ]
            assert not any(spec.needs_codes for spec in request.specs)

    def test_profile_identity_lands_in_extra_digests(self):
        request = decompose(
            {
                "kind": "profile",
                "benchmark": "vpenta",
                "version": "combined",
                "mechanism": "victim",
                "interval": 500,
            },
            TINY,
        )
        (spec,) = request.specs
        assert spec.extra_digests == (
            "version=combined",
            "mechanism=victim",
            "interval=500",
        )
        assert spec._profile_identity() == ("combined", "victim", 500)

    @pytest.mark.parametrize(
        "body,fragment",
        [
            ({"kind": "nonesuch"}, "kind"),
            ({"kind": "simulate"}, "requires a benchmark"),
            ({"kind": "simulate", "benchmark": "nope"}, "unknown benchmark"),
            (
                {"kind": "simulate", "benchmark": "vpenta", "configs": ["?"]},
                "unknown config",
            ),
            (
                {
                    "kind": "simulate",
                    "benchmark": "vpenta",
                    "mechanisms": ["warp"],
                },
                "unknown mechanism",
            ),
            (
                {"kind": "simulate", "benchmark": "vpenta", "scale": "huge"},
                "unknown scale",
            ),
            ({"kind": "profile"}, "requires a benchmark"),
            (
                {
                    "kind": "profile",
                    "benchmark": "vpenta",
                    "version": "nope",
                },
                "unknown version",
            ),
            (
                {
                    "kind": "profile",
                    "benchmark": "vpenta",
                    "interval": -1,
                },
                "interval",
            ),
            ([], "JSON object"),
        ],
    )
    def test_invalid_bodies_rejected(self, body, fragment):
        with pytest.raises(ValueError, match=fragment):
            decompose(body, TINY)

    def test_scale_override_changes_keys(self, tmp_path):
        from repro.core.runstore import RunStore

        store = RunStore(tmp_path)
        tiny = decompose(
            {"kind": "table2", "benchmarks": ["vpenta"]}, TINY
        ).specs[0]
        small = decompose(
            {
                "kind": "table2",
                "benchmarks": ["vpenta"],
                "scale": "small",
            },
            TINY,
        ).specs[0]
        assert tiny.store_key(store) != small.store_key(store)


class TestCanonicalJson:
    def test_sorted_compact_newline_terminated(self):
        raw = canonical_json({"b": 1, "a": [1, 2]})
        assert raw == b'{"a":[1,2],"b":1}\n'

    def test_key_order_never_leaks(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1}
        )


class TestAggregation:
    def test_failures_carry_no_wall_clock(self):
        failure = CellFailure(
            benchmark="vpenta",
            config="Base Confg.",
            kind="crash",
            attempts=3,
            message="worker died",
            duration=12.5,
        )
        doc = failure_to_json(failure)
        assert "duration" not in doc
        assert doc["attempts"] == 3

    def test_all_failed_sweep_has_empty_summary(self):
        request = decompose(
            {"kind": "simulate", "benchmark": "vpenta"}, TINY
        )
        failure = CellFailure(
            benchmark="vpenta",
            config="Base Confg.",
            kind="error",
            attempts=1,
            message="boom",
        )
        doc = aggregate_result(
            "simulate", request.specs, ["key"], [failure]
        )
        assert doc["cells"] == []
        assert doc["summary"] == {}
        assert len(doc["failures"]) == 1

"""End-to-end service tests over a live asyncio server.

One module-scoped server runs against a store pre-warmed by the
*offline* runner (``run_suite`` with ``store=``), so the central
claims are testable directly:

* warm cells are served from the store without ever invoking the
  scheduler (pinned by monkeypatching the scheduler to explode);
* service responses are byte-identical to what the offline runner
  computed for the same store keys;
* duplicate in-flight requests coalesce onto one execution;
* an injected worker kill degrades to a structured failed job while
  the server keeps serving.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.runner import run_suite
from repro.core.runstore import RunStore
from repro.params import SENSITIVITY_CONFIGS
from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service import server as server_module
from repro.workloads.base import TINY

WARM_BENCHMARK = "vpenta"
MECHANISMS = ("bypass",)


@pytest.fixture(scope="module")
def offline(tmp_path_factory):
    """Run the offline sweep for one cell, checkpointing to a store."""
    root = tmp_path_factory.mktemp("service-store")
    suite = run_suite(
        TINY,
        benchmarks=[WARM_BENCHMARK],
        configs={"Base Confg.": SENSITIVITY_CONFIGS["Base Confg."]},
        mechanisms=MECHANISMS,
        store=RunStore(root),
    )
    return root, suite.sweeps["Base Confg."].runs[WARM_BENCHMARK]


@pytest.fixture(scope="module")
def server(offline):
    root, _ = offline
    config = ServiceConfig(store=root, jobs=2, scale=TINY)
    with BackgroundServer(config) as background:
        yield background


@pytest.fixture
def client(server):
    return ServiceClient("127.0.0.1", server.port)


def _simulate_body(benchmark: str) -> dict:
    return {
        "kind": "simulate",
        "benchmark": benchmark,
        "mechanisms": list(MECHANISMS),
    }


class TestWarmPath:
    def test_offline_cells_served_without_scheduler(
        self, client, offline, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError(
                "scheduler invoked for a warm cell"
            )  # pragma: no cover

        monkeypatch.setattr(server_module, "execute_cell", explode)
        before = client.metrics()
        job = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        after = client.metrics()
        assert job["state"] == "done"
        (cell,) = job["cells"]
        assert cell["source"] == "store"
        assert (
            after["scheduler_executions"] == before["scheduler_executions"]
        )
        assert after["warm_hits"] == before["warm_hits"] + 1

    def test_response_matches_offline_run_exactly(self, client, offline):
        root, offline_run = offline
        job = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        result = client.result(job["id"])
        (cell,) = result["cells"]
        assert cell["key"] in RunStore(root).keys()
        for key, offline_result in offline_run.results.items():
            assert cell["run"]["results"][key] == dataclasses.asdict(
                offline_result
            )

    def test_repeat_requests_are_byte_identical(self, client):
        first = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        second = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        assert client.result_bytes(first["id"]) == client.result_bytes(
            second["id"]
        )


class TestColdAndCoalescing:
    def test_duplicate_cold_requests_single_flight(self, client):
        body = _simulate_body("adi")
        before = client.metrics()
        first = client.submit(body)
        second = client.submit(body)
        done_first = client.wait(first["id"], timeout=240)
        done_second = client.wait(second["id"], timeout=240)
        after = client.metrics()
        assert done_first["state"] == done_second["state"] == "done"
        # exactly ONE scheduler execution served both requests
        assert (
            after["scheduler_executions"]
            == before["scheduler_executions"] + 1
        )
        assert after["coalesced"] == before["coalesced"] + 1
        assert client.result_bytes(first["id"]) == client.result_bytes(
            second["id"]
        )

    def test_cold_result_now_warm_in_store(self, client):
        job = client.run(_simulate_body("adi"), timeout=120)
        (cell,) = job["cells"]
        assert cell["source"] == "store"


class TestFaultInjection:
    def test_killed_worker_degrades_to_structured_failure(self, client):
        body = _simulate_body("swim")
        body["faults"] = "exit:swim:*"
        body["retries"] = 1
        job = client.run(body, timeout=240)
        assert job["state"] == "failed"
        (cell,) = job["cells"]
        assert cell["state"] == "failed"
        assert "exit code 23" in cell["message"]
        result = client.result(job["id"])
        (failure,) = result["failures"]
        assert failure["kind"] == "crash"
        assert failure["attempts"] == 2
        # the server is not wedged: it still answers everything
        assert client.status()["jobs"]["total"] >= 1
        follow_up = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        assert follow_up["state"] == "done"

    def test_fault_recovered_within_retries(self, client):
        body = _simulate_body("swim")
        body["faults"] = "raise:swim:*:1"  # only attempt 0 sabotaged
        job = client.run(body, timeout=240)
        assert job["state"] == "done"
        attempts = [
            event
            for event in client.job(job["id"])["cells"]
        ]
        assert attempts[0]["attempts"] == 2


class TestEndpoints:
    def test_status_surfaces_store_stats(self, client):
        status = client.status()
        assert status["store"]["entries"] >= 1
        assert status["store"]["by_kind"]["cell"]["entries"] >= 1
        assert status["service"]["workers"] == 2
        assert status["service"]["scale"] == "tiny"

    def test_cells_listing_matches_store(self, client, offline):
        root, _ = offline
        listed = {cell["key"] for cell in client.cells()}
        assert set(RunStore(root).keys()) == listed

    def test_event_stream_replays_and_terminates(self, client):
        job = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        events = list(client.events(job["id"]))
        assert events[0]["seq"] == 0
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[-1]["event"] == "job"
        assert events[-1]["state"] == "done"
        assert any(e["event"] == "cell" for e in events)

    def test_trace_artifact_is_a_chrome_trace(self, client):
        from repro.telemetry import validate_trace

        job = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        trace = client.trace(job["id"])
        summary = validate_trace(trace)  # raises on malformed traces
        assert summary["events"] == len(trace["traceEvents"])
        assert trace["otherData"]["kind"] == "simulate"

    def test_profile_job_returns_telemetry_trace(self, client):
        job = client.run(
            {"kind": "profile", "benchmark": WARM_BENCHMARK}, timeout=240
        )
        assert job["state"] == "done"
        result = client.result(job["id"])
        assert result["profile"]["consistent"] is True
        assert "trace_events" not in result["profile"]
        trace = client.trace(job["id"])
        assert len(trace["traceEvents"]) > 0

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_bad_body_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "simulate", "benchmark": "nope"})
        assert excinfo.value.status == 400
        status, _, _ = client.request("POST", "/v1/jobs", None)
        assert status == 400  # empty body is not a valid job

    def test_unrouted_path_is_404(self, client):
        status, _, raw = client.request("GET", "/v2/everything")
        assert status == 404
        assert b"no route" in raw

    def test_jobs_listing_contains_submitted_jobs(self, client):
        job = client.run(_simulate_body(WARM_BENCHMARK), timeout=120)
        listing = client.get("/v1/jobs")["jobs"]
        assert job["id"] in {entry["id"] for entry in listing}

    def test_per_request_jobs_override_validated(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({**_simulate_body(WARM_BENCHMARK), "jobs": 0})
        assert excinfo.value.status == 400
        job = client.run(
            {**_simulate_body(WARM_BENCHMARK), "jobs": 1}, timeout=120
        )
        assert job["state"] == "done"


class TestPredictEndpoint:
    def test_predict_answers_synchronously(self, client):
        payload = client.predict(WARM_BENCHMARK)
        assert payload["benchmark"] == WARM_BENCHMARK
        assert payload["scale"] == "tiny"  # service default
        assert 0.0 <= payload["miss_ratio"] <= 1.0
        assert payload["regions"]
        assert payload["mrc"]
        # no job was created for it
        listing = client.get("/v1/jobs")["jobs"]
        assert all(entry["kind"] != "predict" for entry in listing)

    def test_repeat_predictions_cached_and_identical(self, client):
        before = client.metrics()["predicts"]
        first = client.predict(WARM_BENCHMARK, miss_floor=0.3)
        second = client.predict(WARM_BENCHMARK, miss_floor=0.3)
        after = client.metrics()["predicts"]
        assert first == second
        assert after == before + 1  # one model build served both

    def test_predict_validation_is_400(self, client):
        for body in (
            {},
            {"benchmark": "nosuch"},
            {"benchmark": WARM_BENCHMARK, "scale": "galactic"},
            {"benchmark": WARM_BENCHMARK, "miss_floor": 2.0},
            {"benchmark": WARM_BENCHMARK, "threshold": "high"},
        ):
            with pytest.raises(ServiceError) as excinfo:
                client.post("/v1/predict", body)
            assert excinfo.value.status == 400

    def test_predict_miss_floor_threads_through(self, client):
        strict = client.predict(WARM_BENCHMARK, miss_floor=1.0)
        assert strict["model_on_regions"] == 0
        assert strict["threshold"] >= 1.0
